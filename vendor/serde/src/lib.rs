//! Minimal, dependency-free reimplementation of the subset of `serde`
//! that the snnmap workspace uses.
//!
//! The build environment has no access to crates.io, so this crate is
//! vendored in-tree and wired up through `[patch.crates-io]`. Instead of
//! serde's visitor architecture it models everything through a single
//! JSON-like [`Value`] tree:
//!
//! * [`Serialize`] converts `&self` into a [`Value`],
//! * [`Deserialize`] reconstructs `Self` from a [`&Value`](Value).
//!
//! `serde_json` (also vendored) re-exports these types and adds the text
//! parser/printer. The `derive` feature forwards to the vendored
//! `serde_derive` proc-macro, so `#[derive(Serialize, Deserialize)]` on
//! plain named-field structs works unchanged.

// Vendored stub: not held to the workspace lint bar.
#![allow(warnings, clippy::all, clippy::pedantic)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization (and serialization) error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Self { message: message.to_string() }
    }

    /// Wraps the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        Self { message: format!("{field}: {}", self.message) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A JSON number: unsigned, signed-negative, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(n) => n,
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s.
///
/// Unlike stock `serde_json` (which sorts keys in its default
/// configuration), iteration follows insertion order; rendering is still
/// deterministic for a fixed insertion sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A JSON value tree — the interchange format for [`Serialize`] /
/// [`Deserialize`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Serializes any value into a [`Value`] tree (free-function form used by
/// the `serde_json::json!` macro).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*}
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }
    )*}
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::Number(Number::NegInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*}
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string — acceptable for the rare config-like
    /// structs with `&'static str` fields (e.g. platform names).
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == N => {
                let parsed = items.iter().map(T::from_value).collect::<Result<Vec<_>, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| Error::custom(format!("expected {N}-element array")))
            }
            other => Err(Error::custom(format!("expected {N}-element array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-element array, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.insert("z".into(), Value::Null), Some(Value::Bool(true)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn int_bounds_are_checked() {
        let v = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&v).is_err());
        assert_eq!(u16::from_value(&v).unwrap(), 300);
        let neg = Value::Number(Number::NegInt(-1));
        assert!(u64::from_value(&neg).is_err());
        assert_eq!(i32::from_value(&neg).unwrap(), -1);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), Some(7));
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn tuple_vec_roundtrip() {
        let coords: Vec<Option<(u16, u16)>> = vec![Some((1, 2)), None, Some((3, 4))];
        let v = coords.to_value();
        let back = Vec::<Option<(u16, u16)>>::from_value(&v).unwrap();
        assert_eq!(back, coords);
    }
}
