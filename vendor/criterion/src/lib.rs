//! Minimal, dependency-free shim with the `criterion` 0.5 API surface the
//! snnmap benches use.
//!
//! The build environment has no access to crates.io, so this crate is
//! vendored in-tree and wired up through `[patch.crates-io]`. It is not a
//! statistics engine: each benchmark body runs a single timed iteration
//! and prints the wall-clock duration, which keeps `--bench` targets
//! compiling and runnable without the real harness.

// Vendored stub: not held to the workspace lint bar.
#![allow(warnings, clippy::all, clippy::pedantic)]

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup; carried for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new<N: fmt::Display, P: fmt::Display>(name: N, parameter: P) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; `iter`/`iter_batched` time the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_secs: f64,
}

impl Bencher {
    /// Times one invocation of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_secs = start.elapsed().as_secs_f64();
    }

    /// Times one invocation of `routine` on a fresh `setup()` input.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed_secs = start.elapsed().as_secs_f64();
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the shim runs one iteration regardless).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _time: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<N: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, N: fmt::Display, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    println!("bench {name}: {:.6} s (single iteration, vendored shim)", bencher.elapsed_secs);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("identity", |b| b.iter(|| black_box(21) * 2));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        for n in [2u64, 4] {
            g.bench_with_input(BenchmarkId::new("double", n), &n, |b, &n| {
                b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
            });
        }
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
