//! JSON text parsing and printing over the vendored `serde` value model.
//!
//! Re-exports [`Value`], [`Map`], [`Number`], and [`Error`] from the
//! vendored `serde` crate and adds `from_str` / `to_string` /
//! `to_string_pretty` plus a simplified `json!` macro (flat and nested
//! literals with expression values).

// Vendored stub: not held to the workspace lint bar.
#![allow(warnings, clippy::all, clippy::pedantic)]

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    serde::to_value(value)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible for the value model, but keeps `serde_json`'s `Result`
/// signature so call sites using `?` compile unchanged.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Infallible for the value model; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports `null`, array literals, object literals with string-literal
/// keys and expression values, and bare expressions (serialized via
/// [`serde::Serialize`]). Nested `{...}` / `[...]` literals are allowed
/// in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items = ::std::vec::Vec::new();
        $crate::json_items!(items; $($item)*);
        $crate::Value::Array(items)
    }};
    ({ $($entry:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_entries!(map; $($entry)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal helper for `json!` array items. The `null` / `[...]` / `{...}`
/// arms must dispatch on raw tokens (an interpolated `expr` fragment can
/// no longer match them), hence the token-tree munching.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident;) => {};
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_items!($items; $($($rest)*)?);
    };
    ($items:ident; [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($arr)* ]));
        $crate::json_items!($items; $($($rest)*)?);
    };
    ($items:ident; { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($obj)* }));
        $crate::json_items!($items; $($($rest)*)?);
    };
    ($items:ident; $value:expr) => {
        $items.push($crate::to_value(&$value));
    };
    ($items:ident; $value:expr, $($rest:tt)*) => {
        $items.push($crate::to_value(&$value));
        $crate::json_items!($items; $($rest)*);
    };
}

/// Internal helper for `json!` object entries. See [`json_items!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($arr)* ]));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($obj)* }));
        $crate::json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
    ($map:ident; $key:literal : $value:expr, $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_entries!($map; $($rest)*);
    };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // Rust's shortest-roundtrip display never uses exponents,
                // so the output is always valid JSON. Integral floats keep
                // a trailing ".0" to parse back as floats.
                if v == v.trunc() && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                // JSON has no NaN/Inf; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogates are replaced rather than paired —
                            // none of our documents contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"a": [1, -2, 3.5, null, true], "b": {"c": "x\"y"}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        let pretty = to_string_pretty(&v).unwrap();
        let v3: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        let n = 1.5f64;
        let v = json!({"name": "x", "value": n, "list": [1, 2], "none": null});
        let o = v.as_object().unwrap();
        assert_eq!(o.get("name").unwrap().as_str(), Some("x"));
        assert!(o.get("none").unwrap().is_null());
        assert_eq!(o.get("list").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1i32, 2, 3];
        let text = to_string_pretty(&xs).unwrap();
        let back: Vec<i32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn float_formatting_parses_back() {
        for v in [0.0f64, 1.0, -2.5, 1e300, 1e-9, 123456789.123] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert!((back - v).abs() <= v.abs() * 1e-12, "{v} -> {text} -> {back}");
        }
    }
}
