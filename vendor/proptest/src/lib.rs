//! Minimal, dependency-free reimplementation of the subset of `proptest`
//! that the snnmap workspace uses.
//!
//! The build environment has no access to crates.io, so this crate is
//! vendored in-tree and wired up through `[patch.crates-io]`. Differences
//! from stock proptest:
//!
//! * no shrinking — a failing case panics with the case number and seed,
//! * deterministic seeding (fixed base seed, one RNG stream per test),
//! * only the combinators the workspace exercises: range strategies,
//!   tuples, `Just`, `prop_map`, `prop_perturb`, `prop_oneof!`,
//!   `prop::collection::vec`, `any::<T>()`.

// Vendored stub: not held to the workspace lint bar.
#![allow(warnings, clippy::all, clippy::pedantic)]

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A test-case failure: the property did not hold for some input.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure from any displayable reason.
    pub fn fail<E: fmt::Display>(reason: E) -> Self {
        Self { message: reason.to_string() }
    }

    /// Alias for [`TestCaseError::fail`] (stock proptest's `Reason` form).
    pub fn reject<E: fmt::Display>(reason: E) -> Self {
        Self::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed RNG; every test run samples the same case sequence.
    pub fn deterministic() -> Self {
        Self { state: 0x5EED_0F_5EED_0F00 }
    }

    /// An RNG seeded from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A statistically independent child RNG (used by `prop_perturb`,
    /// which takes the RNG by value).
    pub fn fork(&mut self) -> Self {
        Self { state: self.next_u64() }
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of type `Value`.
///
/// Object-safe so heterogeneous strategies can be unified by
/// `prop_oneof!` behind [`BoxedStrategy`]; the combinator methods are
/// `Self: Sized` extensions.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }

    /// Maps sampled values through `f` with access to a fresh RNG.
    fn prop_perturb<T, F: Fn(Self::Value, TestRng) -> T>(
        self,
        f: F,
    ) -> strategy::Perturb<Self, F>
    where
        Self: Sized,
    {
        strategy::Perturb { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Strategy combinator types.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value, TestRng) -> T> Strategy for Perturb<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let value = self.inner.sample(rng);
            let fork = rng.fork();
            (self.f)(value, fork)
        }
    }

    /// See [`super::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: super::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<super::BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics if `options` is empty.
        pub fn new(options: Vec<super::BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*}
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*}
}
impl_range_strategy_float!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*}
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property: samples `cases` inputs and invokes `body` on each.
/// Panics (test failure) on the first case whose body returns `Err`.
///
/// This is the engine behind the `proptest!` macro; the macro inlines
/// sampling per argument, so this only drives the loop.
pub fn run_cases<F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>>(
    config: &ProptestConfig,
    test_name: &str,
    mut body: F,
) {
    let mut rng = TestRng::deterministic();
    for case in 0..config.cases {
        if let Err(e) = body(&mut rng, case) {
            panic!("proptest {test_name}: case {case}/{} failed: {e}", config.cases);
        }
    }
}

/// The proptest prelude: everything the `proptest!` tests need in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are sampled from
/// strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal per-test expansion for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_each {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(&config, stringify!($name), |rng, _case| {
                $(let $pat = $crate::Strategy::sample(&($strategy), rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest_each! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u32),
        B(bool),
    }

    fn pick_strategy() -> impl Strategy<Value = Pick> {
        prop_oneof![(0u32..10).prop_map(Pick::A), any::<bool>().prop_map(Pick::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u16..9, b in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_sizes_respected(xs in prop::collection::vec((0u8..3, 0u16..100), 1..12)) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
        }

        #[test]
        fn oneof_and_perturb(p in pick_strategy(), salt in Just(()).prop_perturb(|_, mut rng| rng.next_u32())) {
            match p {
                Pick::A(v) => prop_assert!(v < 10),
                Pick::B(_) => {}
            }
            let _ = salt;
        }
    }

    #[test]
    fn determinism() {
        let s = (0u32..1000, 0u32..1000);
        let mut r1 = crate::TestRng::deterministic();
        let mut r2 = crate::TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics() {
        crate::run_cases(&ProptestConfig::with_cases(5), "always_fails", |_, _| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
