//! Vendored ChaCha-based RNG for the offline build environment.
//!
//! Implements the real ChaCha block function with 8 double-rounds, seeded
//! through the vendored [`rand::SeedableRng`] trait. Streams are
//! deterministic per seed, which is the only property the workspace
//! depends on (it never compares against upstream `rand_chacha` output).

// Vendored stub: not held to the workspace lint bar.
#![allow(warnings, clippy::all, clippy::pedantic)]

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state laid out as the 16-word ChaCha matrix.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, s) in w.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.block = w;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        Self { state, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let av: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_rng_trait() {
        use rand::Rng;
        let mut r = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let v: usize = r.gen_range(0..10);
            assert!(v < 10);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
