//! Minimal, dependency-free reimplementation of the subset of the `rand`
//! 0.8 API that the snnmap workspace uses.
//!
//! The build environment has no access to crates.io, so this crate is
//! vendored in-tree and wired up through `[patch.crates-io]`. It is **not**
//! a cryptographic or statistically rigorous RNG library; it only promises
//! the properties the workspace relies on:
//!
//! * deterministic streams per seed,
//! * a uniform-ish `gen_range` over integer and float ranges,
//! * `gen_bool`, `gen::<f64>()`, slice `shuffle`/`choose`.

// Vendored stub: not held to the workspace lint bar.
#![allow(warnings, clippy::all, clippy::pedantic)]

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 32/64-bit outputs plus byte fill.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 the same
    /// way across every implementor so streams stay reproducible.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for b in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = b.len();
            b.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the default test RNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Next 64-bit output.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next(self)
    }
}

/// Types that can be drawn uniformly from an RNG (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Numeric types `gen_range` can produce. Mirrors upstream's
/// `SampleUniform`; the single blanket `SampleRange` impl over this trait
/// is what lets inference unify the range element type with the output in
/// expressions like `x * rng.gen_range(0.5..1.5)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*}
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::draw(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::draw(rng) * (hi - lo)
            }
        }
    )*}
}
impl_sample_uniform_float!(f32, f64);

/// A half-open or inclusive range a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and random selection.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SplitMix64::new(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
