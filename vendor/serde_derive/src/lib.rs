//! Derive macros for the vendored `serde` crate.
//!
//! Supports plain named-field structs only (which is all the workspace
//! derives on). Implemented directly over `proc_macro::TokenTree` — no
//! `syn`/`quote`, since the build environment cannot fetch crates.

// Vendored stub: not held to the workspace lint bar.
#![allow(warnings, clippy::all, clippy::pedantic)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_struct(input);
    let mut body = String::new();
    for f in &target.fields {
        body.push_str(&format!(
            "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    let name = &target.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut m = ::serde::Map::new();\n\
                 {body}\
                 ::serde::Value::Object(m)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a named-field struct.
///
/// Missing keys deserialize from `null`, so `Option` fields may be
/// omitted from the document.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_struct(input);
    let mut body = String::new();
    for f in &target.fields {
        body.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(\n\
                 o.get({f:?}).unwrap_or(&::serde::Value::Null),\n\
             ).map_err(|e| e.in_field({f:?}))?,\n"
        ));
    }
    let name = &target.name;
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let o = v.as_object().ok_or_else(|| {{\n\
                     ::serde::Error::custom(\"expected object for {name}\")\n\
                 }})?;\n\
                 ::std::result::Result::Ok(Self {{\n\
                     {body}\
                 }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

struct Target {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and its field names from the derive input.
fn parse_struct(input: TokenStream) -> Target {
    let mut iter = input.into_iter();
    let mut name = None;
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "struct" {
                break;
            }
            if id.to_string() == "enum" || id.to_string() == "union" {
                panic!("vendored serde derive supports structs only");
            }
        }
    }
    let mut fields = Vec::new();
    for tt in iter {
        match tt {
            TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = parse_fields(g.stream());
                break;
            }
            _ => {}
        }
    }
    Target { name: name.expect("struct has a name"), fields }
}

/// Walks the brace-group token stream of a struct body, collecting field
/// names. Skips attributes and visibility; skips types by consuming until
/// a comma at zero angle-bracket depth (commas inside parens/brackets are
/// hidden inside `Group`s and never reach this level).
fn parse_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    'fields: loop {
        // Attributes: `#[...]`, possibly several.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Visibility: `pub`, optionally `pub(...)`.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            _ => break 'fields,
        }
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}
