//! DFSynthesizer-style iterative swap refinement (Song et al. 2022).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_core::{random_placement, CoreError};
use snnmap_hw::{Coord, CostModel, Mesh, Placement};
use snnmap_model::Pcn;

use crate::{BaselineMapper, BaselineOutcome, Budget};

/// DFSynthesizer's placement strategy (§2.2): start from a random
/// allocation, then repeatedly pick two cores at random, tentatively swap
/// their occupants, and keep the swap iff the quality metric improves.
///
/// The original evaluates throughput and energy of the synthesized
/// schedule on every move; the placement-relevant part of that objective
/// is the interconnect energy `M_ec`, which we evaluate *incrementally*
/// (only the moved clusters' incident edges change) — the same
/// accept/reject decisions at a fraction of the cost, which if anything
/// flatters the baseline's runtime.
///
/// # Examples
///
/// ```
/// use snnmap_baselines::{BaselineMapper, Budget, DfSynthesizerMapper};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(16, 3.0, 2)?;
/// let out = DfSynthesizerMapper::new(5).map(&pcn, Mesh::new(4, 4)?, Budget::unlimited())?;
/// assert!(out.placement.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfSynthesizerMapper {
    seed: u64,
    /// Swap proposals per cluster (total proposals = `proposals_per_cluster × V`).
    proposals_per_cluster: u64,
    cost: CostModel,
}

impl DfSynthesizerMapper {
    /// Default configuration: 50 proposals per cluster, paper's cost
    /// model.
    pub fn new(seed: u64) -> Self {
        Self { seed, proposals_per_cluster: 50, cost: CostModel::paper_target() }
    }

    /// Overrides the proposal budget per cluster.
    pub fn with_proposals_per_cluster(mut self, p: u64) -> Self {
        assert!(p > 0, "need at least one proposal per cluster");
        self.proposals_per_cluster = p;
        self
    }

    /// Energy delta of swapping the occupants of `a` and `b`
    /// (negative = improvement), touching only incident edges.
    fn swap_delta(&self, pcn: &Pcn, placement: &Placement, a: Coord, b: Coord) -> f64 {
        let ca = placement.cluster_at(a);
        let cb = placement.cluster_at(b);
        let mut delta = 0.0;
        let mut side = |c: Option<u32>, from: Coord, to: Coord, other: Option<u32>| {
            let Some(c) = c else { return };
            for (t, w) in pcn.out_edges(c) {
                if Some(t) == other {
                    continue; // mutual edge length is preserved by a swap
                }
                let pt = placement.coord_of(t).expect("complete placement");
                delta += w as f64
                    * (self.cost.spike_energy(to.manhattan(pt))
                        - self.cost.spike_energy(from.manhattan(pt)));
            }
            for (s, w) in pcn.in_edges(c) {
                if Some(s) == other {
                    continue;
                }
                let ps = placement.coord_of(s).expect("complete placement");
                delta += w as f64
                    * (self.cost.spike_energy(to.manhattan(ps))
                        - self.cost.spike_energy(from.manhattan(ps)));
            }
        };
        side(ca, a, b, cb);
        side(cb, b, a, ca);
        delta
    }
}

impl BaselineMapper for DfSynthesizerMapper {
    fn name(&self) -> &'static str {
        "DFSynthesizer"
    }

    fn map(&self, pcn: &Pcn, mesh: Mesh, budget: Budget) -> Result<BaselineOutcome, CoreError> {
        let n = pcn.num_clusters();
        if n as usize > mesh.len() {
            return Err(CoreError::MeshTooSmall { clusters: n, cores: mesh.len() });
        }
        let mut placement = random_placement(pcn, mesh, self.seed)?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xDF5);
        let total = self.proposals_per_cluster.saturating_mul(n as u64);
        let mut iterations = 0u64;
        let mut early_stopped = false;
        while iterations < total {
            // Check the clock every so often, not on every proposal.
            if iterations % 1024 == 0 && budget.exhausted() {
                early_stopped = true;
                break;
            }
            iterations += 1;
            let a = mesh.coord_of_index(rng.gen_range(0..mesh.len()));
            let b = mesh.coord_of_index(rng.gen_range(0..mesh.len()));
            if a == b {
                continue;
            }
            if placement.cluster_at(a).is_none() && placement.cluster_at(b).is_none() {
                continue;
            }
            if self.swap_delta(pcn, &placement, a, b) < 0.0 {
                placement.swap_cores(a, b)?;
            }
        }
        Ok(BaselineOutcome { placement, iterations, early_stopped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_metrics::energy;
    use snnmap_model::generators::random_pcn;
    use std::time::Duration;

    #[test]
    fn improves_over_its_random_start() {
        let pcn = random_pcn(36, 4.0, 9).unwrap();
        let mesh = Mesh::new(6, 6).unwrap();
        let cost = CostModel::paper_target();
        let start = random_placement(&pcn, mesh, 4).unwrap();
        let out = DfSynthesizerMapper::new(4).map(&pcn, mesh, Budget::unlimited()).unwrap();
        let e0 = energy(&pcn, &start, cost).unwrap();
        let e1 = energy(&pcn, &out.placement, cost).unwrap();
        assert!(e1 < e0, "refined {e1} should beat start {e0}");
    }

    #[test]
    fn swap_delta_matches_global_recomputation() {
        let pcn = random_pcn(20, 4.0, 11).unwrap();
        let mesh = Mesh::new(5, 5).unwrap();
        let cost = CostModel::paper_target();
        let mapper = DfSynthesizerMapper::new(0);
        let mut placement = random_placement(&pcn, mesh, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let a = mesh.coord_of_index(rng.gen_range(0..mesh.len()));
            let b = mesh.coord_of_index(rng.gen_range(0..mesh.len()));
            if a == b {
                continue;
            }
            let before = energy(&pcn, &placement, cost).unwrap();
            let delta = mapper.swap_delta(&pcn, &placement, a, b);
            placement.swap_cores(a, b).unwrap();
            let after = energy(&pcn, &placement, cost).unwrap();
            assert!(
                ((after - before) - delta).abs() < 1e-9 * before.max(1.0),
                "delta {delta} vs actual {}",
                after - before
            );
        }
    }

    #[test]
    fn zero_budget_early_stops() {
        let pcn = random_pcn(16, 3.0, 2).unwrap();
        let out = DfSynthesizerMapper::new(0)
            .map(&pcn, Mesh::new(4, 4).unwrap(), Budget::limited(Duration::ZERO))
            .unwrap();
        assert!(out.early_stopped);
        assert!(out.placement.is_complete());
    }

    #[test]
    fn deterministic_per_seed() {
        let pcn = random_pcn(16, 3.0, 2).unwrap();
        let mesh = Mesh::new(4, 4).unwrap();
        let a = DfSynthesizerMapper::new(5).map(&pcn, mesh, Budget::unlimited()).unwrap();
        let b = DfSynthesizerMapper::new(5).map(&pcn, mesh, Budget::unlimited()).unwrap();
        assert_eq!(a.placement, b.placement);
    }
}
