//! Random mapping — the normalization baseline.

use snnmap_core::{random_placement, CoreError};
use snnmap_hw::Mesh;
use snnmap_model::Pcn;

use crate::{BaselineMapper, BaselineOutcome, Budget};

/// Uniformly random cluster-to-core assignment ("The baseline: randomly
/// mapping", §5.1.3). Deterministic per seed.
///
/// # Examples
///
/// ```
/// use snnmap_baselines::{BaselineMapper, Budget, RandomMapper};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(16, 3.0, 0)?;
/// let out = RandomMapper::new(7).map(&pcn, Mesh::new(4, 4)?, Budget::unlimited())?;
/// assert!(out.placement.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RandomMapper {
    seed: u64,
}

impl RandomMapper {
    /// A random mapper with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl BaselineMapper for RandomMapper {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn map(&self, pcn: &Pcn, mesh: Mesh, _budget: Budget) -> Result<BaselineOutcome, CoreError> {
        Ok(BaselineOutcome {
            placement: random_placement(pcn, mesh, self.seed)?,
            iterations: 0,
            early_stopped: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::generators::random_pcn;

    #[test]
    fn deterministic_per_seed() {
        let pcn = random_pcn(20, 3.0, 1).unwrap();
        let mesh = Mesh::new(5, 5).unwrap();
        let a = RandomMapper::new(3).map(&pcn, mesh, Budget::unlimited()).unwrap();
        let b = RandomMapper::new(3).map(&pcn, mesh, Budget::unlimited()).unwrap();
        assert_eq!(a.placement, b.placement);
        let c = RandomMapper::new(4).map(&pcn, mesh, Budget::unlimited()).unwrap();
        assert_ne!(a.placement, c.placement);
    }
}
