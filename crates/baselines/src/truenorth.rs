//! The TrueNorth layer-wise greedy placement (Sawada et al. 2016).

use snnmap_core::{toposort, CoreError};
use snnmap_hw::{Coord, Mesh, Placement};
use snnmap_model::Pcn;

use crate::{BaselineMapper, BaselineOutcome, Budget};

/// The heuristic used by the TrueNorth toolchain (§2.2): clusters are
/// placed layer by layer; input-layer clusters go to predefined positions
/// (here: the row-major front of the mesh), and every subsequent cluster
/// takes the free core minimizing the traffic-weighted sum of distances
/// to its already-placed inward neighbours.
///
/// Each placement scans all free cores, so the method is
/// `O(V · |S| · deg)` — tractable for the small benchmarks it was
/// designed for, and exactly the scaling wall the paper demonstrates on
/// large systems. Under an expired [`Budget`] the remaining clusters fall
/// back to first-free placement and the outcome is flagged early-stopped.
///
/// # Examples
///
/// ```
/// use snnmap_baselines::{BaselineMapper, Budget, TrueNorthMapper};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(9, 2.0, 0)?;
/// let out = TrueNorthMapper::new().map(&pcn, Mesh::new(3, 3)?, Budget::unlimited())?;
/// assert_eq!(out.iterations, 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TrueNorthMapper;

impl TrueNorthMapper {
    /// Creates the mapper (it has no parameters).
    pub fn new() -> Self {
        Self
    }
}

impl BaselineMapper for TrueNorthMapper {
    fn name(&self) -> &'static str {
        "TrueNorth"
    }

    fn map(&self, pcn: &Pcn, mesh: Mesh, budget: Budget) -> Result<BaselineOutcome, CoreError> {
        let n = pcn.num_clusters();
        if n as usize > mesh.len() {
            return Err(CoreError::MeshTooSmall { clusters: n, cores: mesh.len() });
        }
        // Layer-by-layer order: the topological order visits each layer's
        // clusters consecutively.
        let order = toposort(pcn);
        let mut placement = Placement::new_unplaced(mesh, n);
        // Free cores in row-major order for the predefined-position
        // fallback; a cursor skips consumed prefix entries lazily.
        let mut first_free = 0usize;
        let mut early_stopped = false;
        let mut iterations = 0u64;

        for &c in &order {
            iterations += 1;
            if !early_stopped && budget.exhausted() {
                early_stopped = true;
            }
            // Already-placed inward neighbours (preceding layers).
            let placed_in: Vec<(Coord, f64)> = pcn
                .in_edges(c)
                .filter_map(|(s, w)| placement.coord_of(s).map(|p| (p, w as f64)))
                .collect();
            let coord = if placed_in.is_empty() || early_stopped {
                // Input layer (or out of budget): predefined positions,
                // i.e. the first free core in row-major order.
                loop {
                    let cand = mesh.coord_of_index(first_free);
                    if placement.cluster_at(cand).is_none() {
                        break cand;
                    }
                    first_free += 1;
                }
            } else {
                // Scan every free core for the minimum weighted distance
                // to the placed inward neighbours.
                let mut best: Option<(f64, Coord)> = None;
                for idx in 0..mesh.len() {
                    let cand = mesh.coord_of_index(idx);
                    if placement.cluster_at(cand).is_some() {
                        continue;
                    }
                    let score: f64 =
                        placed_in.iter().map(|&(p, w)| w * cand.manhattan(p) as f64).sum();
                    match best {
                        Some((b, _)) if score >= b => {}
                        _ => best = Some((score, cand)),
                    }
                }
                best.expect("mesh has free cores").1
            };
            placement.place(c, coord)?;
        }
        Ok(BaselineOutcome { placement, iterations, early_stopped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_core::random_placement;
    use snnmap_hw::CostModel;
    use snnmap_metrics::energy;
    use snnmap_model::{generators::random_pcn, PcnBuilder};
    use std::time::Duration;

    #[test]
    fn chain_is_placed_contiguously() {
        // 0 -> 1 -> 2: each successor lands adjacent to its predecessor.
        let mut b = PcnBuilder::new();
        for _ in 0..3 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let pcn = b.build().unwrap();
        let out =
            TrueNorthMapper::new().map(&pcn, Mesh::new(3, 3).unwrap(), Budget::unlimited()).unwrap();
        assert_eq!(out.placement.distance(0, 1).unwrap(), 1);
        assert_eq!(out.placement.distance(1, 2).unwrap(), 1);
    }

    #[test]
    fn beats_random_on_layered_graphs() {
        let pcn = random_pcn(49, 4.0, 3).unwrap();
        let mesh = Mesh::new(7, 7).unwrap();
        let cost = CostModel::paper_target();
        let tn = TrueNorthMapper::new().map(&pcn, mesh, Budget::unlimited()).unwrap();
        let e_tn = energy(&pcn, &tn.placement, cost).unwrap();
        let e_rnd = energy(&pcn, &random_placement(&pcn, mesh, 0).unwrap(), cost).unwrap();
        assert!(e_tn < e_rnd, "TrueNorth {e_tn} should beat random {e_rnd}");
    }

    #[test]
    fn zero_budget_early_stops_but_completes() {
        let pcn = random_pcn(25, 3.0, 5).unwrap();
        let out = TrueNorthMapper::new()
            .map(&pcn, Mesh::new(5, 5).unwrap(), Budget::limited(Duration::ZERO))
            .unwrap();
        assert!(out.early_stopped);
        assert!(out.placement.is_complete());
    }

    #[test]
    fn weighted_pull_dominates() {
        // Cluster 3 receives a heavy edge from 0 and a light one from 2;
        // it must land next to 0.
        let mut b = PcnBuilder::new();
        for _ in 0..4 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 3, 100.0).unwrap();
        b.add_edge(1, 2, 0.1).unwrap();
        b.add_edge(2, 3, 0.1).unwrap();
        let pcn = b.build().unwrap();
        let out =
            TrueNorthMapper::new().map(&pcn, Mesh::new(4, 4).unwrap(), Budget::unlimited()).unwrap();
        assert_eq!(out.placement.distance(0, 3).unwrap(), 1);
    }
}
