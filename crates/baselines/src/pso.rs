//! Discrete particle swarm optimization (PSOPART / SpiNeMap / Song).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_core::{random_placement, CoreError};
use snnmap_hw::{CostModel, Mesh, Placement};
use snnmap_model::Pcn;

use crate::{BaselineMapper, BaselineOutcome, Budget};

/// Discrete (binarized) PSO over placements, the optimizer behind
/// PSOPART, SpiNeMap and Song et al.'s design flow (§2.2): a swarm of
/// candidate placements evolves by pulling each particle toward its
/// personal best and the global best.
///
/// Positions are permutations, so "moving toward" a best is realized as
/// adoption swaps: for each cluster, with probability `c1` the particle
/// swaps the cluster into its personal-best core, with probability `c2`
/// into the global-best core, and with probability `w` (inertia) into a
/// random core — the standard discretization of velocity for assignment
/// problems, equivalent to SpiNeMap's binarized positions. Fitness is
/// the interconnect energy `M_ec`.
///
/// # Examples
///
/// ```
/// use snnmap_baselines::{BaselineMapper, Budget, PsoMapper};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(16, 3.0, 3)?;
/// let out = PsoMapper::new(1).with_generations(10).map(&pcn, Mesh::new(4, 4)?, Budget::unlimited())?;
/// assert!(out.placement.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsoMapper {
    seed: u64,
    swarm: usize,
    generations: u64,
    inertia: f64,
    c1: f64,
    c2: f64,
    cost: CostModel,
}

impl PsoMapper {
    /// The configuration of the SOTA comparison (Song et al. 2021):
    /// 20 particles, 100 generations, inertia 0.05, c1 = c2 = 0.1.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            swarm: 20,
            generations: 100,
            inertia: 0.05,
            c1: 0.1,
            c2: 0.1,
            cost: CostModel::paper_target(),
        }
    }

    /// Overrides the swarm size.
    pub fn with_swarm(mut self, swarm: usize) -> Self {
        assert!(swarm > 0);
        self.swarm = swarm;
        self
    }

    /// Overrides the generation count.
    pub fn with_generations(mut self, generations: u64) -> Self {
        assert!(generations > 0);
        self.generations = generations;
        self
    }

    fn fitness(&self, pcn: &Pcn, p: &Placement) -> f64 {
        let mut total = 0.0;
        for c in 0..pcn.num_clusters() {
            let pc = p.coord_of(c).expect("complete placement");
            for (t, w) in pcn.out_edges(c) {
                let pt = p.coord_of(t).expect("complete placement");
                total += w as f64 * self.cost.spike_energy(pc.manhattan(pt));
            }
        }
        total
    }

    /// Pull `particle` toward `target`: move `cluster` onto the core it
    /// occupies in `target`, swapping with the current occupant.
    fn adopt(particle: &mut Placement, target: &Placement, cluster: u32) {
        let want = target.coord_of(cluster).expect("complete placement");
        let have = particle.coord_of(cluster).expect("complete placement");
        if want != have {
            particle.swap_cores(have, want).expect("coords are in-mesh");
        }
    }
}

impl BaselineMapper for PsoMapper {
    fn name(&self) -> &'static str {
        "PSO"
    }

    fn map(&self, pcn: &Pcn, mesh: Mesh, budget: Budget) -> Result<BaselineOutcome, CoreError> {
        let n = pcn.num_clusters();
        if n as usize > mesh.len() {
            return Err(CoreError::MeshTooSmall { clusters: n, cores: mesh.len() });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9507);
        let mut particles: Vec<Placement> = (0..self.swarm)
            .map(|k| random_placement(pcn, mesh, self.seed.wrapping_add(k as u64)))
            .collect::<Result<_, _>>()?;
        // Personal bests live in parallel vectors so a particle can be
        // mutated while its own best is read without cloning (cloning a
        // million-cluster placement per adoption would be ruinous).
        let mut pbest_fit: Vec<f64> = particles.iter().map(|p| self.fitness(pcn, p)).collect();
        let mut pbest_pos: Vec<Placement> = particles.clone();
        let gbest_idx = pbest_fit
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite fitness"))
            .expect("nonempty swarm")
            .0;
        let mut gbest_fit = pbest_fit[gbest_idx];
        let mut gbest_pos = pbest_pos[gbest_idx].clone();

        let mut iterations = 0u64;
        let mut early_stopped = false;
        'outer: for _ in 0..self.generations {
            if budget.exhausted() {
                early_stopped = true;
                break 'outer;
            }
            iterations += 1;
            for k in 0..self.swarm {
                for c in 0..n {
                    // A generation over a million clusters is long; keep
                    // the budget honest mid-generation too.
                    if c % 65_536 == 0 && budget.exhausted() {
                        early_stopped = true;
                        break 'outer;
                    }
                    let r: f64 = rng.gen();
                    if r < self.inertia {
                        let idx = rng.gen_range(0..mesh.len());
                        let have = particles[k].coord_of(c).expect("complete placement");
                        let to = mesh.coord_of_index(idx);
                        particles[k].swap_cores(have, to).expect("in-mesh");
                    } else if r < self.inertia + self.c1 {
                        Self::adopt(&mut particles[k], &pbest_pos[k], c);
                    } else if r < self.inertia + self.c1 + self.c2 {
                        Self::adopt(&mut particles[k], &gbest_pos, c);
                    }
                }
                let f = self.fitness(pcn, &particles[k]);
                if f < pbest_fit[k] {
                    pbest_fit[k] = f;
                    pbest_pos[k] = particles[k].clone();
                    if f < gbest_fit {
                        gbest_fit = f;
                        gbest_pos = particles[k].clone();
                    }
                }
            }
        }
        Ok(BaselineOutcome { placement: gbest_pos, iterations, early_stopped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_metrics::energy;
    use snnmap_model::generators::random_pcn;
    use std::time::Duration;

    #[test]
    fn improves_over_random_baseline() {
        let pcn = random_pcn(25, 4.0, 13).unwrap();
        let mesh = Mesh::new(5, 5).unwrap();
        let cost = CostModel::paper_target();
        let rnd = random_placement(&pcn, mesh, 0).unwrap();
        let out = PsoMapper::new(0)
            .with_generations(30)
            .map(&pcn, mesh, Budget::unlimited())
            .unwrap();
        let e_pso = energy(&pcn, &out.placement, cost).unwrap();
        let e_rnd = energy(&pcn, &rnd, cost).unwrap();
        assert!(e_pso < e_rnd, "PSO {e_pso} should beat random {e_rnd}");
    }

    #[test]
    fn gbest_monotone_under_more_generations() {
        let pcn = random_pcn(16, 3.0, 17).unwrap();
        let mesh = Mesh::new(4, 4).unwrap();
        let cost = CostModel::paper_target();
        let short = PsoMapper::new(2).with_generations(5).map(&pcn, mesh, Budget::unlimited()).unwrap();
        let long = PsoMapper::new(2).with_generations(50).map(&pcn, mesh, Budget::unlimited()).unwrap();
        let es = energy(&pcn, &short.placement, cost).unwrap();
        let el = energy(&pcn, &long.placement, cost).unwrap();
        assert!(el <= es + 1e-9, "more generations cannot be worse: {el} vs {es}");
    }

    #[test]
    fn zero_budget_returns_best_initial() {
        let pcn = random_pcn(16, 3.0, 19).unwrap();
        let out = PsoMapper::new(1)
            .map(&pcn, Mesh::new(4, 4).unwrap(), Budget::limited(Duration::ZERO))
            .unwrap();
        assert!(out.early_stopped);
        assert_eq!(out.iterations, 0);
        assert!(out.placement.is_complete());
    }

    #[test]
    fn deterministic_per_seed() {
        let pcn = random_pcn(16, 3.0, 23).unwrap();
        let mesh = Mesh::new(4, 4).unwrap();
        let a = PsoMapper::new(3).with_generations(10).map(&pcn, mesh, Budget::unlimited()).unwrap();
        let b = PsoMapper::new(3).with_generations(10).map(&pcn, mesh, Budget::unlimited()).unwrap();
        assert_eq!(a.placement, b.placement);
    }
}
