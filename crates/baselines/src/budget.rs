//! Wall-clock budgets for iterative baselines.

use std::time::{Duration, Instant};

/// A wall-clock budget, mirroring the paper's 100-hour cap on baseline
/// methods ("Early Stop" in Figures 9–12).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use snnmap_baselines::Budget;
///
/// let b = Budget::unlimited();
/// assert!(!b.exhausted());
/// let b = Budget::limited(Duration::from_secs(60));
/// assert!(!b.exhausted()); // 60 seconds have not elapsed yet
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    started: Instant,
    limit: Option<Duration>,
}

impl Budget {
    /// A budget with no limit: the method runs to completion.
    pub fn unlimited() -> Self {
        Self { started: Instant::now(), limit: None }
    }

    /// A budget expiring `limit` after creation.
    pub fn limited(limit: Duration) -> Self {
        Self { started: Instant::now(), limit: Some(limit) }
    }

    /// Whether the budget has expired.
    pub fn exhausted(&self) -> bool {
        match self.limit {
            Some(l) => self.started.elapsed() >= l,
            None => false,
        }
    }

    /// Time since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_is_immediately_exhausted() {
        let b = Budget::limited(Duration::ZERO);
        assert!(b.exhausted());
    }

    #[test]
    fn unlimited_never_exhausts() {
        assert!(!Budget::unlimited().exhausted());
    }

    #[test]
    fn elapsed_monotone() {
        let b = Budget::unlimited();
        let a = b.elapsed();
        assert!(b.elapsed() >= a);
    }
}
