//! Baseline SNN-mapping approaches from the literature (§5.1.3).
//!
//! The paper compares its Hilbert + Force-Directed approach against four
//! prior methods, all reimplemented here behind one [`BaselineMapper`]
//! trait:
//!
//! * [`RandomMapper`] — clusters shuffled uniformly over the cores (the
//!   normalization baseline of every figure),
//! * [`TrueNorthMapper`] — the layer-by-layer greedy placement of the
//!   TrueNorth toolchain (Sawada et al. 2016),
//! * [`DfSynthesizerMapper`] — random initialization refined by
//!   accept-if-better pair swaps (Song et al. 2022),
//! * [`PsoMapper`] — discrete (binarized) particle swarm optimization as
//!   used by PSOPART/SpiNeMap/Song (Das et al. 2018; Balaji et al. 2020).
//!
//! Like the paper's experiments, every iterative baseline runs under a
//! wall-clock [`Budget`] and reports whether it stopped early (the paper
//! caps baselines at 100 hours and marks those bars "ES"; our default
//! budgets are minutes, configurable per run).
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use snnmap_baselines::{BaselineMapper, Budget, TrueNorthMapper};
//! use snnmap_hw::Mesh;
//! use snnmap_model::generators::random_pcn;
//!
//! let pcn = random_pcn(36, 3.0, 1)?;
//! let mesh = Mesh::new(6, 6)?;
//! let outcome = TrueNorthMapper::new().map(&pcn, mesh, Budget::unlimited())?;
//! assert!(outcome.placement.is_complete());
//! assert!(!outcome.early_stopped);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod budget;
mod dfsynthesizer;
mod pso;
mod random;
mod truenorth;

use snnmap_core::CoreError;
use snnmap_hw::{Mesh, Placement};
use snnmap_model::Pcn;

pub use budget::Budget;
pub use dfsynthesizer::DfSynthesizerMapper;
pub use pso::PsoMapper;
pub use random::RandomMapper;
pub use truenorth::TrueNorthMapper;

/// The result of one baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The produced (complete) placement.
    pub placement: Placement,
    /// Optimization iterations performed (method-specific unit: greedy
    /// placements, swap proposals, or PSO generations).
    pub iterations: u64,
    /// Whether the wall-clock budget expired before the method finished
    /// its configured work — the paper's "ES" (early stop) marker.
    pub early_stopped: bool,
}

/// A placement method used as a comparison point.
pub trait BaselineMapper {
    /// Method name as it appears in the paper's figures.
    fn name(&self) -> &'static str;

    /// Maps the PCN onto the mesh within the given budget.
    ///
    /// # Errors
    ///
    /// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores.
    fn map(&self, pcn: &Pcn, mesh: Mesh, budget: Budget) -> Result<BaselineOutcome, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::generators::random_pcn;

    /// Every baseline produces a valid, complete placement on a non-full
    /// mesh within an unlimited budget.
    #[test]
    fn all_baselines_produce_valid_placements() {
        let pcn = random_pcn(30, 3.0, 7).unwrap();
        let mesh = Mesh::new(6, 6).unwrap();
        let mappers: Vec<Box<dyn BaselineMapper>> = vec![
            Box::new(RandomMapper::new(1)),
            Box::new(TrueNorthMapper::new()),
            Box::new(DfSynthesizerMapper::new(1)),
            Box::new(PsoMapper::new(1)),
        ];
        for m in mappers {
            let out = m.map(&pcn, mesh, Budget::unlimited()).unwrap();
            assert!(out.placement.is_complete(), "{}", m.name());
            out.placement.check_consistency().unwrap();
        }
    }

    #[test]
    fn all_baselines_reject_overfull_mesh() {
        let pcn = random_pcn(40, 3.0, 7).unwrap();
        let mesh = Mesh::new(6, 6).unwrap();
        let mappers: Vec<Box<dyn BaselineMapper>> = vec![
            Box::new(RandomMapper::new(1)),
            Box::new(TrueNorthMapper::new()),
            Box::new(DfSynthesizerMapper::new(1)),
            Box::new(PsoMapper::new(1)),
        ];
        for m in mappers {
            assert!(
                matches!(
                    m.map(&pcn, mesh, Budget::unlimited()),
                    Err(CoreError::MeshTooSmall { .. })
                ),
                "{}",
                m.name()
            );
        }
    }
}
