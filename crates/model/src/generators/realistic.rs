//! Realistic ANN-derived SNN benchmarks (Table 3, bottom half).
//!
//! The paper trains LeNet, AlexNet, MobileNet, InceptionV3 and ResNet in
//! TensorFlow and converts them to SNNs with SNNToolBox. The mapping
//! algorithms, however, consume only the *graph structure* and the
//! relative spike-traffic volumes — never trained weights. We therefore
//! reproduce each model as a [`LayerGraph`] whose layer topology follows
//! the published architecture and whose neuron/synapse totals match
//! Table 3 (fan-ins of the window connections are uniformly scaled so the
//! synapse total hits the table value; spatial layer sizes are scaled so
//! the neuron total does). Spike densities are seeded-random per
//! connection, standing in for measured traffic.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{ConnPattern, LayerGraph, ModelError, SnnNetwork};

const MATERIALIZE_LIMIT: u64 = 100_000_000;

/// One of the six converted-ANN benchmarks of Table 3.
///
/// # Examples
///
/// ```
/// use snnmap_model::generators::RealisticModel;
///
/// let g = RealisticModel::LeNetMnist.layer_graph(0);
/// assert_eq!(g.num_neurons(), 9118); // Table 3's LeNet-MNIST row
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealisticModel {
    /// LeNet-5 on 32×32 MNIST (9118 neurons, 0.4 M synapses).
    LeNetMnist,
    /// LeNet scaled to 224×224 ImageNet inputs (1.0 M neurons, 188 M
    /// synapses).
    LeNetImageNet,
    /// AlexNet (0.9 M neurons, 1.0 B synapses).
    AlexNet,
    /// MobileNetV1 (6.9 M neurons, 0.5 B synapses).
    MobileNet,
    /// InceptionV3 (14.6 M neurons, 5.4 B synapses).
    InceptionV3,
    /// ResNet-152 (28.5 M neurons, 11.6 B synapses).
    ResNet,
}

/// A connection in a model skeleton before fan-in calibration.
#[derive(Clone, Copy)]
enum Proto {
    Full,
    /// Sliding window: (total fan-in, taps). Taps > 1 model channel-major
    /// convolutions, whose receptive fields touch every channel block of
    /// the source layer and therefore many clusters.
    Win(u64, u32),
}

/// A model skeleton: layers plus proto-connections, later calibrated so
/// that total synapses hit the Table 3 value.
struct Skeleton {
    layers: Vec<u64>,
    conns: Vec<(usize, usize, Proto)>,
}

impl Skeleton {
    fn new() -> Self {
        Self { layers: Vec::new(), conns: Vec::new() }
    }

    fn layer(&mut self, n: u64) -> usize {
        assert!(n > 0);
        self.layers.push(n);
        self.layers.len() - 1
    }

    /// Appends a layer connected from `from` with a single-tap window of
    /// nominal fan-in `f`, returning the new layer's index.
    fn win_layer(&mut self, from: usize, n: u64, f: u64) -> usize {
        self.win_layer_t(from, n, f, 1)
    }

    /// Appends a layer connected from `from` with a `taps`-tap window.
    fn win_layer_t(&mut self, from: usize, n: u64, f: u64, taps: u32) -> usize {
        let l = self.layer(n);
        self.conns.push((from, l, Proto::Win(f, taps)));
        l
    }

    fn full(&mut self, from: usize, to: usize) {
        self.conns.push((from, to, Proto::Full));
    }

    fn win(&mut self, from: usize, to: usize, f: u64) {
        self.conns.push((from, to, Proto::Win(f, 1)));
    }

    fn win_t(&mut self, from: usize, to: usize, f: u64, taps: u32) {
        self.conns.push((from, to, Proto::Win(f, taps)));
    }

    fn synapses(&self) -> (u64, u64) {
        let mut full = 0u64;
        let mut win = 0u64;
        for &(from, to, p) in &self.conns {
            match p {
                Proto::Full => full += self.layers[from] * self.layers[to],
                Proto::Win(f, _) => win += f * self.layers[to],
            }
        }
        (full, win)
    }

    /// Builds the final [`LayerGraph`], scaling window fan-ins uniformly
    /// so total synapses ≈ `target_synapses` (exact for `None`), with
    /// seeded random spike densities.
    fn build(self, name: &str, target_synapses: Option<u64>, seed: u64) -> LayerGraph {
        let (full, win) = self.synapses();
        let alpha = match target_synapses {
            Some(t) if win > 0 => (t.saturating_sub(full)) as f64 / win as f64,
            _ => 1.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EA1);
        let mut g = LayerGraph::new(name);
        for &n in &self.layers {
            g.add_layer(n);
        }
        for (from, to, p) in self.conns {
            let rate: f32 = rng.gen_range(0.05..=1.0);
            let pattern = match p {
                Proto::Full => ConnPattern::Full,
                Proto::Win(f, taps) => {
                    let n_pre = self.layers[from];
                    let scaled = ((f as f64 * alpha).round() as u64).max(1).min(n_pre);
                    if taps <= 1 {
                        ConnPattern::Window { fan_in: scaled }
                    } else {
                        // Keep the multi-tap decomposition valid: at least
                        // one synapse per tap, and per-tap windows no
                        // longer than the tap's sub-range.
                        let taps = taps.min(scaled.min(n_pre) as u32);
                        let fan_in =
                            scaled.max(taps as u64).min(taps as u64 * (n_pre / taps as u64));
                        ConnPattern::MultiWindow { fan_in, taps }
                    }
                }
            };
            g.connect(from, to, pattern, rate).expect("skeleton connections are valid");
        }
        g
    }
}

impl RealisticModel {
    /// All six models, in Table 3 order.
    pub fn all() -> [RealisticModel; 6] {
        [
            RealisticModel::LeNetMnist,
            RealisticModel::LeNetImageNet,
            RealisticModel::AlexNet,
            RealisticModel::MobileNet,
            RealisticModel::InceptionV3,
            RealisticModel::ResNet,
        ]
    }

    /// Display name matching Table 3.
    pub fn name(&self) -> &'static str {
        match self {
            RealisticModel::LeNetMnist => "LeNet-MNIST",
            RealisticModel::LeNetImageNet => "LeNet-ImageNet",
            RealisticModel::AlexNet => "AlexNet",
            RealisticModel::MobileNet => "MobileNet",
            RealisticModel::InceptionV3 => "InceptionV3",
            RealisticModel::ResNet => "ResNet",
        }
    }

    /// Table 3 reference totals `(neurons, synapses)` as printed in the
    /// paper (rounded there; used as calibration targets here).
    pub fn paper_totals(&self) -> (u64, u64) {
        match self {
            RealisticModel::LeNetMnist => (9_118, 400_000),
            RealisticModel::LeNetImageNet => (1_000_000, 188_000_000),
            RealisticModel::AlexNet => (900_000, 1_000_000_000),
            RealisticModel::MobileNet => (6_900_000, 500_000_000),
            RealisticModel::InceptionV3 => (14_600_000, 5_400_000_000),
            RealisticModel::ResNet => (28_500_000, 11_600_000_000),
        }
    }

    /// Table 3 reference PCN shape `(clusters, connections, mesh side)`.
    pub fn paper_pcn(&self) -> (u64, u64, u16) {
        match self {
            RealisticModel::LeNetMnist => (9, 19, 3),
            RealisticModel::LeNetImageNet => (251, 2_151, 16),
            RealisticModel::AlexNet => (229, 4_289, 16),
            RealisticModel::MobileNet => (1_688, 37_418, 42),
            RealisticModel::InceptionV3 => (3_570, 117_597, 60),
            RealisticModel::ResNet => (6_956, 478_602, 84),
        }
    }

    /// Builds the model's layer graph with seeded spike densities.
    pub fn layer_graph(&self, seed: u64) -> LayerGraph {
        match self {
            RealisticModel::LeNetMnist => Self::lenet_mnist(seed),
            RealisticModel::LeNetImageNet => Self::lenet_imagenet(seed),
            RealisticModel::AlexNet => Self::alexnet(seed),
            RealisticModel::MobileNet => Self::mobilenet(seed),
            RealisticModel::InceptionV3 => Self::inception_v3(seed),
            RealisticModel::ResNet => Self::resnet(seed),
        }
    }

    /// Materializes the explicit network; only LeNet-MNIST (and
    /// LeNet-ImageNet, just under the guard) are small enough.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooLargeToMaterialize`] beyond 10⁸ synapses.
    pub fn build(&self, seed: u64) -> Result<SnnNetwork, ModelError> {
        self.layer_graph(seed).materialize(MATERIALIZE_LIMIT)
    }

    /// LeNet-5 on 32×32 inputs: the classic C1/S2/C3/S4/C5/F6/output
    /// stack. Totals are within rounding of Table 3 without calibration
    /// (9118 neurons, 422 824 synapses vs "0.4 M").
    fn lenet_mnist(seed: u64) -> LayerGraph {
        let mut s = Skeleton::new();
        let input = s.layer(1024); // 32x32
        let c1 = s.win_layer(input, 4704, 25); // 6@28x28, 5x5 kernels
        let s2 = s.win_layer(c1, 1176, 4); // 6@14x14, 2x2 pooling
        let c3 = s.win_layer(s2, 1600, 150); // 16@10x10, 5x5 over 6 maps
        let s4 = s.win_layer(c3, 400, 4); // 16@5x5
        let c5 = s.layer(120);
        s.full(s4, c5);
        let f6 = s.layer(84);
        s.full(c5, f6);
        let out = s.layer(10);
        s.full(f6, out);
        s.build("LeNet-MNIST", None, seed)
    }

    /// LeNet scaled to 224×224×3 inputs; calibrated to 188 M synapses.
    fn lenet_imagenet(seed: u64) -> LayerGraph {
        let mut s = Skeleton::new();
        let input = s.layer(150_528); // 224x224x3
        let c1 = s.win_layer_t(input, 290_400, 75, 4); // 6@220x220, 5x5x3
        let s2 = s.win_layer(c1, 72_600, 4); // 6@110x110
        let c3 = s.win_layer_t(s2, 179_776, 150, 8); // 16@106x106
        let s4 = s.win_layer(c3, 44_944, 4); // 16@53x53
        let c5 = s.win_layer_t(s4, 288_120, 400, 16); // 120@49x49
        let f6 = s.layer(84);
        s.full(c5, f6);
        let out = s.layer(10);
        s.full(f6, out);
        s.build("LeNet-ImageNet", Some(188_000_000), seed)
    }

    /// AlexNet with its two pooling stages and three FC layers;
    /// calibrated to 1.0 B synapses.
    fn alexnet(seed: u64) -> LayerGraph {
        let mut s = Skeleton::new();
        let input = s.layer(150_528); // 224x224x3
        let c1 = s.win_layer_t(input, 290_400, 363, 12); // 96@55x55, 11x11x3
        let p1 = s.win_layer_t(c1, 69_984, 9, 4); // 96@27x27
        let c2 = s.win_layer_t(p1, 186_624, 1675, 24); // 256@27x27, 5x5x96 (pruned)
        let p2 = s.win_layer_t(c2, 43_264, 9, 4); // 256@13x13
        let c3 = s.win_layer_t(p2, 64_896, 2304, 24); // 384@13x13, 3x3x256
        let c4 = s.win_layer_t(c3, 64_896, 3456, 24); // 384@13x13, 3x3x384
        let c5 = s.win_layer_t(c4, 43_264, 3456, 24); // 256@13x13
        let f6 = s.win_layer_t(c5, 4_096, 9216, 32); // dense from 6x6x256
        let f7 = s.layer(4_096);
        s.full(f6, f7);
        let f8 = s.layer(1_000);
        s.full(f7, f8);
        s.build("AlexNet", Some(1_000_000_000), seed)
    }

    /// MobileNetV1 at 256×256: depthwise (fan-in 9) / pointwise (fan-in
    /// `C_in`) separable stacks; calibrated to 0.5 B synapses.
    fn mobilenet(seed: u64) -> LayerGraph {
        let mut s = Skeleton::new();
        let input = s.layer(196_608); // 256x256x3
        let mut prev = s.win_layer_t(input, 524_288, 27, 8); // 32@128^2
        // (channels, spatial elements) per depthwise/pointwise pair.
        let pairs: [(u64, u64, u64); 13] = [
            // (dw size, pw size, pw fan-in)
            (524_288, 1_048_576, 32),
            (262_144, 524_288, 64),
            (524_288, 524_288, 128),
            (131_072, 262_144, 128),
            (262_144, 262_144, 256),
            (65_536, 131_072, 256),
            (131_072, 131_072, 512),
            (131_072, 131_072, 512),
            (131_072, 131_072, 512),
            (131_072, 131_072, 512),
            (131_072, 131_072, 512),
            (32_768, 65_536, 512),
            (65_536, 65_536, 1024),
        ];
        for (dw, pw, f) in pairs {
            let d = s.win_layer_t(prev, dw, 9, 8);
            prev = s.win_layer_t(d, pw, f, 24);
        }
        let pool = s.win_layer(prev, 1_024, 64);
        let fc = s.layer(1_000);
        s.full(pool, fc);
        s.build("MobileNet", Some(500_000_000), seed)
    }

    /// InceptionV3-style stem plus three groups of multi-branch blocks;
    /// spatial sizes scaled so neurons ≈ 14.6 M, fan-ins calibrated to
    /// 5.4 B synapses.
    fn inception_v3(seed: u64) -> LayerGraph {
        // Spatial scale applied to all convolutional layer sizes.
        const SC: f64 = 1.58;
        let z = |n: u64| -> u64 { ((n as f64 * SC).round() as u64).max(1) };
        let mut s = Skeleton::new();
        let input = s.layer(z(268_203)); // 299x299x3
        let s1 = s.win_layer_t(input, z(710_432), 27, 8); // 32@149^2
        let s2 = s.win_layer_t(s1, z(691_488), 288, 8); // 32@147^2
        let s3 = s.win_layer_t(s2, z(1_382_976), 288, 8); // 64@147^2
        let s4 = s.win_layer(s3, z(341_056), 9); // pool 64@73^2
        let s5 = s.win_layer_t(s4, z(426_320), 64, 8); // 80@73^2
        let s6 = s.win_layer_t(s5, z(967_872), 720, 8); // 192@71^2
        let s7 = s.win_layer(s6, z(235_200), 9); // pool 192@35^2
        // A blocks (35x35): four branches, some two convolutions deep.
        let mut inputs = vec![s7];
        for _ in 0..3 {
            let mut outs = Vec::new();
            for &(mid, out, f1, f2) in &[
                (z(78_400), z(117_600), 192u64, 576u64), // 1x1 -> 3x3 branch
                (z(58_800), z(78_400), 192, 432),        // 1x1 -> 5x5 branch
                (z(78_400), z(117_600), 192, 576),       // double 3x3 branch
                (z(39_200), z(39_200), 9, 192),          // pool -> 1x1 branch
            ] {
                let mut it = inputs.iter();
                let Some(&first) = it.next() else { continue };
                let m = s.win_layer_t(first, mid, f1, 24);
                for &inp in it {
                    s.win_t(inp, m, f1, 24);
                }
                outs.push(s.win_layer_t(m, out, f2, 24));
            }
            inputs = outs;
        }
        // B blocks (17x17, 768 channels): 7x1 factorized branches.
        inputs = {
            // Reduction: connect all A outputs into a single grid layer.
            let red = s.layer(z(221_952));
            for &i in &inputs {
                s.win_t(i, red, 864, 24);
            }
            vec![red]
        };
        for _ in 0..4 {
            let mut outs = Vec::new();
            for &(mid, out, f1, f2) in &[
                (z(55_488), z(55_488), 768u64, 768u64),
                (z(36_992), z(55_488), 768, 896),
                (z(36_992), z(55_488), 896, 896),
                (z(55_488), z(55_488), 9, 768),
            ] {
                let mut it = inputs.iter();
                let Some(&first) = it.next() else { continue };
                let m = s.win_layer_t(first, mid, f1, 24);
                for &inp in it {
                    s.win_t(inp, m, f1, 24);
                }
                outs.push(s.win_layer_t(m, out, f2, 24));
            }
            inputs = outs;
        }
        // C blocks (8x8, 2048 channels).
        inputs = {
            let red = s.layer(z(131_072));
            for &i in &inputs {
                s.win_t(i, red, 1280, 24);
            }
            vec![red]
        };
        for _ in 0..2 {
            let mut outs = Vec::new();
            for &(mid, out, f1, f2) in &[
                (z(20_480), z(20_480), 1280u64, 1280u64),
                (z(24_576), z(49_152), 1280, 1152),
                (z(28_672), z(49_152), 1280, 1344),
                (z(12_288), z(12_288), 9, 1280),
            ] {
                let mut it = inputs.iter();
                let Some(&first) = it.next() else { continue };
                let m = s.win_layer_t(first, mid, f1, 24);
                for &inp in it {
                    s.win_t(inp, m, f1, 24);
                }
                outs.push(s.win_layer_t(m, out, f2, 24));
            }
            inputs = outs;
        }
        let pool = s.layer(2_048);
        for &i in &inputs {
            s.win(i, pool, 64);
        }
        let fc = s.layer(1_000);
        s.full(pool, fc);
        s.build("InceptionV3", Some(5_400_000_000), seed)
    }

    /// ResNet-152 with bottleneck blocks and identity skip connections
    /// (fan-in-1 windows); spatial sizes scaled so neurons ≈ 28.5 M,
    /// fan-ins calibrated to 11.6 B synapses.
    fn resnet(seed: u64) -> LayerGraph {
        const SC: f64 = 1.378;
        let z = |n: u64| -> u64 { ((n as f64 * SC).round() as u64).max(1) };
        let mut s = Skeleton::new();
        let input = s.layer(z(150_528));
        let conv1 = s.win_layer_t(input, z(802_816), 147, 12); // 64@112^2, 7x7x3
        // (blocks, width of the two narrow convs, width of the wide conv,
        //  narrow fan-in, 3x3 fan-in, wide fan-in).
        let stages: [(usize, u64, u64, u64, u64, u64); 4] = [
            (3, z(200_704), z(802_816), 256, 576, 64),
            (8, z(100_352), z(401_408), 512, 1152, 128),
            (36, z(50_176), z(200_704), 1024, 2304, 256),
            (3, z(25_088), z(100_352), 2048, 4608, 512),
        ];
        let mut prev = conv1;
        for (blocks, narrow, wide, f1, f2, f3) in stages {
            for _ in 0..blocks {
                let a = s.win_layer_t(prev, narrow, f1, 48);
                let b = s.win_layer_t(a, narrow, f2, 48);
                let c = s.win_layer_t(b, wide, f3, 48);
                // Identity skip: block input feeds the block output
                // directly.
                s.win(prev, c, 1);
                prev = c;
            }
        }
        let pool = s.win_layer(prev, 2_048, 64);
        let fc = s.layer(1_000);
        s.full(pool, fc);
        s.build("ResNet", Some(11_600_000_000), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_mnist_matches_table3_exactly() {
        let g = RealisticModel::LeNetMnist.layer_graph(0);
        assert_eq!(g.num_neurons(), 9_118);
        assert_eq!(g.num_synapses(), 422_824); // "0.4M" in the table
    }

    #[test]
    fn all_models_hit_paper_totals() {
        for m in RealisticModel::all() {
            let g = m.layer_graph(0);
            let (pn, ps) = m.paper_totals();
            let n = g.num_neurons() as f64;
            let s = g.num_synapses() as f64;
            assert!(
                (n - pn as f64).abs() / (pn as f64) < 0.05,
                "{}: neurons {n} vs paper {pn}",
                m.name()
            );
            assert!(
                (s - ps as f64).abs() / (ps as f64) < 0.10,
                "{}: synapses {s} vs paper {ps}",
                m.name()
            );
        }
    }

    #[test]
    fn lenet_mnist_materializes_and_roundtrips() {
        let snn = RealisticModel::LeNetMnist.build(1).unwrap();
        assert_eq!(snn.num_neurons(), 9_118);
        assert_eq!(snn.num_synapses(), 422_824);
    }

    #[test]
    fn resnet_has_skip_connections() {
        let g = RealisticModel::ResNet.layer_graph(0);
        let skips = g
            .conns()
            .iter()
            .filter(|c| matches!(c.pattern, ConnPattern::Window { fan_in: 1 }))
            .count();
        assert_eq!(skips, 3 + 8 + 36 + 3);
    }

    #[test]
    fn inception_is_branchy() {
        let g = RealisticModel::InceptionV3.layer_graph(0);
        // Some layer must feed more than one successor (parallel branches).
        let mut out_deg = vec![0u32; g.num_layers()];
        for c in g.conns() {
            out_deg[c.from] += 1;
        }
        assert!(out_deg.iter().any(|&d| d >= 4), "expected 4-way branch points");
    }

    #[test]
    fn graphs_are_seed_deterministic() {
        for m in [RealisticModel::LeNetMnist, RealisticModel::AlexNet] {
            assert_eq!(m.layer_graph(5), m.layer_graph(5));
            assert_ne!(m.layer_graph(5), m.layer_graph(6));
        }
    }
}
