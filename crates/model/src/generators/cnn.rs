//! Synthetic convolutional network generators (Table 3, rows CNN_*).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{ConnPattern, LayerGraph, ModelError, SnnNetwork};

const MATERIALIZE_LIMIT: u64 = 100_000_000;

/// Specification of a synthetic convolutional chain: layers of equal
/// width where each target neuron receives a fixed fan-in from a sliding
/// window of the previous layer — the 1D shadow of convolutional
/// connectivity ("the connections between neurons follow the classical
/// convolutional network structure", §5.1.2).
///
/// # Table 3 presets
///
/// Matching the table's neuron and synapse totals pins the shapes:
///
/// | Row | Shape | Fan-in | Neurons | Synapses |
/// |---|---|---|---|---|
/// | CNN_65K  | 4 × 16 384     | 41 | 65 536 | 2.0 M |
/// | CNN_16M  | 64 × 262 144   | 32 | 16.7 M | 528 M |
/// | CNN_268M | 1024 × 262 144 | 30 | 268 M  | 8.0 B |
///
/// (`(L−1)·W·f` synapses; e.g. CNN_16M: 63 · 262 144 · 32 = 528.5 M,
/// matching the paper's 528 M.)
///
/// # Examples
///
/// ```
/// use snnmap_model::generators::CnnSpec;
///
/// let g = CnnSpec::cnn_16m().layer_graph(0);
/// assert_eq!(g.num_neurons(), 16_777_216);
/// assert_eq!(g.num_synapses(), 528_482_304);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnSpec {
    name: String,
    layers: Vec<u64>,
    fan_in: u64,
}

impl CnnSpec {
    /// A convolutional chain with the given layer widths and per-neuron
    /// fan-in.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewLayers`] for fewer than two layers,
    /// [`ModelError::EmptyLayer`] for any zero-width layer, and
    /// [`ModelError::InvalidFanIn`] for a fan-in of zero or exceeding the
    /// narrowest source layer.
    pub fn new(layers: &[u64], fan_in: u64) -> Result<Self, ModelError> {
        if layers.len() < 2 {
            return Err(ModelError::TooFewLayers { layers: layers.len() });
        }
        if let Some(index) = layers.iter().position(|&l| l == 0) {
            return Err(ModelError::EmptyLayer { index });
        }
        let min_src = layers[..layers.len() - 1].iter().copied().min().unwrap_or(0);
        if fan_in == 0 || fan_in > min_src {
            return Err(ModelError::InvalidFanIn { fan_in, max: min_src });
        }
        Ok(Self {
            name: format!("CNN_{}", layers.iter().sum::<u64>()),
            layers: layers.to_vec(),
            fan_in,
        })
    }

    /// A uniform `depth × width` CNN with a display name.
    ///
    /// # Errors
    ///
    /// As [`CnnSpec::new`] for a degenerate shape.
    pub fn uniform(
        name: impl Into<String>,
        depth: usize,
        width: u64,
        fan_in: u64,
    ) -> Result<Self, ModelError> {
        let mut s = Self::new(&vec![width; depth], fan_in)?;
        s.name = name.into();
        Ok(s)
    }

    /// Table 3 row `CNN_65K`: 4 × 16 384, fan-in 41 (2.0 M synapses).
    pub fn cnn_65k() -> Self {
        Self::uniform("CNN_65K", 4, 16_384, 41).expect("preset shape is valid")
    }

    /// Table 3 row `CNN_16M`: 64 × 262 144, fan-in 32 (528 M synapses).
    pub fn cnn_16m() -> Self {
        Self::uniform("CNN_16M", 64, 262_144, 32).expect("preset shape is valid")
    }

    /// Table 3 row `CNN_268M`: 1024 × 262 144, fan-in 30 (8.0 B synapses).
    pub fn cnn_268m() -> Self {
        Self::uniform("CNN_268M", 1024, 262_144, 30).expect("preset shape is valid")
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer widths.
    pub fn layers(&self) -> &[u64] {
        &self.layers
    }

    /// Per-neuron fan-in.
    pub fn fan_in(&self) -> u64 {
        self.fan_in
    }

    /// Builds the layer graph with seeded per-connection spike densities.
    pub fn layer_graph(&self, seed: u64) -> LayerGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC44);
        let mut g = LayerGraph::new(self.name.clone());
        let ids: Vec<usize> = self.layers.iter().map(|&n| g.add_layer(n)).collect();
        for w in ids.windows(2) {
            let rate: f32 = rng.gen_range(0.05..=1.0);
            g.connect(w[0], w[1], ConnPattern::Window { fan_in: self.fan_in }, rate)
                .expect("chain connections are valid");
        }
        g
    }

    /// Materializes the explicit neuron-level network (small specs only).
    ///
    /// # Errors
    ///
    /// [`ModelError::TooLargeToMaterialize`] beyond 10⁸ synapses.
    pub fn build(&self, seed: u64) -> Result<SnnNetwork, ModelError> {
        self.layer_graph(seed).materialize(MATERIALIZE_LIMIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::CoreConstraints;

    use crate::PartitionPolicy;

    #[test]
    fn presets_match_table3_totals() {
        let cases = [
            (CnnSpec::cnn_65k(), 65_536u64, 2_015_232u64),
            (CnnSpec::cnn_16m(), 16_777_216, 528_482_304),
            (CnnSpec::cnn_268m(), 268_435_456, 8_045_199_360),
        ];
        for (spec, neurons, synapses) in cases {
            let g = spec.layer_graph(0);
            assert_eq!(g.num_neurons(), neurons, "{}", spec.name());
            assert_eq!(g.num_synapses(), synapses, "{}", spec.name());
        }
    }

    #[test]
    fn cnn_65k_pcn_shape() {
        let g = CnnSpec::cnn_65k().layer_graph(0);
        let pcn = g
            .partition_analytic(CoreConstraints::new(4096, u64::MAX).unwrap(), PartitionPolicy::table3())
            .unwrap();
        // 16 clusters like DNN_65K; banded connectivity gives fewer
        // connections than the dense 48.
        assert_eq!(pcn.num_clusters(), 16);
        assert!(pcn.num_connections() >= 12, "at least one band edge per pair");
        assert!(pcn.num_connections() <= 48);
    }

    #[test]
    fn cnn_is_sparser_than_dnn() {
        let cnn = CnnSpec::new(&[64, 64, 64], 9).unwrap().build(0).unwrap();
        assert_eq!(cnn.num_synapses(), 2 * 64 * 9);
        // Window of 9 per neuron vs 64 for a dense layer.
        assert_eq!(cnn.fan_in(64), 9);
        assert_eq!(cnn.fan_in(0), 0);
    }

    #[test]
    fn degenerate_shapes_are_typed_errors() {
        assert_eq!(
            CnnSpec::new(&[8, 8], 9),
            Err(ModelError::InvalidFanIn { fan_in: 9, max: 8 })
        );
        assert_eq!(
            CnnSpec::new(&[8, 8], 0),
            Err(ModelError::InvalidFanIn { fan_in: 0, max: 8 })
        );
        assert_eq!(CnnSpec::new(&[8], 2), Err(ModelError::TooFewLayers { layers: 1 }));
        assert_eq!(CnnSpec::new(&[8, 0], 2), Err(ModelError::EmptyLayer { index: 1 }));
    }
}
