//! The complete Table 3 benchmark suite.

use snnmap_hw::CoreConstraints;

use crate::generators::{CnnSpec, DnnSpec, RealisticModel};
use crate::{LayerGraph, ModelError, PartitionPolicy, Pcn};

/// The reference values of one Table 3 row, as printed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Row {
    /// Application name.
    pub name: &'static str,
    /// `G_SNN` neurons.
    pub neurons: u64,
    /// `G_SNN` synapses (the table rounds; this is the rounded value in
    /// raw units, e.g. "805M" → `805_000_000`).
    pub synapses: u64,
    /// `G_PCN` clusters.
    pub clusters: u64,
    /// `G_PCN` connections.
    pub connections: u64,
    /// Target hardware mesh side (`side × side`).
    pub mesh_side: u16,
}

/// One runnable benchmark of the Table 3 suite: the paper's reference
/// numbers plus a generator for the actual layer graph / PCN.
#[derive(Debug, Clone)]
pub struct Table3Benchmark {
    /// Paper reference values.
    pub row: Table3Row,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    Dnn(DnnSpec),
    Cnn(CnnSpec),
    Realistic(RealisticModel),
}

impl Table3Benchmark {
    /// The application's layer graph (seeded spike densities).
    pub fn layer_graph(&self, seed: u64) -> LayerGraph {
        match &self.kind {
            Kind::Dnn(d) => d.layer_graph(seed),
            Kind::Cnn(c) => c.layer_graph(seed),
            Kind::Realistic(r) => r.layer_graph(seed),
        }
    }

    /// Partitions the application for the paper's target hardware
    /// (4096 neurons per core, Table 3 policy) and returns the PCN.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from partitioning.
    pub fn pcn(&self, seed: u64) -> Result<Pcn, ModelError> {
        self.layer_graph(seed)
            .partition_analytic(Self::partition_constraints(), PartitionPolicy::table3())
    }

    /// The constraints under which Table 3 cluster counts arise: the
    /// paper's 4096-neuron core limit, with the synapse limit left
    /// unenforced (see [`PartitionPolicy`] for why).
    pub fn partition_constraints() -> CoreConstraints {
        CoreConstraints { neurons_per_core: 4096, synapses_per_core: u64::MAX }
    }

    /// Whether this is one of the very large benchmarks (≥ 65 536
    /// clusters) that slow baselines cannot finish in reasonable time.
    pub fn is_huge(&self) -> bool {
        self.row.clusters >= 65_536
    }
}

/// All 13 Table 3 benchmarks in the paper's order.
pub fn table3_suite() -> Vec<Table3Benchmark> {
    vec![
        Table3Benchmark {
            row: Table3Row {
                name: "DNN_65K",
                neurons: 65_536,
                synapses: 805_000_000,
                clusters: 16,
                connections: 48,
                mesh_side: 4,
            },
            kind: Kind::Dnn(DnnSpec::dnn_65k()),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "DNN_16M",
                neurons: 16_700_000,
                synapses: 4_000_000_000_000,
                clusters: 4_096,
                connections: 258_048,
                mesh_side: 64,
            },
            kind: Kind::Dnn(DnnSpec::dnn_16m()),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "DNN_268M",
                neurons: 268_000_000,
                synapses: 70_000_000_000_000,
                clusters: 65_536,
                connections: 4_000_000,
                mesh_side: 256,
            },
            kind: Kind::Dnn(DnnSpec::dnn_268m()),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "DNN_4B",
                neurons: 4_000_000_000,
                synapses: 1_125_000_000_000_000,
                clusters: 1_048_576,
                connections: 67_000_000,
                mesh_side: 1024,
            },
            kind: Kind::Dnn(DnnSpec::dnn_4b()),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "CNN_65K",
                neurons: 65_536,
                synapses: 2_000_000,
                clusters: 16,
                connections: 48,
                mesh_side: 4,
            },
            kind: Kind::Cnn(CnnSpec::cnn_65k()),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "CNN_16M",
                neurons: 16_700_000,
                synapses: 528_000_000,
                clusters: 4_096,
                connections: 16_384,
                mesh_side: 64,
            },
            kind: Kind::Cnn(CnnSpec::cnn_16m()),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "CNN_268M",
                neurons: 268_000_000,
                synapses: 8_000_000_000,
                clusters: 65_536,
                connections: 262_000,
                mesh_side: 256,
            },
            kind: Kind::Cnn(CnnSpec::cnn_268m()),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "LeNet-MNIST",
                neurons: 9_118,
                synapses: 400_000,
                clusters: 9,
                connections: 19,
                mesh_side: 3,
            },
            kind: Kind::Realistic(RealisticModel::LeNetMnist),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "LeNet-ImageNet",
                neurons: 1_000_000,
                synapses: 188_000_000,
                clusters: 251,
                connections: 2_151,
                mesh_side: 16,
            },
            kind: Kind::Realistic(RealisticModel::LeNetImageNet),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "AlexNet",
                neurons: 900_000,
                synapses: 1_000_000_000,
                clusters: 229,
                connections: 4_289,
                mesh_side: 16,
            },
            kind: Kind::Realistic(RealisticModel::AlexNet),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "MobileNet",
                neurons: 6_900_000,
                synapses: 500_000_000,
                clusters: 1_688,
                connections: 37_418,
                mesh_side: 42,
            },
            kind: Kind::Realistic(RealisticModel::MobileNet),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "InceptionV3",
                neurons: 14_600_000,
                synapses: 5_400_000_000,
                clusters: 3_570,
                connections: 117_597,
                mesh_side: 60,
            },
            kind: Kind::Realistic(RealisticModel::InceptionV3),
        },
        Table3Benchmark {
            row: Table3Row {
                name: "ResNet",
                neurons: 28_500_000,
                synapses: 11_600_000_000,
                clusters: 6_956,
                connections: 478_602,
                mesh_side: 84,
            },
            kind: Kind::Realistic(RealisticModel::ResNet),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::Mesh;

    #[test]
    fn suite_has_thirteen_rows_in_paper_order() {
        let suite = table3_suite();
        assert_eq!(suite.len(), 13);
        assert_eq!(suite[0].row.name, "DNN_65K");
        assert_eq!(suite[3].row.name, "DNN_4B");
        assert_eq!(suite[12].row.name, "ResNet");
    }

    #[test]
    fn mesh_sides_fit_cluster_counts() {
        for b in table3_suite() {
            let side = b.row.mesh_side as u64;
            assert!(
                side * side >= b.row.clusters,
                "{}: {} clusters on {}x{}",
                b.row.name,
                b.row.clusters,
                side,
                side
            );
            // And the paper's sides are the minimal squares.
            assert_eq!(
                Mesh::square_for(b.row.clusters).unwrap().rows(),
                b.row.mesh_side,
                "{}",
                b.row.name
            );
        }
    }

    #[test]
    fn small_benchmarks_match_cluster_counts_exactly() {
        // Synthetic DNN/CNN rows are cluster-exact by construction.
        for b in table3_suite().into_iter().take(2) {
            let pcn = b.pcn(0).unwrap();
            assert_eq!(pcn.num_clusters() as u64, b.row.clusters, "{}", b.row.name);
            assert_eq!(pcn.num_connections(), b.row.connections, "{}", b.row.name);
        }
    }

    #[test]
    fn lenet_mnist_pcn_close_to_paper() {
        let b = &table3_suite()[7];
        let pcn = b.pcn(0).unwrap();
        // Layer-aligned packing gives 9 clusters, matching the paper.
        assert_eq!(pcn.num_clusters(), 9);
    }

    #[test]
    fn huge_flag() {
        let suite = table3_suite();
        assert!(!suite[0].is_huge());
        assert!(suite[2].is_huge()); // DNN_268M
        assert!(suite[3].is_huge()); // DNN_4B
        assert!(suite[6].is_huge()); // CNN_268M
        assert!(!suite[12].is_huge()); // ResNet
    }
}
