//! Synthetic fully connected DNN generators (Table 3, rows DNN_*).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{ConnPattern, LayerGraph, ModelError, SnnNetwork};

/// Default materialization guard: one hundred million synapses.
const MATERIALIZE_LIMIT: u64 = 100_000_000;

/// Specification of a synthetic fully connected deep network: a chain of
/// layers with dense connections between consecutive layers.
///
/// Spike densities are drawn per connection from a seeded RNG in
/// `[0.05, 1.0]`, standing in for the measured traffic the paper obtains
/// from executing trained networks (the mapping algorithms only consume
/// relative traffic volumes).
///
/// # Table 3 presets
///
/// The paper's synthetic DNN rows determine the layer shapes uniquely:
///
/// | Row | Shape | Neurons | Synapses | Clusters | Connections |
/// |---|---|---|---|---|---|
/// | DNN_65K  | 4 × 16 384    | 65 536 | 805 M  | 16   | 48   |
/// | DNN_16M  | 64 × 262 144  | 16.7 M | 4.3 T  | 4096 | 258 048 |
/// | DNN_268M | 1024 × 262 144| 268 M  | 70 T   | 65 536 | 4.2 M |
/// | DNN_4B   | 16384 × 262 144| 4.29 B| 1 125 T| 1 M  | 67 M |
///
/// (Check: a `L × W` dense chain has `(L−1)·W²` synapses, `L·W/4096`
/// clusters under the 4096-neuron core limit, and `(L−1)·(W/4096)²`
/// cluster connections — all four columns match the paper.)
///
/// # Examples
///
/// ```
/// use snnmap_model::generators::DnnSpec;
///
/// let spec = DnnSpec::dnn_65k();
/// let g = spec.layer_graph(1);
/// assert_eq!(g.num_neurons(), 65_536);
/// assert_eq!(g.num_synapses(), 805_306_368);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnnSpec {
    name: String,
    layers: Vec<u64>,
}

impl DnnSpec {
    /// A DNN with the given layer widths.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewLayers`] for fewer than two layers,
    /// [`ModelError::EmptyLayer`] for any zero-width layer.
    pub fn new(layers: &[u64]) -> Result<Self, ModelError> {
        if layers.len() < 2 {
            return Err(ModelError::TooFewLayers { layers: layers.len() });
        }
        if let Some(index) = layers.iter().position(|&l| l == 0) {
            return Err(ModelError::EmptyLayer { index });
        }
        Ok(Self { name: format!("DNN_{}", layers.iter().sum::<u64>()), layers: layers.to_vec() })
    }

    /// A uniform `depth × width` DNN with a display name.
    ///
    /// # Errors
    ///
    /// As [`DnnSpec::new`] for a degenerate shape.
    pub fn uniform(name: impl Into<String>, depth: usize, width: u64) -> Result<Self, ModelError> {
        let mut s = Self::new(&vec![width; depth])?;
        s.name = name.into();
        Ok(s)
    }

    /// Table 3 row `DNN_65K`: 4 layers × 16 384 neurons.
    pub fn dnn_65k() -> Self {
        Self::uniform("DNN_65K", 4, 16_384).expect("preset shape is valid")
    }

    /// Table 3 row `DNN_16M`: 64 layers × 262 144 neurons.
    pub fn dnn_16m() -> Self {
        Self::uniform("DNN_16M", 64, 262_144).expect("preset shape is valid")
    }

    /// Table 3 row `DNN_268M`: 1024 layers × 262 144 neurons.
    pub fn dnn_268m() -> Self {
        Self::uniform("DNN_268M", 1024, 262_144).expect("preset shape is valid")
    }

    /// Table 3 row `DNN_4B`: 16 384 layers × 262 144 neurons — the
    /// paper's 4-billion-neuron headline benchmark.
    pub fn dnn_4b() -> Self {
        Self::uniform("DNN_4B", 16_384, 262_144).expect("preset shape is valid")
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer widths.
    pub fn layers(&self) -> &[u64] {
        &self.layers
    }

    /// Builds the layer graph with seeded per-connection spike densities.
    pub fn layer_graph(&self, seed: u64) -> LayerGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = LayerGraph::new(self.name.clone());
        let ids: Vec<usize> = self.layers.iter().map(|&n| g.add_layer(n)).collect();
        for w in ids.windows(2) {
            let rate: f32 = rng.gen_range(0.05..=1.0);
            g.connect(w[0], w[1], ConnPattern::Full, rate).expect("chain connections are valid");
        }
        g
    }

    /// Materializes the explicit neuron-level network (small specs only).
    ///
    /// # Errors
    ///
    /// [`ModelError::TooLargeToMaterialize`] beyond 10⁸ synapses.
    pub fn build(&self, seed: u64) -> Result<SnnNetwork, ModelError> {
        self.layer_graph(seed).materialize(MATERIALIZE_LIMIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::CoreConstraints;

    use crate::PartitionPolicy;

    #[test]
    fn presets_match_table3_totals() {
        let cases = [
            (DnnSpec::dnn_65k(), 65_536u64, 805_306_368u64),
            (DnnSpec::dnn_16m(), 16_777_216, 4_329_327_034_368),
            (DnnSpec::dnn_268m(), 268_435_456, 70_300_024_700_928),
            (DnnSpec::dnn_4b(), 4_294_967_296, 1_125_831_187_365_888),
        ];
        for (spec, neurons, synapses) in cases {
            let g = spec.layer_graph(0);
            assert_eq!(g.num_neurons(), neurons, "{}", spec.name());
            assert_eq!(g.num_synapses(), synapses, "{}", spec.name());
        }
    }

    #[test]
    fn dnn_65k_pcn_matches_table3() {
        let g = DnnSpec::dnn_65k().layer_graph(0);
        let pcn = g
            .partition_analytic(CoreConstraints::new(4096, u64::MAX).unwrap(), PartitionPolicy::table3())
            .unwrap();
        assert_eq!(pcn.num_clusters(), 16);
        assert_eq!(pcn.num_connections(), 48);
    }

    #[test]
    fn rates_are_seed_deterministic() {
        let a = DnnSpec::new(&[10, 20, 10]).unwrap().layer_graph(9);
        let b = DnnSpec::new(&[10, 20, 10]).unwrap().layer_graph(9);
        assert_eq!(a, b);
        let c = DnnSpec::new(&[10, 20, 10]).unwrap().layer_graph(10);
        assert_ne!(a, c);
    }

    #[test]
    fn small_spec_materializes() {
        let snn = DnnSpec::new(&[32, 64, 16]).unwrap().build(3).unwrap();
        assert_eq!(snn.num_neurons(), 112);
        assert_eq!(snn.num_synapses(), 32 * 64 + 64 * 16);
    }

    #[test]
    fn huge_spec_refuses_materialization() {
        assert!(matches!(
            DnnSpec::dnn_16m().build(0),
            Err(ModelError::TooLargeToMaterialize { .. })
        ));
    }

    #[test]
    fn degenerate_shapes_are_typed_errors() {
        assert_eq!(DnnSpec::new(&[10]), Err(ModelError::TooFewLayers { layers: 1 }));
        assert_eq!(DnnSpec::new(&[]), Err(ModelError::TooFewLayers { layers: 0 }));
        assert_eq!(DnnSpec::new(&[10, 0, 5]), Err(ModelError::EmptyLayer { index: 1 }));
        assert_eq!(DnnSpec::uniform("X", 1, 10), Err(ModelError::TooFewLayers { layers: 1 }));
    }
}
