//! Workload generators for every Table 3 benchmark plus random test
//! graphs.
//!
//! The synthetic DNN/CNN families and the realistic ANN suite reproduce
//! the neuron/synapse totals of the paper's Table 3; layer shapes for the
//! synthetic networks are recovered from the table itself (each row's
//! neuron, synapse, cluster and connection counts pin down the layer
//! width and depth — see the preset docs).

mod cnn;
mod dnn;
mod random;
mod realistic;
mod table3;

pub use cnn::CnnSpec;
pub use dnn::DnnSpec;
pub use random::{random_pcn, random_snn, scramble_pcn};
pub use realistic::RealisticModel;
pub use table3::{table3_suite, Table3Benchmark, Table3Row};
