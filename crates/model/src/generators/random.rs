//! Random graph generators for tests, property checks and the NoC
//! simulator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{ModelError, Pcn, PcnBuilder, SnnBuilder, SnnNetwork};

/// Generates a random SNN with locality: each neuron sends `avg_fan_out`
/// synapses on average, with targets drawn from a window of `±locality`
/// around itself (wrapping is not used; windows clamp at the ends). This
/// mirrors the biological locality the paper leans on in §4.2.2 — neurons
/// connect to few, mostly nearby, peers.
///
/// Spike densities are uniform in `[0.1, 1.0]`.
///
/// # Errors
///
/// [`ModelError::EmptyNetwork`] when `neurons == 0`;
/// [`ModelError::InvalidDegree`] when `avg_fan_out` is negative or
/// non-finite.
///
/// # Examples
///
/// ```
/// use snnmap_model::generators::random_snn;
///
/// let snn = random_snn(500, 8.0, 50, 42)?;
/// assert_eq!(snn.num_neurons(), 500);
/// assert!(snn.num_synapses() > 3000);
/// # Ok::<(), snnmap_model::ModelError>(())
/// ```
pub fn random_snn(
    neurons: u32,
    avg_fan_out: f64,
    locality: u32,
    seed: u64,
) -> Result<SnnNetwork, ModelError> {
    if neurons == 0 {
        return Err(ModelError::EmptyNetwork);
    }
    if !(avg_fan_out >= 0.0 && avg_fan_out.is_finite()) {
        return Err(ModelError::InvalidDegree { degree: avg_fan_out });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = SnnBuilder::with_capacity(neurons, (neurons as f64 * avg_fan_out) as usize);
    for u in 0..neurons {
        // Poisson-ish out-degree via rounding a uniform around the mean.
        let k = (avg_fan_out * rng.gen_range(0.5..1.5)).round() as u32;
        let lo = u.saturating_sub(locality);
        let hi = (u + locality).min(neurons - 1);
        for _ in 0..k {
            let v = rng.gen_range(lo..=hi);
            if v != u {
                b.synapse(u, v, rng.gen_range(0.1..=1.0))?;
            }
        }
    }
    b.build()
}

/// Generates a random PCN directly: `clusters` clusters, each with
/// `avg_degree` outgoing connections on average whose targets favour
/// nearby cluster ids (80%) with occasional long-range links (20%).
/// Useful for exercising the placement algorithms without building a
/// neuron-level network.
///
/// # Errors
///
/// [`ModelError::EmptyNetwork`] when `clusters == 0`;
/// [`ModelError::InvalidDegree`] when `avg_degree` is negative or
/// non-finite.
///
/// # Examples
///
/// ```
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(64, 4.0, 7)?;
/// assert_eq!(pcn.num_clusters(), 64);
/// # Ok::<(), snnmap_model::ModelError>(())
/// ```
pub fn random_pcn(clusters: u32, avg_degree: f64, seed: u64) -> Result<Pcn, ModelError> {
    if clusters == 0 {
        return Err(ModelError::EmptyNetwork);
    }
    if !(avg_degree >= 0.0 && avg_degree.is_finite()) {
        return Err(ModelError::InvalidDegree { degree: avg_degree });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9C4);
    let mut b = PcnBuilder::with_capacity(clusters as usize, (clusters as f64 * avg_degree) as usize);
    for _ in 0..clusters {
        b.add_cluster(rng.gen_range(1..=4096), rng.gen_range(1..=65_536));
    }
    if clusters == 1 {
        return b.build();
    }
    let local_span = ((clusters as f64).sqrt().ceil() as u32).max(1);
    for c in 0..clusters {
        let k = (avg_degree * rng.gen_range(0.5..1.5)).round() as u32;
        for _ in 0..k {
            let t = if rng.gen_bool(0.8) {
                let lo = c.saturating_sub(local_span);
                let hi = (c + local_span).min(clusters - 1);
                rng.gen_range(lo..=hi)
            } else {
                rng.gen_range(0..clusters)
            };
            if t != c {
                b.add_edge(c, t, rng.gen_range(0.5..=10.0))?;
            }
        }
    }
    b.build()
}

/// Relabels a PCN's cluster ids by a seeded Fisher–Yates permutation,
/// preserving the graph structure (cluster payloads, edges, weights and
/// intra-cluster traffic all move with their cluster).
///
/// Generators like [`random_pcn`] draw most edges from a window of nearby
/// cluster ids, so id order itself encodes locality that an id-aware
/// initial placement can exploit. Scrambling removes that crutch: the
/// result is the *same* graph presented in an adversarial id order, which
/// is how real partitioner output arrives — nothing guarantees cluster
/// ids follow physical neighbourhoods. Benchmarks use this to compare
/// mapping strategies on structure alone.
///
/// Deterministic per `(pcn, seed)`; `seed` only drives the permutation.
///
/// # Errors
///
/// Never fails in practice (the input PCN is already valid), but
/// propagates [`ModelError`] from the rebuild for type-compatibility.
///
/// # Examples
///
/// ```
/// use snnmap_model::generators::{random_pcn, scramble_pcn};
///
/// let pcn = random_pcn(64, 4.0, 7)?;
/// let scr = scramble_pcn(&pcn, 99)?;
/// assert_eq!(scr.num_clusters(), pcn.num_clusters());
/// assert_eq!(scr.num_connections(), pcn.num_connections());
/// # Ok::<(), snnmap_model::ModelError>(())
/// ```
pub fn scramble_pcn(pcn: &Pcn, seed: u64) -> Result<Pcn, ModelError> {
    let n = pcn.num_clusters();
    // Fisher–Yates: perm[old_id] = new_id.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5C12);
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut b = PcnBuilder::with_capacity(n as usize, pcn.num_connections() as usize);
    // Clusters must be added in new-id order, so invert the permutation.
    let mut old_of = vec![0u32; n as usize];
    for (old, &new) in perm.iter().enumerate() {
        old_of[new as usize] = old as u32;
    }
    for &old in &old_of {
        b.add_cluster(pcn.neurons_in(old), pcn.synapses_in(old));
    }
    for (f, t, w) in pcn.iter_edges() {
        b.add_edge(perm[f as usize], perm[t as usize], w)?;
    }
    b.add_intra(pcn.intra_traffic())?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snn_is_deterministic_per_seed() {
        let a = random_snn(200, 4.0, 30, 1).unwrap();
        let b = random_snn(200, 4.0, 30, 1).unwrap();
        assert_eq!(a, b);
        let c = random_snn(200, 4.0, 30, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn snn_respects_locality_window() {
        let snn = random_snn(1000, 6.0, 20, 3).unwrap();
        for (u, v, _) in snn.iter_synapses() {
            assert!(u.abs_diff(v) <= 20, "synapse {u}->{v} breaks the locality window");
        }
    }

    #[test]
    fn snn_has_no_self_loops() {
        let snn = random_snn(300, 5.0, 10, 4).unwrap();
        assert!(snn.iter_synapses().all(|(u, v, _)| u != v));
    }

    #[test]
    fn pcn_determinism_and_no_self_edges() {
        let a = random_pcn(128, 4.0, 9).unwrap();
        let b = random_pcn(128, 4.0, 9).unwrap();
        assert_eq!(a, b);
        assert!(a.iter_edges().all(|(f, t, _)| f != t));
        assert_eq!(a.intra_traffic(), 0.0);
    }

    #[test]
    fn bad_degrees_are_typed_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert!(matches!(
                random_snn(10, bad, 5, 0),
                Err(ModelError::InvalidDegree { .. })
            ));
            assert!(matches!(random_pcn(10, bad, 0), Err(ModelError::InvalidDegree { .. })));
        }
    }

    #[test]
    fn scramble_is_a_deterministic_relabelling() {
        let pcn = random_pcn(256, 4.0, 11).unwrap();
        let a = scramble_pcn(&pcn, 7).unwrap();
        let b = scramble_pcn(&pcn, 7).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, scramble_pcn(&pcn, 8).unwrap());
        // Structure-preserving: the same invariants, different labels.
        assert_eq!(a.num_clusters(), pcn.num_clusters());
        assert_eq!(a.num_connections(), pcn.num_connections());
        assert_eq!(a.total_neurons(), pcn.total_neurons());
        assert_eq!(a.total_synapses(), pcn.total_synapses());
        assert!((a.total_traffic() - pcn.total_traffic()).abs() < 1e-6);
        assert_eq!(a.intra_traffic(), pcn.intra_traffic());
        // Sorted degree sequences match (permutation moves, never merges).
        let degs = |p: &Pcn| {
            let mut d: Vec<u64> = (0..p.num_clusters()).map(|c| p.degree(c)).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(degs(&a), degs(&pcn));
        // And it genuinely shuffles: some cluster payload moved.
        assert!((0..256).any(|c| a.neurons_in(c) != pcn.neurons_in(c)));
    }

    #[test]
    fn scramble_handles_single_cluster() {
        let single = random_pcn(1, 4.0, 0).unwrap();
        assert_eq!(scramble_pcn(&single, 3).unwrap(), single);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(random_snn(0, 4.0, 10, 0).is_err());
        assert!(random_pcn(0, 4.0, 0).is_err());
        let single = random_pcn(1, 4.0, 0).unwrap();
        assert_eq!(single.num_clusters(), 1);
        assert_eq!(single.num_connections(), 0);
        let tiny = random_snn(1, 4.0, 10, 0).unwrap();
        assert_eq!(tiny.num_synapses(), 0);
    }
}
