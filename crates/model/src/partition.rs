//! Algorithm 1: sequential first-fit neuron partitioning.

use snnmap_hw::CoreConstraints;

use crate::{ModelError, Pcn, PcnBuilder, SnnNetwork};

/// Partitions an SNN into clusters with Algorithm 1 of the paper and
/// builds the resulting [`Pcn`].
///
/// Neurons are visited in id order and greedily appended to the current
/// cluster; a neuron that would overflow either per-core limit closes the
/// cluster and starts a new one. A neuron's synaptic load is its *fan-in*
/// (the synapse weights the hosting core must store), matching crossbar
/// hardware semantics.
///
/// First-fit over the id order means every cluster is a contiguous id
/// range — the property the layer-level analytic partitioner
/// ([`LayerGraph::partition_analytic`](crate::LayerGraph::partition_analytic))
/// relies on for its closed form.
///
/// A neuron whose own fan-in exceeds `CON_spc` still gets a (singleton)
/// cluster: the alternative is an unmappable network, and the paper's
/// model has no neuron-splitting mechanism. Such clusters are
/// over-budget, which callers can detect via [`Pcn::synapses_in`].
///
/// # Errors
///
/// Propagates [`ModelError`] from PCN construction (e.g. an empty
/// network).
///
/// # Examples
///
/// ```
/// use snnmap_hw::CoreConstraints;
/// use snnmap_model::{partition, SnnBuilder};
///
/// let mut b = SnnBuilder::new(6);
/// for i in 0..5 {
///     b.synapse(i, i + 1, 1.0)?;
/// }
/// let snn = b.build()?;
/// // Two neurons per core: six neurons -> three clusters in a chain.
/// let pcn = partition(&snn, CoreConstraints::new(2, 1024).unwrap())?;
/// assert_eq!(pcn.num_clusters(), 3);
/// assert_eq!(pcn.num_connections(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn partition(snn: &SnnNetwork, con: CoreConstraints) -> Result<Pcn, ModelError> {
    let n = snn.num_neurons();
    if n == 0 {
        return Err(ModelError::EmptyNetwork);
    }
    let mut cluster_of = vec![0u32; n as usize];
    let mut builder = PcnBuilder::new();

    let mut cur_neurons = 0u32;
    let mut cur_synapses = 0u64;
    for x in 0..n {
        let fi = snn.fan_in(x) as u64;
        let overflow = cur_neurons + 1 > con.neurons_per_core
            || cur_synapses + fi > con.synapses_per_core;
        if overflow && cur_neurons > 0 {
            builder.add_cluster(cur_neurons, cur_synapses);
            cur_neurons = 0;
            cur_synapses = 0;
        }
        cluster_of[x as usize] = builder.num_clusters();
        cur_neurons += 1;
        cur_synapses += fi;
    }
    builder.add_cluster(cur_neurons, cur_synapses);

    for (u, v, w) in snn.iter_synapses() {
        builder.add_edge(cluster_of[u as usize], cluster_of[v as usize], w)?;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnnBuilder;

    fn layered_snn(sizes: &[u32]) -> SnnNetwork {
        // Fully connected consecutive layers, unit spike densities.
        let n: u32 = sizes.iter().sum();
        let mut b = SnnBuilder::new(n);
        let mut start = 0u32;
        for w in sizes.windows(2) {
            for i in 0..w[0] {
                for j in 0..w[1] {
                    b.synapse(start + i, start + w[0] + j, 1.0).unwrap();
                }
            }
            start += w[0];
        }
        b.build().unwrap()
    }

    #[test]
    fn neuron_constraint_only() {
        let snn = layered_snn(&[4, 4]);
        let pcn = partition(&snn, CoreConstraints::new(3, u64::MAX).unwrap()).unwrap();
        // 8 neurons, 3 per cluster -> clusters of 3, 3, 2.
        assert_eq!(pcn.num_clusters(), 3);
        assert_eq!(pcn.neurons_in(0), 3);
        assert_eq!(pcn.neurons_in(2), 2);
        assert_eq!(pcn.total_neurons(), 8);
    }

    #[test]
    fn synapse_constraint_closes_clusters() {
        // Each layer-2 neuron has fan-in 4; limit 8 synapses -> two such
        // neurons per cluster.
        let snn = layered_snn(&[4, 4]);
        let pcn = partition(&snn, CoreConstraints::new(100, 8).unwrap()).unwrap();
        // Neurons 0..4 have fan-in 0, then fan-in-4 neurons two per cluster:
        // cluster 0 = {0,1,2,3,4,5}(syn 8), cluster 1 = {6,7}(syn 8).
        assert_eq!(pcn.num_clusters(), 2);
        assert_eq!(pcn.synapses_in(0), 8);
        assert_eq!(pcn.synapses_in(1), 8);
    }

    #[test]
    fn clusters_are_contiguous_ranges() {
        let snn = layered_snn(&[5, 7, 3]);
        let pcn = partition(&snn, CoreConstraints::new(4, u64::MAX).unwrap()).unwrap();
        // Contiguity is implied by first-fit; verify via cluster sizes
        // summing to the neuron count in order.
        let total: u64 = (0..pcn.num_clusters()).map(|c| pcn.neurons_in(c) as u64).sum();
        assert_eq!(total, 15);
        assert_eq!(pcn.num_clusters(), 4); // ceil(15 / 4)
    }

    #[test]
    fn traffic_preserved_across_partition() {
        // eq. 5: total PCN traffic + intra-cluster traffic equals total
        // synapse traffic.
        let snn = layered_snn(&[4, 4, 4]);
        for npc in [1u32, 2, 3, 5, 12] {
            let pcn = partition(&snn, CoreConstraints::new(npc, u64::MAX).unwrap()).unwrap();
            let total = pcn.total_traffic() + pcn.intra_traffic();
            assert!(
                (total - snn.total_traffic()).abs() < 1e-9,
                "npc={npc}: {} != {}",
                total,
                snn.total_traffic()
            );
        }
    }

    #[test]
    fn oversized_neuron_gets_singleton_cluster() {
        // One neuron with fan-in 10 under a synapse limit of 4.
        let mut b = SnnBuilder::new(11);
        for i in 0..10 {
            b.synapse(i, 10, 1.0).unwrap();
        }
        let snn = b.build().unwrap();
        let pcn = partition(&snn, CoreConstraints::new(100, 4).unwrap()).unwrap();
        let last = pcn.num_clusters() - 1;
        assert_eq!(pcn.neurons_in(last), 1);
        assert!(pcn.synapses_in(last) > 4, "over-budget singleton is kept");
    }

    #[test]
    fn whole_network_in_one_cluster_has_no_connections() {
        let snn = layered_snn(&[4, 4]);
        let pcn = partition(&snn, CoreConstraints::new(4096, u64::MAX).unwrap()).unwrap();
        assert_eq!(pcn.num_clusters(), 1);
        assert_eq!(pcn.num_connections(), 0);
        assert_eq!(pcn.intra_traffic(), snn.total_traffic());
    }

    #[test]
    fn dnn_65k_structure_in_miniature() {
        // The Table 3 DNN pattern scaled down: 4 layers x 16 neurons with
        // 4 neurons per core gives 16 clusters and 3*4*4 = 48 connections,
        // exactly the DNN_65K row's PCN shape.
        let snn = layered_snn(&[16, 16, 16, 16]);
        let pcn = partition(&snn, CoreConstraints::new(4, u64::MAX).unwrap()).unwrap();
        assert_eq!(pcn.num_clusters(), 16);
        assert_eq!(pcn.num_connections(), 48);
    }
}
