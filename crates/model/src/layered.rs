//! Layer-level SNN descriptions with analytic partitioning.
//!
//! Every Table 3 benchmark is a *layered* network (synthetic DNN/CNN or a
//! converted deep ANN). At the paper's largest scale (DNN_4B:
//! 4.3 × 10⁹ neurons, 1.125 × 10¹⁵ synapses) the neuron-level graph cannot
//! be materialized on any machine — but it does not have to be: Algorithm 1
//! is sequential first-fit over the neuron id order, so for layered
//! networks the resulting clusters and the aggregated inter-cluster
//! traffic (eq. 5) have a closed form over the layer structure. This
//! module computes that closed form, and is cross-validated against the
//! explicit partitioner at small scale (see the tests).

use std::fmt;

use snnmap_hw::CoreConstraints;

use crate::{ModelError, Pcn, PcnBuilder, SnnBuilder, SnnNetwork};

/// How two layers are wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnPattern {
    /// Every source neuron connects to every target neuron (dense/FC).
    Full,
    /// Each target neuron receives exactly `fan_in` synapses from a
    /// contiguous window of source neurons whose position slides linearly
    /// with the target's position — the 1D shadow of convolutional
    /// locality (including multi-channel smearing), and `fan_in = 1` is an
    /// identity/skip connection.
    Window {
        /// Synapses per target neuron.
        fan_in: u64,
    },
    /// Like [`ConnPattern::Window`], but the `fan_in` synapses of each
    /// target neuron are split over `taps` sliding sub-windows spaced
    /// evenly across the source layer — the 1D shadow of a convolution
    /// over a *channel-major* source layout, where each output pixel
    /// reads a small window from every input channel block. Raises the
    /// cluster-level connection count by roughly a factor of `taps`,
    /// matching the dense PCNs the paper reports for converted CNNs.
    MultiWindow {
        /// Total synapses per target neuron (across all taps).
        fan_in: u64,
        /// Number of evenly spaced sub-windows.
        taps: u32,
    },
}

/// A directed connection between two layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerConn {
    /// Source layer index.
    pub from: usize,
    /// Target layer index.
    pub to: usize,
    /// Wiring pattern.
    pub pattern: ConnPattern,
    /// Spike density per synapse (the `w_S` of eq. 2, uniform within the
    /// connection).
    pub rate: f32,
}

/// Options controlling the analytic partitioner.
///
/// The defaults reproduce the paper's Table 3 cluster counts, which are
/// consistent with (a) clusters never spanning layer boundaries — each
/// core hosts neurons of a single layer — and (b) only the neuron limit
/// `CON_npc` binding (the synthetic DNNs put ~50 M stored synapses in each
/// 16-cluster partition of DNN_65K, far beyond `CON_spc = 64 K`, so the
/// paper's partitions cannot have enforced the synapse limit).
///
/// [`PartitionPolicy::strict`] instead follows Algorithm 1 literally
/// (layer-oblivious, both limits enforced), which is bit-identical to
/// running [`partition`](crate::partition) on the materialized network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionPolicy {
    /// Close the current cluster at every layer boundary.
    pub respect_layers: bool,
    /// Enforce `CON_spc` in addition to `CON_npc`.
    pub enforce_synapse_limit: bool,
}

impl PartitionPolicy {
    /// Table 3-compatible policy: layer-aligned clusters, neuron limit
    /// only.
    pub const fn table3() -> Self {
        Self { respect_layers: true, enforce_synapse_limit: false }
    }

    /// Algorithm 1 taken literally: layer-oblivious first-fit under both
    /// limits.
    pub const fn strict() -> Self {
        Self { respect_layers: false, enforce_synapse_limit: true }
    }
}

impl Default for PartitionPolicy {
    fn default() -> Self {
        Self::table3()
    }
}

/// A layered SNN: a DAG of layers (with neuron counts) and inter-layer
/// connections.
///
/// Neuron ids are assigned contiguously in layer order; within a layer,
/// in raster order. The graph supports skip connections (`from`/`to` need
/// not be consecutive) and arbitrary forward or backward links, so
/// recurrent topologies can be described too.
///
/// # Examples
///
/// ```
/// use snnmap_hw::CoreConstraints;
/// use snnmap_model::{ConnPattern, LayerGraph, PartitionPolicy};
///
/// let mut g = LayerGraph::new("tiny-dnn");
/// let a = g.add_layer(16);
/// let b = g.add_layer(16);
/// g.connect(a, b, ConnPattern::Full, 1.0)?;
/// assert_eq!(g.num_synapses(), 256);
///
/// let pcn = g.partition_analytic(
///     CoreConstraints::new(4, 1 << 30).unwrap(),
///     PartitionPolicy::table3(),
/// )?;
/// assert_eq!(pcn.num_clusters(), 8);
/// assert_eq!(pcn.num_connections(), 16); // 4 x 4 cluster pairs
/// # Ok::<(), snnmap_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGraph {
    name: String,
    layers: Vec<u64>,
    conns: Vec<LayerConn>,
}

impl LayerGraph {
    /// Creates an empty layer graph with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), layers: Vec::new(), conns: Vec::new() }
    }

    /// The graph's display name (e.g. `"DNN_4B"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer of `neurons` neurons and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `neurons` is zero.
    pub fn add_layer(&mut self, neurons: u64) -> usize {
        assert!(neurons > 0, "layers must be nonempty");
        self.layers.push(neurons);
        self.layers.len() - 1
    }

    /// Connects layer `from` to layer `to`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidConnection`] for unknown layers or
    /// `from == to`; [`ModelError::FanInTooLarge`] when a window's fan-in
    /// exceeds the source layer.
    pub fn connect(
        &mut self,
        from: usize,
        to: usize,
        pattern: ConnPattern,
        rate: f32,
    ) -> Result<&mut Self, ModelError> {
        let n = self.layers.len();
        if from >= n || to >= n || from == to {
            return Err(ModelError::InvalidConnection { from, to, layers: n });
        }
        match pattern {
            ConnPattern::Window { fan_in } => {
                if fan_in == 0 || fan_in > self.layers[from] {
                    return Err(ModelError::FanInTooLarge { fan_in, layer: self.layers[from] });
                }
            }
            ConnPattern::MultiWindow { fan_in, taps } => {
                let n_pre = self.layers[from];
                let max_tap_f = fan_in.div_ceil(taps.max(1) as u64);
                let min_tap_len = n_pre / taps.max(1) as u64;
                if taps == 0 || fan_in < taps as u64 || max_tap_f > min_tap_len {
                    return Err(ModelError::FanInTooLarge { fan_in, layer: n_pre });
                }
            }
            ConnPattern::Full => {}
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(ModelError::InvalidWeight { weight: rate });
        }
        self.conns.push(LayerConn { from, to, pattern, rate });
        Ok(self)
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Neuron count of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_size(&self, l: usize) -> u64 {
        self.layers[l]
    }

    /// The inter-layer connections.
    pub fn conns(&self) -> &[LayerConn] {
        &self.conns
    }

    /// Total neurons.
    pub fn num_neurons(&self) -> u64 {
        self.layers.iter().sum()
    }

    /// Total synapses implied by the connection patterns.
    pub fn num_synapses(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| match c.pattern {
                ConnPattern::Full => self.layers[c.from] * self.layers[c.to],
                ConnPattern::Window { fan_in }
                | ConnPattern::MultiWindow { fan_in, .. } => fan_in * self.layers[c.to],
            })
            .sum()
    }

    /// Total spike traffic `Σ w_S(e)` implied by the patterns and rates.
    pub fn total_traffic(&self) -> f64 {
        self.conns
            .iter()
            .map(|c| {
                let syn = match c.pattern {
                    ConnPattern::Full => self.layers[c.from] * self.layers[c.to],
                    ConnPattern::Window { fan_in }
                    | ConnPattern::MultiWindow { fan_in, .. } => fan_in * self.layers[c.to],
                };
                syn as f64 * c.rate as f64
            })
            .sum()
    }

    /// Global id of the first neuron of each layer (length `layers + 1`).
    fn layer_offsets(&self) -> Vec<u64> {
        let mut off = Vec::with_capacity(self.layers.len() + 1);
        let mut acc = 0u64;
        off.push(0);
        for &l in &self.layers {
            acc += l;
            off.push(acc);
        }
        off
    }

    /// Uniform per-neuron fan-in of each layer (sum over incoming
    /// connections).
    fn layer_fan_in(&self) -> Vec<u64> {
        let mut fi = vec![0u64; self.layers.len()];
        for c in &self.conns {
            fi[c.to] += match c.pattern {
                ConnPattern::Full => self.layers[c.from],
                ConnPattern::Window { fan_in }
                | ConnPattern::MultiWindow { fan_in, .. } => fan_in,
            };
        }
        fi
    }

    /// Decomposes a window-like pattern into its sliding bands: each tap
    /// is `(tap_lo, tap_len, tap_fan_in)` — a sub-range of the source
    /// layer holding a sub-window of the target's fan-in. A plain
    /// [`ConnPattern::Window`] is a single tap covering the whole layer.
    fn bands_of(pattern: ConnPattern, n_pre: u64) -> Vec<(u64, u64, u64)> {
        match pattern {
            ConnPattern::Full => Vec::new(),
            ConnPattern::Window { fan_in } => vec![(0, n_pre, fan_in)],
            ConnPattern::MultiWindow { fan_in, taps } => {
                let taps = taps as u64;
                let base = fan_in / taps;
                let rem = fan_in % taps;
                (0..taps)
                    .map(|k| {
                        let lo = k * n_pre / taps;
                        let hi = (k + 1) * n_pre / taps;
                        let f = base + u64::from(k < rem);
                        (lo, hi - lo, f)
                    })
                    .collect()
            }
        }
    }

    /// The start position of target neuron `j`'s source window for a
    /// window connection: a length-`fan_in` interval sliding linearly from
    /// the start to the end of the source layer.
    fn window_start(n_pre: u64, n_post: u64, fan_in: u64, j: u64) -> u64 {
        if n_post <= 1 || n_pre == fan_in {
            return 0;
        }
        // round(j * (n_pre - fan_in) / (n_post - 1))
        let num = j as u128 * (n_pre - fan_in) as u128;
        let den = (n_post - 1) as u128;
        ((num + den / 2) / den) as u64
    }

    /// Materializes the explicit neuron-level network.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooManyNeurons`] beyond `u32` ids,
    /// [`ModelError::TooLargeToMaterialize`] beyond `limit` synapses,
    /// [`ModelError::EmptyNetwork`] for a graph without layers.
    pub fn materialize(&self, limit: u64) -> Result<SnnNetwork, ModelError> {
        let n = self.num_neurons();
        if n == 0 {
            return Err(ModelError::EmptyNetwork);
        }
        if n > u32::MAX as u64 {
            return Err(ModelError::TooManyNeurons { neurons: n });
        }
        let m = self.num_synapses();
        if m > limit {
            return Err(ModelError::TooLargeToMaterialize { synapses: m, limit });
        }
        let off = self.layer_offsets();
        let mut b = SnnBuilder::with_capacity(n as u32, m as usize);
        for c in &self.conns {
            let (n_pre, n_post) = (self.layers[c.from], self.layers[c.to]);
            let (pre0, post0) = (off[c.from], off[c.to]);
            match c.pattern {
                ConnPattern::Full => {
                    for i in 0..n_pre {
                        for j in 0..n_post {
                            b.synapse((pre0 + i) as u32, (post0 + j) as u32, c.rate)?;
                        }
                    }
                }
                ConnPattern::Window { .. } | ConnPattern::MultiWindow { .. } => {
                    for (tap_lo, tap_len, tap_f) in Self::bands_of(c.pattern, n_pre) {
                        for j in 0..n_post {
                            let lo = tap_lo + Self::window_start(tap_len, n_post, tap_f, j);
                            for i in lo..lo + tap_f {
                                b.synapse((pre0 + i) as u32, (post0 + j) as u32, c.rate)?;
                            }
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// Partitions the layered network analytically, producing the same
    /// PCN first-fit partitioning would (under the given policy) without
    /// materializing any synapse.
    ///
    /// Cluster boundaries are exact. Edge weights for `Full` connections
    /// are exact; for `Window` connections they are computed by
    /// continuous band-overlap integration, which conserves total traffic
    /// exactly and matches the discrete synapse counts per cluster pair to
    /// within edge effects (validated against materialized partitions in
    /// the tests).
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyNetwork`] for a graph without layers; other
    /// [`ModelError`]s propagate from PCN construction.
    pub fn partition_analytic(
        &self,
        con: CoreConstraints,
        policy: PartitionPolicy,
    ) -> Result<Pcn, ModelError> {
        if self.layers.is_empty() {
            return Err(ModelError::EmptyNetwork);
        }
        let fan_in = self.layer_fan_in();
        let offsets = self.layer_offsets();

        // Pass 1: pack clusters. Each cluster is a contiguous global
        // neuron range; record its start and accumulated loads.
        let mut starts: Vec<u64> = Vec::new(); // global start of each cluster
        let mut neurons: Vec<u32> = Vec::new();
        let mut synapses: Vec<u64> = Vec::new();
        let mut cur_start = 0u64;
        let mut cur_cnt = 0u64;
        let mut cur_syn = 0u64;
        let close =
            |starts: &mut Vec<u64>, neurons: &mut Vec<u32>, synapses: &mut Vec<u64>,
             cur_start: &mut u64, cur_cnt: &mut u64, cur_syn: &mut u64| {
                if *cur_cnt > 0 {
                    starts.push(*cur_start);
                    neurons.push(*cur_cnt as u32);
                    synapses.push(*cur_syn);
                    *cur_start += *cur_cnt;
                    *cur_cnt = 0;
                    *cur_syn = 0;
                }
            };
        for (l, &size) in self.layers.iter().enumerate() {
            if policy.respect_layers {
                close(&mut starts, &mut neurons, &mut synapses, &mut cur_start, &mut cur_cnt, &mut cur_syn);
            }
            let fi = fan_in[l];
            let mut left = size;
            while left > 0 {
                let cap_n = con.neurons_per_core as u64 - cur_cnt;
                let cap_s = if policy.enforce_synapse_limit && fi > 0 {
                    (con.synapses_per_core.saturating_sub(cur_syn)) / fi
                } else {
                    u64::MAX
                };
                let take = cap_n.min(cap_s).min(left);
                if take == 0 {
                    if cur_cnt > 0 {
                        close(&mut starts, &mut neurons, &mut synapses, &mut cur_start, &mut cur_cnt, &mut cur_syn);
                        continue;
                    }
                    // A single neuron exceeds the synapse budget: force an
                    // over-budget singleton, mirroring `partition`.
                    cur_cnt = 1;
                    cur_syn = fi;
                    left -= 1;
                    close(&mut starts, &mut neurons, &mut synapses, &mut cur_start, &mut cur_cnt, &mut cur_syn);
                    continue;
                }
                cur_cnt += take;
                cur_syn += take * fi;
                left -= take;
            }
        }
        close(&mut starts, &mut neurons, &mut synapses, &mut cur_start, &mut cur_cnt, &mut cur_syn);

        let n_clusters = starts.len();
        // Sentinel end for range queries.
        let mut bounds = starts.clone();
        bounds.push(self.num_neurons());

        let mut builder = PcnBuilder::with_capacity(n_clusters, self.conns.len() * 4);
        for (c, (&n, &s)) in neurons.iter().zip(synapses.iter()).enumerate() {
            let id = builder.add_cluster(n, s);
            debug_assert_eq!(id as usize, c);
        }

        // Pass 2: aggregate inter-cluster traffic per connection.
        for conn in &self.conns {
            let (n_pre, n_post) = (self.layers[conn.from], self.layers[conn.to]);
            let (pre0, post0) = (offsets[conn.from], offsets[conn.to]);
            // Clusters overlapping the target layer.
            let first_post = match bounds.binary_search(&post0) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            match conn.pattern {
                ConnPattern::Full => {
                    let first_pre = match bounds.binary_search(&pre0) {
                        Ok(i) => i,
                        Err(i) => i - 1,
                    };
                    let mut cb = first_post;
                    while cb < n_clusters && bounds[cb] < post0 + n_post {
                        let b_lo = bounds[cb].max(post0);
                        let b_hi = bounds[cb + 1].min(post0 + n_post);
                        let post_cnt = b_hi - b_lo;
                        let mut ca = first_pre;
                        while ca < n_clusters && bounds[ca] < pre0 + n_pre {
                            let a_lo = bounds[ca].max(pre0);
                            let a_hi = bounds[ca + 1].min(pre0 + n_pre);
                            let w = (a_hi - a_lo) as f64 * post_cnt as f64 * conn.rate as f64;
                            builder.add_edge(ca as u32, cb as u32, w as f32)?;
                            ca += 1;
                        }
                        cb += 1;
                    }
                }
                ConnPattern::Window { .. } | ConnPattern::MultiWindow { .. } => {
                    for (tap_lo, tap_len, tap_f) in Self::bands_of(conn.pattern, n_pre) {
                        // Continuous window-start slope within this tap's
                        // sub-range. Using `n_post` (not `n_post − 1`)
                        // keeps every continuous window inside
                        // `[0, tap_len]`, so the band integral conserves
                        // the exact synapse total `tap_f · n_post`.
                        let slope = (tap_len - tap_f) as f64 / n_post as f64;
                        let mut cb = first_post;
                        while cb < n_clusters && bounds[cb] < post0 + n_post {
                            let b_lo = bounds[cb].max(post0);
                            let b_hi = bounds[cb + 1].min(post0 + n_post);
                            // Local post index range [p0, p1).
                            let p0 = (b_lo - post0) as f64;
                            let p1 = (b_hi - post0) as f64;
                            // Source span touched by this post range,
                            // relative to the tap's sub-range start.
                            let span_lo = slope * p0;
                            let span_hi = slope * p1 + tap_f as f64;
                            // Clusters overlapping the absolute span.
                            let g_lo = pre0 + tap_lo + span_lo.floor().max(0.0) as u64;
                            let mut ca = match bounds.binary_search(&g_lo) {
                                Ok(i) => i,
                                Err(i) => i - 1,
                            };
                            let abs_hi = (pre0 + tap_lo) as f64 + span_hi;
                            while ca < n_clusters && (bounds[ca] as f64) < abs_hi {
                                let a_lo = bounds[ca].max(pre0);
                                let a_hi = bounds[ca + 1].min(pre0 + n_pre);
                                if a_hi > a_lo {
                                    // Pre-cluster range in tap-local
                                    // coordinates.
                                    let q0 = (a_lo - pre0) as f64 - tap_lo as f64;
                                    let q1 = (a_hi - pre0) as f64 - tap_lo as f64;
                                    let w = band_overlap_integral(
                                        p0, p1, slope, tap_f as f64, q0, q1,
                                    ) * conn.rate as f64;
                                    if w > 0.0 {
                                        builder.add_edge(ca as u32, cb as u32, w as f32)?;
                                    }
                                }
                                ca += 1;
                            }
                            cb += 1;
                        }
                    }
                }
            }
        }
        builder.build()
    }
}

impl fmt::Display for LayerGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} layers, {} neurons, {} synapses",
            self.name,
            self.num_layers(),
            self.num_neurons(),
            self.num_synapses()
        )
    }
}

/// Integrates `∫_{p0}^{p1} max(0, min(s·j + f, q1) − max(s·j, q0)) dj` —
/// the traffic a sliding window connection deposits between a target
/// cluster's post range `[p0, p1)` and a source cluster's pre range
/// `[q0, q1)`.
///
/// The integrand is piecewise linear; breakpoints occur where the inner
/// min/max arguments cross. Integration is exact per linear piece.
fn band_overlap_integral(p0: f64, p1: f64, s: f64, f: f64, q0: f64, q1: f64) -> f64 {
    debug_assert!(p1 >= p0 && q1 >= q0 && f >= 0.0 && s >= 0.0);
    let inner = |j: f64| (s * j + f).min(q1) - (s * j).max(q0);
    if s == 0.0 {
        return inner(0.0).max(0.0) * (p1 - p0);
    }
    let mut pts = vec![p0, p1, q0 / s, q1 / s, (q0 - f) / s, (q1 - f) / s];
    pts.retain(|x| x.is_finite());
    pts.sort_by(f64::total_cmp);
    let mut total = 0.0;
    for w in pts.windows(2) {
        let (a, b) = (w[0].max(p0), w[1].min(p1));
        if b <= a {
            continue;
        }
        let (va, vb) = (inner(a), inner(b));
        if va <= 0.0 && vb <= 0.0 {
            continue;
        }
        if va >= 0.0 && vb >= 0.0 {
            total += 0.5 * (va + vb) * (b - a);
        } else {
            // One endpoint below zero: integrate the positive triangle.
            let t = va / (va - vb); // crossing point fraction in [0, 1]
            let cross = a + t * (b - a);
            if va > 0.0 {
                total += 0.5 * va * (cross - a);
            } else {
                total += 0.5 * vb * (b - cross);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;

    fn mini_dnn() -> LayerGraph {
        let mut g = LayerGraph::new("mini");
        let a = g.add_layer(16);
        let b = g.add_layer(16);
        let c = g.add_layer(16);
        g.connect(a, b, ConnPattern::Full, 1.0).unwrap();
        g.connect(b, c, ConnPattern::Full, 1.0).unwrap();
        g
    }

    #[test]
    fn totals() {
        let g = mini_dnn();
        assert_eq!(g.num_neurons(), 48);
        assert_eq!(g.num_synapses(), 512);
        assert_eq!(g.total_traffic(), 512.0);
    }

    #[test]
    fn connect_validation() {
        let mut g = LayerGraph::new("t");
        let a = g.add_layer(4);
        let b = g.add_layer(4);
        assert!(matches!(
            g.connect(a, a, ConnPattern::Full, 1.0),
            Err(ModelError::InvalidConnection { .. })
        ));
        assert!(matches!(
            g.connect(a, 7, ConnPattern::Full, 1.0),
            Err(ModelError::InvalidConnection { .. })
        ));
        assert!(matches!(
            g.connect(a, b, ConnPattern::Window { fan_in: 5 }, 1.0),
            Err(ModelError::FanInTooLarge { .. })
        ));
        assert!(matches!(
            g.connect(a, b, ConnPattern::Full, -1.0),
            Err(ModelError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn materialize_matches_declared_counts() {
        let g = mini_dnn();
        let snn = g.materialize(1 << 20).unwrap();
        assert_eq!(snn.num_neurons() as u64, g.num_neurons());
        assert_eq!(snn.num_synapses(), g.num_synapses());
        assert!((snn.total_traffic() - g.total_traffic()).abs() < 1e-9);
    }

    #[test]
    fn materialize_window_fan_in_exact() {
        let mut g = LayerGraph::new("w");
        let a = g.add_layer(20);
        let b = g.add_layer(10);
        g.connect(a, b, ConnPattern::Window { fan_in: 4 }, 1.0).unwrap();
        let snn = g.materialize(1 << 20).unwrap();
        // Every post neuron has exactly fan_in incoming synapses.
        for j in 20..30 {
            assert_eq!(snn.fan_in(j), 4);
        }
        assert_eq!(snn.num_synapses(), 40);
    }

    #[test]
    fn materialize_limit_enforced() {
        let g = mini_dnn();
        assert!(matches!(
            g.materialize(100),
            Err(ModelError::TooLargeToMaterialize { synapses: 512, limit: 100 })
        ));
    }

    #[test]
    fn analytic_strict_matches_explicit_partition() {
        // The core cross-validation: strict analytic partitioning equals
        // Algorithm 1 on the materialized network — identical cluster
        // boundaries, connection sets, and (for Full conns) weights.
        let mut g = LayerGraph::new("x");
        let a = g.add_layer(13);
        let b = g.add_layer(29);
        let c = g.add_layer(7);
        g.connect(a, b, ConnPattern::Full, 1.0).unwrap();
        g.connect(b, c, ConnPattern::Full, 2.0).unwrap();
        let snn = g.materialize(1 << 20).unwrap();
        for con in [
            CoreConstraints::new(4, u64::MAX).unwrap(),
            CoreConstraints::new(7, u64::MAX).unwrap(),
            CoreConstraints::new(100, 40).unwrap(),
            CoreConstraints::new(5, 60).unwrap(),
        ] {
            let explicit = partition(&snn, con).unwrap();
            let analytic = g.partition_analytic(con, PartitionPolicy::strict()).unwrap();
            assert_eq!(explicit.num_clusters(), analytic.num_clusters(), "{con}");
            for cl in 0..explicit.num_clusters() {
                assert_eq!(explicit.neurons_in(cl), analytic.neurons_in(cl), "{con} cluster {cl}");
                assert_eq!(explicit.synapses_in(cl), analytic.synapses_in(cl), "{con} cluster {cl}");
            }
            assert_eq!(explicit.num_connections(), analytic.num_connections(), "{con}");
            for (f, t, w) in explicit.iter_edges() {
                let wa = analytic.edge_weight(f, t).unwrap_or(0.0);
                assert!((w - wa).abs() < 1e-4, "{con} edge {f}->{t}: {w} vs {wa}");
            }
        }
    }

    #[test]
    fn analytic_window_weights_close_to_explicit() {
        let mut g = LayerGraph::new("w");
        let a = g.add_layer(64);
        let b = g.add_layer(48);
        g.connect(a, b, ConnPattern::Window { fan_in: 9 }, 1.0).unwrap();
        let snn = g.materialize(1 << 20).unwrap();
        let con = CoreConstraints::new(16, u64::MAX).unwrap();
        let explicit = partition(&snn, con).unwrap();
        let analytic = g.partition_analytic(con, PartitionPolicy::strict()).unwrap();
        assert_eq!(explicit.num_clusters(), analytic.num_clusters());
        // Total traffic is conserved exactly.
        assert!(
            (explicit.total_traffic() + explicit.intra_traffic()
                - analytic.total_traffic()
                - analytic.intra_traffic())
            .abs()
                < 1e-6 * explicit.total_traffic().max(1.0)
        );
        // Per-edge weights agree within band-integration edge effects.
        for (f, t, w) in explicit.iter_edges() {
            let wa = analytic.edge_weight(f, t).unwrap_or(0.0);
            assert!(
                (w as f64 - wa as f64).abs() <= 0.25 * w as f64 + 3.0,
                "edge {f}->{t}: explicit {w} vs analytic {wa}"
            );
        }
    }

    #[test]
    fn multiwindow_matches_materialized_partition() {
        let mut g = LayerGraph::new("mw");
        let a = g.add_layer(96);
        let b = g.add_layer(60);
        g.connect(a, b, ConnPattern::MultiWindow { fan_in: 12, taps: 4 }, 1.0).unwrap();
        let snn = g.materialize(1 << 20).unwrap();
        // Every post neuron has exactly fan_in synapses across the taps.
        for j in 96..156 {
            assert_eq!(snn.fan_in(j), 12);
        }
        let con = CoreConstraints::new(16, u64::MAX).unwrap();
        let explicit = partition(&snn, con).unwrap();
        let analytic = g.partition_analytic(con, PartitionPolicy::strict()).unwrap();
        assert_eq!(explicit.num_clusters(), analytic.num_clusters());
        // Total traffic conserved and each tap's band lands in the right
        // cluster neighbourhood.
        let et = explicit.total_traffic() + explicit.intra_traffic();
        let at = analytic.total_traffic() + analytic.intra_traffic();
        assert!((et - at).abs() < 1e-6 * et.max(1.0), "{et} vs {at}");
        for (f, t, w) in explicit.iter_edges() {
            let wa = analytic.edge_weight(f, t).unwrap_or(0.0);
            assert!(
                (w as f64 - wa as f64).abs() <= 0.35 * w as f64 + 3.0,
                "edge {f}->{t}: explicit {w} vs analytic {wa}"
            );
        }
    }

    #[test]
    fn multiwindow_raises_connection_count() {
        let build = |pattern| {
            let mut g = LayerGraph::new("t");
            let a = g.add_layer(1024);
            let b = g.add_layer(1024);
            g.connect(a, b, pattern, 1.0).unwrap();
            g.partition_analytic(CoreConstraints::new(64, u64::MAX).unwrap(), PartitionPolicy::table3())
                .unwrap()
                .num_connections()
        };
        let single = build(ConnPattern::Window { fan_in: 64 });
        let multi = build(ConnPattern::MultiWindow { fan_in: 64, taps: 8 });
        assert!(multi > 2 * single, "taps should fan out: {multi} vs {single}");
    }

    #[test]
    fn multiwindow_validation() {
        let mut g = LayerGraph::new("v");
        let a = g.add_layer(16);
        let b = g.add_layer(16);
        // More taps than fan-in.
        assert!(g
            .connect(a, b, ConnPattern::MultiWindow { fan_in: 2, taps: 4 }, 1.0)
            .is_err());
        // Per-tap window longer than the tap sub-range
        // (ceil(17/4) = 5 > 16/4 = 4).
        assert!(g
            .connect(a, b, ConnPattern::MultiWindow { fan_in: 17, taps: 4 }, 1.0)
            .is_err());
        // Windows exactly filling each tap are allowed (slope 0).
        assert!(g
            .connect(a, b, ConnPattern::MultiWindow { fan_in: 16, taps: 4 }, 1.0)
            .is_ok());
        assert!(g
            .connect(a, b, ConnPattern::MultiWindow { fan_in: 8, taps: 4 }, 1.0)
            .is_ok());
    }

    #[test]
    fn table3_policy_aligns_clusters_to_layers() {
        let mut g = LayerGraph::new("align");
        let a = g.add_layer(10);
        let b = g.add_layer(10);
        g.connect(a, b, ConnPattern::Full, 1.0).unwrap();
        let con = CoreConstraints::new(8, u64::MAX).unwrap();
        let pcn = g.partition_analytic(con, PartitionPolicy::table3()).unwrap();
        // ceil(10/8) per layer: clusters of 8, 2, 8, 2.
        assert_eq!(pcn.num_clusters(), 4);
        assert_eq!(pcn.neurons_in(0), 8);
        assert_eq!(pcn.neurons_in(1), 2);
        assert_eq!(pcn.neurons_in(2), 8);
        assert_eq!(pcn.neurons_in(3), 2);
        // Strict policy lets clusters straddle the boundary: 8, 8, 4.
        let pcn = g.partition_analytic(con, PartitionPolicy::strict()).unwrap();
        assert_eq!(pcn.num_clusters(), 3);
    }

    #[test]
    fn skip_connection_window_one() {
        // Identity skip: layer a feeds both b and c; the a->c skip has
        // fan-in 1.
        let mut g = LayerGraph::new("skip");
        let a = g.add_layer(32);
        let b = g.add_layer(32);
        let c = g.add_layer(32);
        g.connect(a, b, ConnPattern::Full, 1.0).unwrap();
        g.connect(b, c, ConnPattern::Full, 1.0).unwrap();
        g.connect(a, c, ConnPattern::Window { fan_in: 1 }, 0.5).unwrap();
        assert_eq!(g.num_synapses(), 32 * 32 * 2 + 32);
        let pcn = g
            .partition_analytic(CoreConstraints::new(16, u64::MAX).unwrap(), PartitionPolicy::table3())
            .unwrap();
        // Skip edges connect matching halves: cluster 0 -> cluster 4,
        // cluster 1 -> cluster 5. The continuous band integral may bleed
        // a sub-synapse sliver across the halfway boundary; the dominant
        // weights must sit on the matching pairs.
        let main = pcn.edge_weight(0, 4).unwrap();
        assert!(main > 0.0);
        assert!(pcn.edge_weight(1, 5).unwrap() > 0.0);
        let sliver = pcn.edge_weight(0, 5).unwrap_or(0.0);
        assert!(sliver < 0.05 * main, "sliver {sliver} vs main {main}");
    }

    #[test]
    fn band_overlap_full_coverage_conserves_area() {
        // Integrating over the full source layer returns f per unit post.
        let (p0, p1, s, f) = (0.0, 10.0, 2.0, 4.0);
        let whole = band_overlap_integral(p0, p1, s, f, 0.0, 2.0 * 10.0 + 4.0);
        assert!((whole - f * (p1 - p0)).abs() < 1e-9, "{whole}");
        // Splitting the source range partitions the integral.
        let a = band_overlap_integral(p0, p1, s, f, 0.0, 10.0);
        let b = band_overlap_integral(p0, p1, s, f, 10.0, 24.0);
        assert!((a + b - whole).abs() < 1e-9);
    }

    #[test]
    fn band_overlap_zero_when_disjoint() {
        assert_eq!(band_overlap_integral(0.0, 5.0, 1.0, 2.0, 100.0, 120.0), 0.0);
    }

    #[test]
    fn empty_graph_errors() {
        let g = LayerGraph::new("empty");
        assert!(matches!(
            g.partition_analytic(CoreConstraints::default(), PartitionPolicy::table3()),
            Err(ModelError::EmptyNetwork)
        ));
        assert!(matches!(g.materialize(10), Err(ModelError::EmptyNetwork)));
    }
}
