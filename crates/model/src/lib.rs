//! SNN application model, partitioner, and workload generators.
//!
//! This crate implements §3.2 of *Mapping Very Large Scale Spiking Neuron
//! Network to Neuromorphic Hardware* (ASPLOS '23):
//!
//! * [`SnnNetwork`] — the application graph `G_SNN = (V_S, E_S, w_S)`:
//!   neurons, synapses, and per-synapse spike-traffic weights,
//! * [`partition`] — Algorithm 1, the sequential first-fit partitioner
//!   that packs neurons into clusters under per-core capacity limits,
//! * [`Pcn`] — the Partitioned Cluster Network `G_PCN = (V_P, E_P, w_P)`
//!   with traffic-aggregated cluster-to-cluster weights (eq. 5),
//! * [`LayerGraph`] — a layer-level description of (deep) SNNs from which
//!   both an explicit [`SnnNetwork`] *and* an analytically partitioned
//!   [`Pcn`] can be derived. The analytic path is what makes the paper's
//!   billion-neuron benchmarks (Table 3) representable: DNN_4B has
//!   1.125 × 10¹⁵ synapses, which no machine materializes, but its PCN
//!   (1 M clusters, 67 M connections) is a deterministic closed form of
//!   first-fit partitioning over the layered structure,
//! * [`generators`] — every Table 3 benchmark: synthetic DNN/CNN families
//!   and the realistic model suite (LeNet, AlexNet, MobileNet,
//!   InceptionV3, ResNet), plus random graphs for testing.
//!
//! # Examples
//!
//! ```
//! use snnmap_hw::CoreConstraints;
//! use snnmap_model::generators::DnnSpec;
//! use snnmap_model::partition;
//!
//! // A 3-layer DNN, materialized and partitioned with Algorithm 1.
//! let snn = DnnSpec::new(&[100, 200, 50])?.build(7)?;
//! let con = CoreConstraints::new(64, 1 << 40).unwrap();
//! let pcn = partition(&snn, con)?;
//! assert!(pcn.num_clusters() >= 350 / 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
pub mod generators;
mod layered;
mod partition;
mod pcn;
pub mod refine;
mod snn;

pub use error::ModelError;
pub use layered::{ConnPattern, LayerConn, LayerGraph, PartitionPolicy};
pub use partition::partition;
pub use refine::{
    cut_weight, partition_with_assignment, pcn_from_assignment, refine_partition, RefineStats,
};
pub use pcn::{Pcn, PcnBuilder};
pub use snn::{SnnBuilder, SnnNetwork};
