//! Explicit neuron-level SNN graphs.

use std::fmt;

use crate::ModelError;

/// An SNN application graph `G_SNN = (V_S, E_S, w_S)` (eq. 2): neurons as
/// nodes, synapses as directed edges, and edge weights giving the *spike
/// traffic density* on each synapse (not the synaptic weight — §3.2).
///
/// Stored in compressed sparse row (CSR) form over `u32` neuron ids.
/// Explicit graphs are meant for the small and medium benchmarks; the
/// billion-neuron Table 3 applications are handled analytically through
/// [`LayerGraph`](crate::LayerGraph).
///
/// # Examples
///
/// ```
/// use snnmap_model::SnnBuilder;
///
/// let mut b = SnnBuilder::new(3);
/// b.synapse(0, 1, 1.0)?;
/// b.synapse(0, 2, 0.5)?;
/// b.synapse(1, 2, 2.0)?;
/// let snn = b.build()?;
/// assert_eq!(snn.num_neurons(), 3);
/// assert_eq!(snn.num_synapses(), 3);
/// assert_eq!(snn.fan_in(2), 2);
/// assert_eq!(snn.total_traffic(), 3.5);
/// # Ok::<(), snnmap_model::ModelError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct SnnNetwork {
    n: u32,
    /// CSR offsets of outgoing synapses, length `n + 1`.
    out_offsets: Vec<u64>,
    /// Targets of outgoing synapses, sorted per source.
    out_targets: Vec<u32>,
    /// Spike densities aligned with `out_targets`.
    out_weights: Vec<f32>,
    /// Incoming synapse count per neuron (the fan-in each core must store).
    fan_in: Vec<u32>,
    total_traffic: f64,
}

impl SnnNetwork {
    /// Number of neurons `|V_S|`.
    #[inline]
    pub fn num_neurons(&self) -> u32 {
        self.n
    }

    /// Number of synapses `|E_S|`.
    #[inline]
    pub fn num_synapses(&self) -> u64 {
        self.out_targets.len() as u64
    }

    /// Total spike traffic `Σ w_S(e)` over all synapses.
    #[inline]
    pub fn total_traffic(&self) -> f64 {
        self.total_traffic
    }

    /// Outgoing synapses of `neuron` as `(target, spike density)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `neuron ≥ num_neurons()`.
    pub fn synapses_out(&self, neuron: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.out_offsets[neuron as usize] as usize;
        let hi = self.out_offsets[neuron as usize + 1] as usize;
        self.out_targets[lo..hi].iter().copied().zip(self.out_weights[lo..hi].iter().copied())
    }

    /// Number of outgoing synapses of `neuron`.
    ///
    /// # Panics
    ///
    /// Panics if `neuron ≥ num_neurons()`.
    #[inline]
    pub fn fan_out(&self, neuron: u32) -> u32 {
        (self.out_offsets[neuron as usize + 1] - self.out_offsets[neuron as usize]) as u32
    }

    /// Number of incoming synapses of `neuron` — the synaptic storage the
    /// hosting core must provide, counted against `CON_spc` by the
    /// partitioner.
    ///
    /// # Panics
    ///
    /// Panics if `neuron ≥ num_neurons()`.
    #[inline]
    pub fn fan_in(&self, neuron: u32) -> u32 {
        self.fan_in[neuron as usize]
    }

    /// Iterates all synapses as `(from, to, spike density)`.
    pub fn iter_synapses(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.n).flat_map(move |u| self.synapses_out(u).map(move |(v, w)| (u, v, w)))
    }
}

impl fmt::Debug for SnnNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnnNetwork")
            .field("neurons", &self.n)
            .field("synapses", &self.num_synapses())
            .field("total_traffic", &self.total_traffic)
            .finish()
    }
}

impl fmt::Display for SnnNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SNN with {} neurons, {} synapses", self.n, self.num_synapses())
    }
}

/// Incremental builder for [`SnnNetwork`].
///
/// Synapses may be added in any order; `build` sorts them into CSR form.
/// Duplicate `(from, to)` synapses are kept as parallel edges (their
/// traffic simply adds up in all aggregations).
#[derive(Debug, Clone, Default)]
pub struct SnnBuilder {
    n: u32,
    edges: Vec<(u32, u32, f32)>,
}

impl SnnBuilder {
    /// Starts a network with `n` neurons (ids `0..n`).
    pub fn new(n: u32) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Pre-allocates capacity for `cap` synapses.
    pub fn with_capacity(n: u32, cap: usize) -> Self {
        Self { n, edges: Vec::with_capacity(cap) }
    }

    /// Adds a synapse `from → to` with spike density `weight`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidSynapse`] for out-of-range neuron ids,
    /// [`ModelError::InvalidWeight`] for non-finite or negative weights.
    pub fn synapse(&mut self, from: u32, to: u32, weight: f32) -> Result<&mut Self, ModelError> {
        if from >= self.n || to >= self.n {
            return Err(ModelError::InvalidSynapse { from, to, neurons: self.n });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(ModelError::InvalidWeight { weight });
        }
        self.edges.push((from, to, weight));
        Ok(self)
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyNetwork`] if `n == 0`.
    pub fn build(self) -> Result<SnnNetwork, ModelError> {
        if self.n == 0 {
            return Err(ModelError::EmptyNetwork);
        }
        let n = self.n as usize;
        let mut counts = vec![0u64; n + 1];
        let mut fan_in = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            counts[u as usize + 1] += 1;
            fan_in[v as usize] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let out_offsets = counts;
        let m = self.edges.len();
        let mut out_targets = vec![0u32; m];
        let mut out_weights = vec![0f32; m];
        let mut cursor = out_offsets.clone();
        let mut total = 0f64;
        for (u, v, w) in self.edges {
            let c = &mut cursor[u as usize];
            out_targets[*c as usize] = v;
            out_weights[*c as usize] = w;
            *c += 1;
            total += w as f64;
        }
        // Sort each row by target for deterministic iteration.
        let mut net = SnnNetwork {
            n: self.n,
            out_offsets,
            out_targets,
            out_weights,
            fan_in,
            total_traffic: total,
        };
        for u in 0..n {
            let lo = net.out_offsets[u] as usize;
            let hi = net.out_offsets[u + 1] as usize;
            let mut row: Vec<(u32, f32)> = net.out_targets[lo..hi]
                .iter()
                .copied()
                .zip(net.out_weights[lo..hi].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(t, _)| t);
            for (k, (t, w)) in row.into_iter().enumerate() {
                net.out_targets[lo + k] = t;
                net.out_weights[lo + k] = w;
            }
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SnnNetwork {
        let mut b = SnnBuilder::new(4);
        b.synapse(0, 1, 1.0).unwrap();
        b.synapse(1, 2, 2.0).unwrap();
        b.synapse(2, 3, 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_traffic() {
        let snn = chain();
        assert_eq!(snn.num_neurons(), 4);
        assert_eq!(snn.num_synapses(), 3);
        assert_eq!(snn.total_traffic(), 6.0);
    }

    #[test]
    fn fan_in_fan_out() {
        let mut b = SnnBuilder::new(3);
        b.synapse(0, 2, 1.0).unwrap();
        b.synapse(1, 2, 1.0).unwrap();
        b.synapse(2, 0, 1.0).unwrap();
        let snn = b.build().unwrap();
        assert_eq!(snn.fan_in(2), 2);
        assert_eq!(snn.fan_in(0), 1);
        assert_eq!(snn.fan_in(1), 0);
        assert_eq!(snn.fan_out(2), 1);
    }

    #[test]
    fn rows_sorted_by_target() {
        let mut b = SnnBuilder::new(4);
        b.synapse(0, 3, 3.0).unwrap();
        b.synapse(0, 1, 1.0).unwrap();
        b.synapse(0, 2, 2.0).unwrap();
        let snn = b.build().unwrap();
        let row: Vec<_> = snn.synapses_out(0).collect();
        assert_eq!(row, vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
    }

    #[test]
    fn parallel_edges_kept() {
        let mut b = SnnBuilder::new(2);
        b.synapse(0, 1, 1.0).unwrap();
        b.synapse(0, 1, 2.0).unwrap();
        let snn = b.build().unwrap();
        assert_eq!(snn.num_synapses(), 2);
        assert_eq!(snn.fan_in(1), 2);
        assert_eq!(snn.total_traffic(), 3.0);
    }

    #[test]
    fn iter_synapses_covers_all() {
        let snn = chain();
        let all: Vec<_> = snn.iter_synapses().collect();
        assert_eq!(all, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = SnnBuilder::new(2);
        assert!(matches!(b.synapse(0, 5, 1.0), Err(ModelError::InvalidSynapse { .. })));
        assert!(matches!(b.synapse(0, 1, f32::NAN), Err(ModelError::InvalidWeight { .. })));
        assert!(matches!(b.synapse(0, 1, -1.0), Err(ModelError::InvalidWeight { .. })));
        assert!(matches!(SnnBuilder::new(0).build(), Err(ModelError::EmptyNetwork)));
    }

    #[test]
    fn isolated_neurons_allowed() {
        let snn = SnnBuilder::new(5).build().unwrap();
        assert_eq!(snn.num_synapses(), 0);
        assert_eq!(snn.fan_in(4), 0);
        assert_eq!(snn.total_traffic(), 0.0);
    }
}
