//! The Partitioned Cluster Network (PCN).

use std::fmt;

use crate::ModelError;

/// The Partitioned Cluster Network `G_PCN = (V_P, E_P, w_P)` (eq. 3): the
/// cluster-level graph the mapping algorithms operate on.
///
/// Each node is a cluster of neurons small enough for one core; each
/// directed edge carries the aggregated spike traffic between two clusters
/// (eq. 5). Intra-cluster traffic never enters the interconnect, so
/// self-loops are excluded from `E_P` (their total is still available via
/// [`Pcn::intra_traffic`]).
///
/// Both edge directions are stored in CSR form so that the Force-Directed
/// engine can enumerate *all* neighbours of a cluster in O(degree).
///
/// # Examples
///
/// ```
/// use snnmap_model::PcnBuilder;
///
/// let mut b = PcnBuilder::new();
/// b.add_cluster(100, 5_000); // neurons, stored synapses
/// b.add_cluster(80, 4_000);
/// b.add_cluster(120, 6_000);
/// b.add_edge(0, 1, 10.0)?;
/// b.add_edge(1, 2, 4.0)?;
/// b.add_edge(0, 1, 2.0)?; // duplicate pairs accumulate
/// let pcn = b.build()?;
/// assert_eq!(pcn.num_clusters(), 3);
/// assert_eq!(pcn.num_connections(), 2);
/// assert_eq!(pcn.edge_weight(0, 1), Some(12.0));
/// # Ok::<(), snnmap_model::ModelError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Pcn {
    neurons: Vec<u32>,
    synapses: Vec<u64>,
    out_offsets: Vec<u64>,
    out_to: Vec<u32>,
    out_w: Vec<f32>,
    in_offsets: Vec<u64>,
    in_from: Vec<u32>,
    in_w: Vec<f32>,
    total_traffic: f64,
    intra_traffic: f64,
    total_neurons: u64,
    total_synapses: u64,
}

impl Pcn {
    /// Number of clusters `|V_P|`.
    #[inline]
    pub fn num_clusters(&self) -> u32 {
        self.neurons.len() as u32
    }

    /// Number of directed inter-cluster connections `|E_P|`.
    #[inline]
    pub fn num_connections(&self) -> u64 {
        self.out_to.len() as u64
    }

    /// Total inter-cluster traffic `Σ w_P(e)`.
    #[inline]
    pub fn total_traffic(&self) -> f64 {
        self.total_traffic
    }

    /// Total intra-cluster traffic (self-loop weight dropped from `E_P`).
    #[inline]
    pub fn intra_traffic(&self) -> f64 {
        self.intra_traffic
    }

    /// Total neurons across all clusters.
    #[inline]
    pub fn total_neurons(&self) -> u64 {
        self.total_neurons
    }

    /// Total stored synapses across all clusters.
    #[inline]
    pub fn total_synapses(&self) -> u64 {
        self.total_synapses
    }

    /// Neurons in cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ num_clusters()`.
    #[inline]
    pub fn neurons_in(&self, c: u32) -> u32 {
        self.neurons[c as usize]
    }

    /// Stored (incoming) synapses of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ num_clusters()`.
    #[inline]
    pub fn synapses_in(&self, c: u32) -> u64 {
        self.synapses[c as usize]
    }

    /// Outgoing connections of cluster `c` as `(target, weight)`.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ num_clusters()`.
    pub fn out_edges(&self, c: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.out_offsets[c as usize] as usize;
        let hi = self.out_offsets[c as usize + 1] as usize;
        self.out_to[lo..hi].iter().copied().zip(self.out_w[lo..hi].iter().copied())
    }

    /// Incoming connections of cluster `c` as `(source, weight)`.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ num_clusters()`.
    pub fn in_edges(&self, c: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.in_offsets[c as usize] as usize;
        let hi = self.in_offsets[c as usize + 1] as usize;
        self.in_from[lo..hi].iter().copied().zip(self.in_w[lo..hi].iter().copied())
    }

    /// Out-degree plus in-degree of cluster `c` — the number of incident
    /// directed connections.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ num_clusters()`.
    pub fn degree(&self, c: u32) -> u64 {
        let c = c as usize;
        (self.out_offsets[c + 1] - self.out_offsets[c])
            + (self.in_offsets[c + 1] - self.in_offsets[c])
    }

    /// In-degree of cluster `c` (used by topological sorting).
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ num_clusters()`.
    #[inline]
    pub fn in_degree(&self, c: u32) -> u64 {
        self.in_offsets[c as usize + 1] - self.in_offsets[c as usize]
    }

    /// Weight of the directed connection `from → to`, if present.
    ///
    /// O(log degree) via binary search.
    pub fn edge_weight(&self, from: u32, to: u32) -> Option<f32> {
        let lo = self.out_offsets[from as usize] as usize;
        let hi = self.out_offsets[from as usize + 1] as usize;
        let row = &self.out_to[lo..hi];
        row.binary_search(&to).ok().map(|k| self.out_w[lo + k])
    }

    /// Iterates all directed connections as `(from, to, weight)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.num_clusters())
            .flat_map(move |c| self.out_edges(c).map(move |(t, w)| (c, t, w)))
    }
}

impl fmt::Debug for Pcn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pcn")
            .field("clusters", &self.num_clusters())
            .field("connections", &self.num_connections())
            .field("total_neurons", &self.total_neurons)
            .field("total_synapses", &self.total_synapses)
            .field("total_traffic", &self.total_traffic)
            .finish()
    }
}

impl fmt::Display for Pcn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCN with {} clusters, {} connections", self.num_clusters(), self.num_connections())
    }
}

/// Incremental builder for [`Pcn`].
///
/// Clusters are added in id order; edges may arrive in any order and
/// duplicate `(from, to)` pairs accumulate their weights (this is exactly
/// the aggregation of eq. 5). Self-loops are tallied into
/// [`Pcn::intra_traffic`] instead of becoming connections.
#[derive(Debug, Clone, Default)]
pub struct PcnBuilder {
    neurons: Vec<u32>,
    synapses: Vec<u64>,
    edges: Vec<(u32, u32, f32)>,
    intra: f64,
}

impl PcnBuilder {
    /// Starts an empty PCN.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates for `clusters` clusters and `edges` connections.
    pub fn with_capacity(clusters: usize, edges: usize) -> Self {
        Self {
            neurons: Vec::with_capacity(clusters),
            synapses: Vec::with_capacity(clusters),
            edges: Vec::with_capacity(edges),
            intra: 0.0,
        }
    }

    /// Appends a cluster with its neuron count and stored-synapse count,
    /// returning the new cluster's id.
    pub fn add_cluster(&mut self, neurons: u32, synapses: u64) -> u32 {
        self.neurons.push(neurons);
        self.synapses.push(synapses);
        (self.neurons.len() - 1) as u32
    }

    /// Number of clusters added so far.
    pub fn num_clusters(&self) -> u32 {
        self.neurons.len() as u32
    }

    /// Adds traffic `weight` on the connection `from → to`. Both clusters
    /// must already exist. Self-loops are recorded as intra-cluster
    /// traffic rather than connections.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidSynapse`] for unknown cluster ids (reusing the
    /// synapse error shape with cluster ids), [`ModelError::InvalidWeight`]
    /// for non-finite or negative weights.
    pub fn add_edge(&mut self, from: u32, to: u32, weight: f32) -> Result<&mut Self, ModelError> {
        let n = self.neurons.len() as u32;
        if from >= n || to >= n {
            return Err(ModelError::InvalidSynapse { from, to, neurons: n });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(ModelError::InvalidWeight { weight });
        }
        if from == to {
            self.intra += weight as f64;
        } else {
            self.edges.push((from, to, weight));
        }
        Ok(self)
    }

    /// Adds `weight` directly to the intra-cluster traffic total.
    ///
    /// [`PcnBuilder::add_edge`] records self-loops at `f32` precision, but
    /// [`Pcn::intra_traffic`] is an `f64` total. Deserializers that must
    /// reproduce a PCN bit-exactly (the `.pcnb` binary format, coarse-graph
    /// construction) use this to carry the full-precision total instead of
    /// round-tripping it through `f32`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidWeight`] for non-finite or negative weights
    /// (the `f32` cast is lossy but the sign/finiteness check is exact).
    pub fn add_intra(&mut self, weight: f64) -> Result<&mut Self, ModelError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(ModelError::InvalidWeight { weight: weight as f32 });
        }
        self.intra += weight;
        Ok(self)
    }

    /// Finalizes the PCN: aggregates duplicate edges and builds both CSR
    /// directions.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyNetwork`] if no clusters were added.
    pub fn build(mut self) -> Result<Pcn, ModelError> {
        if self.neurons.is_empty() {
            return Err(ModelError::EmptyNetwork);
        }
        // Aggregate duplicates by sorting on (from, to). Accumulate in
        // f64: an edge may aggregate hundreds of thousands of synapses
        // (e.g. a dense layer pair), where f32 summation would drift.
        self.edges.sort_unstable_by_key(|&(f, t, _)| (f, t));
        let mut agg: Vec<(u32, u32, f64)> = Vec::with_capacity(self.edges.len());
        for (f, t, w) in self.edges {
            match agg.last_mut() {
                Some(last) if last.0 == f && last.1 == t => last.2 += w as f64,
                _ => agg.push((f, t, w as f64)),
            }
        }
        let agg: Vec<(u32, u32, f32)> =
            agg.into_iter().map(|(f, t, w)| (f, t, w as f32)).collect();
        let n = self.neurons.len();
        let m = agg.len();
        let mut out_offsets = vec![0u64; n + 1];
        let mut in_offsets = vec![0u64; n + 1];
        for &(f, t, _) in &agg {
            out_offsets[f as usize + 1] += 1;
            in_offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_to = vec![0u32; m];
        let mut out_w = vec![0f32; m];
        let mut in_from = vec![0u32; m];
        let mut in_w = vec![0f32; m];
        let mut in_cursor = in_offsets.clone();
        let mut total = 0f64;
        // agg is sorted by (from, to), so the out CSR can be filled linearly.
        for (k, &(f, t, w)) in agg.iter().enumerate() {
            debug_assert!(k as u64 >= out_offsets[f as usize]);
            out_to[k] = t;
            out_w[k] = w;
            let c = &mut in_cursor[t as usize];
            in_from[*c as usize] = f;
            in_w[*c as usize] = w;
            *c += 1;
            total += w as f64;
        }
        let total_neurons = self.neurons.iter().map(|&x| x as u64).sum();
        let total_synapses = self.synapses.iter().sum();
        Ok(Pcn {
            neurons: self.neurons,
            synapses: self.synapses,
            out_offsets,
            out_to,
            out_w,
            in_offsets,
            in_from,
            in_w,
            total_traffic: total,
            intra_traffic: self.intra,
            total_neurons,
            total_synapses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..4 {
            b.add_cluster(10, 100);
        }
        b.add_edge(0, 1, 5.0).unwrap();
        b.add_edge(1, 2, 3.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        b.add_edge(0, 3, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let p = small();
        assert_eq!(p.num_clusters(), 4);
        assert_eq!(p.num_connections(), 4);
        assert_eq!(p.total_traffic(), 11.0);
        assert_eq!(p.total_neurons(), 40);
        assert_eq!(p.total_synapses(), 400);
    }

    #[test]
    fn out_and_in_edges_agree() {
        let p = small();
        let out0: Vec<_> = p.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 5.0), (3, 2.0)]);
        let in3: Vec<_> = p.in_edges(3).collect();
        assert_eq!(in3.len(), 2);
        assert!(in3.contains(&(2, 1.0)));
        assert!(in3.contains(&(0, 2.0)));
        assert_eq!(p.degree(3), 2);
        assert_eq!(p.degree(0), 2);
        assert_eq!(p.degree(1), 2);
        assert_eq!(p.in_degree(0), 0);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        b.add_cluster(1, 1);
        b.add_edge(0, 1, 1.5).unwrap();
        b.add_edge(0, 1, 2.5).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.num_connections(), 1);
        assert_eq!(p.edge_weight(0, 1), Some(4.0));
        assert_eq!(p.edge_weight(1, 0), None);
    }

    #[test]
    fn self_loops_become_intra_traffic() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        b.add_edge(0, 0, 7.0).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.num_connections(), 0);
        assert_eq!(p.intra_traffic(), 7.0);
        assert_eq!(p.total_traffic(), 0.0);
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        assert!(b.add_edge(0, 1, 1.0).is_err());
        assert!(b.add_edge(0, 0, f32::INFINITY).is_err());
        assert!(matches!(PcnBuilder::new().build(), Err(ModelError::EmptyNetwork)));
    }

    #[test]
    fn iter_edges_matches_total() {
        let p = small();
        let sum: f64 = p.iter_edges().map(|(_, _, w)| w as f64).sum();
        assert_eq!(sum, p.total_traffic());
        assert_eq!(p.iter_edges().count() as u64, p.num_connections());
    }

    #[test]
    fn add_intra_is_exact_f64() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        let exact = 1.000_000_000_123_456_7_f64; // not representable in f32
        b.add_intra(exact).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.intra_traffic().to_bits(), exact.to_bits());
        assert!(PcnBuilder::new().add_intra(f64::NAN).is_err());
        assert!(PcnBuilder::new().add_intra(-1.0).is_err());
    }

    #[test]
    fn bidirectional_pair_is_two_connections() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        b.add_cluster(1, 1);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 0, 2.0).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.num_connections(), 2);
        assert_eq!(p.edge_weight(0, 1), Some(1.0));
        assert_eq!(p.edge_weight(1, 0), Some(2.0));
    }
}
