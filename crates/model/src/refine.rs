//! Traffic-aware partition refinement (extension).
//!
//! Algorithm 1 packs neurons first-fit in id order, ignoring traffic:
//! two heavily connected neurons can land in different clusters purely
//! because a capacity boundary fell between them. Much of the prior work
//! the paper compares against (PSOPART, SpiNeMap) optimizes exactly this
//! cut. This module adds a Kernighan–Lin-flavoured post-pass: greedily
//! move boundary neurons to the neighbouring cluster where most of their
//! traffic lives, whenever the move reduces the total inter-cluster
//! traffic and respects both per-core capacity limits.
//!
//! The refined assignment is no longer a set of contiguous id ranges, so
//! the PCN is rebuilt from the explicit assignment
//! ([`pcn_from_assignment`]).

use std::collections::HashMap;

use snnmap_hw::CoreConstraints;

use crate::{ModelError, Pcn, PcnBuilder, SnnNetwork};

/// Outcome of one [`refine_partition`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineStats {
    /// Neuron moves applied.
    pub moves: u64,
    /// Neuron pair swaps applied (capacity-preserving moves used when
    /// both clusters are full).
    pub swaps: u64,
    /// Full passes over the neuron set.
    pub passes: u32,
    /// Inter-cluster traffic before refinement.
    pub initial_cut: f64,
    /// Inter-cluster traffic after refinement.
    pub final_cut: f64,
}

/// First-fit partitioning (Algorithm 1) that also returns the explicit
/// neuron → cluster assignment, as input for refinement.
///
/// # Errors
///
/// Same as [`partition`](crate::partition).
pub fn partition_with_assignment(
    snn: &SnnNetwork,
    con: CoreConstraints,
) -> Result<(Pcn, Vec<u32>), ModelError> {
    let n = snn.num_neurons();
    if n == 0 {
        return Err(ModelError::EmptyNetwork);
    }
    let mut assignment = vec![0u32; n as usize];
    let mut cluster = 0u32;
    let mut cur_neurons = 0u32;
    let mut cur_synapses = 0u64;
    for x in 0..n {
        let fi = snn.fan_in(x) as u64;
        let overflow = cur_neurons + 1 > con.neurons_per_core
            || cur_synapses + fi > con.synapses_per_core;
        if overflow && cur_neurons > 0 {
            cluster += 1;
            cur_neurons = 0;
            cur_synapses = 0;
        }
        assignment[x as usize] = cluster;
        cur_neurons += 1;
        cur_synapses += fi;
    }
    let pcn = pcn_from_assignment(snn, &assignment)?;
    Ok((pcn, assignment))
}

/// Builds the PCN induced by an arbitrary neuron → cluster assignment
/// (eq. 5 aggregation over the given clustering).
///
/// # Errors
///
/// [`ModelError::EmptyNetwork`] for an empty network or assignment;
/// [`ModelError::InvalidSynapse`]-shaped errors cannot occur (cluster
/// ids are densified first).
pub fn pcn_from_assignment(snn: &SnnNetwork, assignment: &[u32]) -> Result<Pcn, ModelError> {
    if snn.num_neurons() == 0 || assignment.len() != snn.num_neurons() as usize {
        return Err(ModelError::EmptyNetwork);
    }
    let n_clusters = assignment.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut neurons = vec![0u32; n_clusters as usize];
    let mut synapses = vec![0u64; n_clusters as usize];
    for x in 0..snn.num_neurons() {
        let c = assignment[x as usize] as usize;
        neurons[c] += 1;
        synapses[c] += snn.fan_in(x) as u64;
    }
    let mut b = PcnBuilder::with_capacity(n_clusters as usize, snn.num_synapses() as usize / 4);
    for (&n, &s) in neurons.iter().zip(&synapses) {
        b.add_cluster(n.max(1), s); // empty clusters keep a placeholder neuron count
    }
    for (u, v, w) in snn.iter_synapses() {
        b.add_edge(assignment[u as usize], assignment[v as usize], w)?;
    }
    b.build()
}

/// Total inter-cluster traffic (the "cut") of an assignment.
pub fn cut_weight(snn: &SnnNetwork, assignment: &[u32]) -> f64 {
    snn.iter_synapses()
        .filter(|&(u, v, _)| assignment[u as usize] != assignment[v as usize])
        .map(|(_, _, w)| w as f64)
        .sum()
}

/// Greedy boundary refinement: repeatedly moves single neurons to the
/// cluster holding most of their traffic while both capacity limits stay
/// satisfied; when the attractive cluster is full (the common case —
/// Algorithm 1 fills clusters to the brim), a Kernighan–Lin-style *swap*
/// with one of its members is tried instead (sizes preserved, so only
/// the synapse budgets need rechecking). The cut decreases strictly with
/// every applied move or swap, so termination is guaranteed.
///
/// `assignment` is refined in place. Empty source clusters are allowed
/// to form; rebuild the PCN with [`pcn_from_assignment`] afterwards.
///
/// # Panics
///
/// Panics if `assignment` length differs from the neuron count, or if a
/// cluster's load already violates `con` (refinement requires a feasible
/// start).
pub fn refine_partition(
    snn: &SnnNetwork,
    assignment: &mut [u32],
    con: CoreConstraints,
    max_passes: u32,
) -> RefineStats {
    assert_eq!(assignment.len(), snn.num_neurons() as usize, "assignment covers all neurons");
    let n_clusters =
        assignment.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut cl_neurons = vec![0u32; n_clusters];
    let mut cl_synapses = vec![0u64; n_clusters];
    for x in 0..snn.num_neurons() {
        let c = assignment[x as usize] as usize;
        cl_neurons[c] += 1;
        cl_synapses[c] += snn.fan_in(x) as u64;
    }
    for c in 0..n_clusters {
        assert!(
            con.admits(cl_neurons[c], cl_synapses[c]),
            "cluster {c} starts over budget"
        );
    }

    let initial_cut = cut_weight(snn, assignment);
    // Incoming adjacency (cluster-gain needs both directions): build once.
    let mut in_edges: Vec<Vec<(u32, f32)>> = vec![Vec::new(); snn.num_neurons() as usize];
    for (u, v, w) in snn.iter_synapses() {
        in_edges[v as usize].push((u, w));
    }
    // Cluster membership lists, maintained across moves and swaps.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_clusters];
    for x in 0..snn.num_neurons() {
        members[assignment[x as usize] as usize].push(x);
    }
    // How many swap partners to examine per attractive cluster; bounds
    // the per-neuron cost at O(K · avg degree).
    const SWAP_CANDIDATES: usize = 16;

    // Traffic of neuron `z` toward each cluster it touches.
    let traffic_by_cluster =
        |z: u32, assignment: &[u32], scratch: &mut HashMap<u32, f64>| {
            scratch.clear();
            for (v, w) in snn.synapses_out(z) {
                if v != z {
                    *scratch.entry(assignment[v as usize]).or_insert(0.0) += w as f64;
                }
            }
            for &(u, w) in &in_edges[z as usize] {
                if u != z {
                    *scratch.entry(assignment[u as usize]).or_insert(0.0) += w as f64;
                }
            }
        };
    let remove_member = |members: &mut Vec<Vec<u32>>, cluster: usize, neuron: u32| {
        let list = &mut members[cluster];
        let idx = list.iter().position(|&m| m == neuron).expect("member present");
        list.swap_remove(idx);
    };

    let mut moves = 0u64;
    let mut swaps = 0u64;
    let mut passes = 0u32;
    let mut scratch: HashMap<u32, f64> = HashMap::new();
    let mut scratch_y: HashMap<u32, f64> = HashMap::new();
    while passes < max_passes {
        passes += 1;
        let mut changed_this_pass = false;
        for x in 0..snn.num_neurons() {
            let home = assignment[x as usize];
            traffic_by_cluster(x, assignment, &mut scratch);
            let home_traffic = scratch.get(&home).copied().unwrap_or(0.0);
            let fi = snn.fan_in(x) as u64;

            // Best feasible single move by cut gain.
            let mut best_move: Option<(f64, u32)> = None;
            // Best attractive-but-full cluster, for the swap fallback.
            let mut best_full: Option<(f64, u32)> = None;
            for (&cand, &traffic) in &scratch {
                if cand == home {
                    continue;
                }
                let gain = traffic - home_traffic;
                if gain <= 1e-12 {
                    continue;
                }
                let c = cand as usize;
                if con.admits(cl_neurons[c] + 1, cl_synapses[c] + fi) {
                    match best_move {
                        Some((g, _)) if g >= gain => {}
                        _ => best_move = Some((gain, cand)),
                    }
                } else {
                    match best_full {
                        Some((g, _)) if g >= gain => {}
                        _ => best_full = Some((gain, cand)),
                    }
                }
            }

            if let Some((_, dest)) = best_move {
                let (h, d) = (home as usize, dest as usize);
                cl_neurons[h] -= 1;
                cl_synapses[h] -= fi;
                cl_neurons[d] += 1;
                cl_synapses[d] += fi;
                assignment[x as usize] = dest;
                remove_member(&mut members, h, x);
                members[d].push(x);
                moves += 1;
                changed_this_pass = true;
                continue;
            }

            // Swap fallback: exchange x with a member y of the attractive
            // cluster. Swap gain = [t(x,b) − t(x,a)] + [t(y,a) − t(y,b)]
            // (the x–y edge terms cancel); sizes are preserved, so only
            // the synapse budgets need rechecking.
            let Some((move_gain, dest)) = best_full else { continue };
            let (h, d) = (home as usize, dest as usize);
            let mut best_swap: Option<(f64, u32, u64)> = None;
            for &y in members[d].iter().take(SWAP_CANDIDATES) {
                traffic_by_cluster(y, assignment, &mut scratch_y);
                let y_gain = scratch_y.get(&home).copied().unwrap_or(0.0)
                    - scratch_y.get(&dest).copied().unwrap_or(0.0);
                let total = move_gain + y_gain;
                if total <= 1e-12 {
                    continue;
                }
                let fy = snn.fan_in(y) as u64;
                let a_syn = cl_synapses[h] - fi + fy;
                let b_syn = cl_synapses[d] - fy + fi;
                if a_syn > con.synapses_per_core || b_syn > con.synapses_per_core {
                    continue;
                }
                match best_swap {
                    Some((g, _, _)) if g >= total => {}
                    _ => best_swap = Some((total, y, fy)),
                }
            }
            if let Some((_, y, fy)) = best_swap {
                cl_synapses[h] = cl_synapses[h] - fi + fy;
                cl_synapses[d] = cl_synapses[d] - fy + fi;
                assignment[x as usize] = dest;
                assignment[y as usize] = home;
                remove_member(&mut members, h, x);
                remove_member(&mut members, d, y);
                members[d].push(x);
                members[h].push(y);
                swaps += 1;
                changed_this_pass = true;
            }
        }
        if !changed_this_pass {
            break;
        }
    }

    RefineStats { moves, swaps, passes, initial_cut, final_cut: cut_weight(snn, assignment) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, SnnBuilder};

    /// Two 4-cliques connected by one weak edge, but first-fit splits
    /// them badly when the capacity boundary falls mid-clique.
    fn two_cliques() -> SnnNetwork {
        let mut b = SnnBuilder::new(8);
        for group in [0u32, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        b.synapse(group + i, group + j, 10.0).unwrap();
                    }
                }
            }
        }
        b.synapse(3, 4, 0.1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn partition_with_assignment_matches_partition() {
        let snn = two_cliques();
        let con = CoreConstraints::new(3, u64::MAX).unwrap();
        let (pcn_a, assignment) = partition_with_assignment(&snn, con).unwrap();
        let pcn_b = partition(&snn, con).unwrap();
        assert_eq!(pcn_a.num_clusters(), pcn_b.num_clusters());
        assert_eq!(pcn_a.total_traffic(), pcn_b.total_traffic());
        // First-fit assignment is nondecreasing.
        assert!(assignment.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn refinement_reduces_cut_on_misaligned_cliques() {
        let snn = two_cliques();
        // Capacity 4 per cluster, but shift the boundary: assign 0..3 to
        // cluster 0, 3..6 to cluster 1, 6..8 to cluster 2 (bad split).
        let mut assignment = vec![0, 0, 0, 1, 1, 1, 2, 2];
        let con = CoreConstraints::new(4, u64::MAX).unwrap();
        let before = cut_weight(&snn, &assignment);
        let stats = refine_partition(&snn, &mut assignment, con, 10);
        assert_eq!(stats.initial_cut, before);
        assert!(stats.final_cut < before, "{} !< {before}", stats.final_cut);
        assert!(stats.moves > 0);
        // The weak 3-4 edge should be the only remaining cut traffic.
        assert!(stats.final_cut <= 0.2 + 1e-9, "cut {}", stats.final_cut);
        // Cliques reunited: each clique in one cluster.
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[0], assignment[2]);
        assert_eq!(assignment[0], assignment[3]);
        assert_eq!(assignment[4], assignment[5]);
        assert_eq!(assignment[4], assignment[6]);
        assert_eq!(assignment[4], assignment[7]);
    }

    #[test]
    fn refinement_respects_capacity() {
        let snn = two_cliques();
        let con = CoreConstraints::new(4, u64::MAX).unwrap();
        let (_, mut assignment) = partition_with_assignment(&snn, con).unwrap();
        refine_partition(&snn, &mut assignment, con, 10);
        let mut counts = std::collections::HashMap::new();
        for &c in assignment.iter() {
            *counts.entry(c).or_insert(0u32) += 1;
        }
        for (&c, &n) in &counts {
            assert!(n <= 4, "cluster {c} holds {n} neurons");
        }
    }

    #[test]
    fn refinement_never_increases_cut() {
        for seed in 0..5 {
            let snn = crate::generators::random_snn(200, 6.0, 30, seed).unwrap();
            let con = CoreConstraints::new(16, u64::MAX).unwrap();
            let (_, mut assignment) = partition_with_assignment(&snn, con).unwrap();
            let before = cut_weight(&snn, &assignment);
            let stats = refine_partition(&snn, &mut assignment, con, 5);
            assert!(stats.final_cut <= before + 1e-9, "seed {seed}");
            assert!((cut_weight(&snn, &assignment) - stats.final_cut).abs() < 1e-9);
        }
    }

    #[test]
    fn pcn_from_assignment_conserves_traffic() {
        let snn = two_cliques();
        let assignment = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pcn = pcn_from_assignment(&snn, &assignment).unwrap();
        assert_eq!(pcn.num_clusters(), 2);
        let total = pcn.total_traffic() + pcn.intra_traffic();
        assert!((total - snn.total_traffic()).abs() < 1e-9);
        // Only the weak bridge crosses.
        assert!((pcn.total_traffic() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn pcn_from_assignment_rejects_bad_lengths() {
        let snn = two_cliques();
        assert!(pcn_from_assignment(&snn, &[0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "over budget")]
    fn refine_rejects_infeasible_start() {
        let snn = two_cliques();
        let mut assignment = vec![0; 8];
        refine_partition(&snn, &mut assignment, CoreConstraints::new(4, u64::MAX).unwrap(), 1);
    }
}
