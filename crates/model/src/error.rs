//! Error type for model construction and partitioning.

use std::error::Error;
use std::fmt;

/// Errors produced by the application-model layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A network or layer graph had no neurons.
    EmptyNetwork,
    /// A synapse referenced a neuron id outside the network.
    InvalidSynapse {
        /// Source neuron id.
        from: u32,
        /// Target neuron id.
        to: u32,
        /// Number of neurons in the network.
        neurons: u32,
    },
    /// A synapse weight (spike density) was non-finite or negative.
    InvalidWeight {
        /// The offending weight.
        weight: f32,
    },
    /// A layer-graph connection referenced a nonexistent layer or went
    /// backwards/self-wards.
    InvalidConnection {
        /// Source layer index.
        from: usize,
        /// Target layer index.
        to: usize,
        /// Number of layers.
        layers: usize,
    },
    /// A layer chain needs at least two layers.
    TooFewLayers {
        /// Layers given.
        layers: usize,
    },
    /// A layer declared zero neurons.
    EmptyLayer {
        /// Index of the empty layer.
        index: usize,
    },
    /// A spec's per-neuron fan-in was zero or exceeded its narrowest
    /// source layer.
    InvalidFanIn {
        /// Requested fan-in.
        fan_in: u64,
        /// Largest valid fan-in for the spec.
        max: u64,
    },
    /// An average degree / fan-out was negative or non-finite.
    InvalidDegree {
        /// The offending value.
        degree: f64,
    },
    /// A window connection's fan-in exceeds the source layer size.
    FanInTooLarge {
        /// Requested fan-in.
        fan_in: u64,
        /// Source layer size.
        layer: u64,
    },
    /// Materializing this graph would create more synapses than the
    /// configured safety limit (the Table 3 giants are analytic-only).
    TooLargeToMaterialize {
        /// Synapses the graph would need.
        synapses: u64,
        /// Configured limit.
        limit: u64,
    },
    /// The network is too large for explicit `u32` neuron ids; use the
    /// analytic layer-graph path instead.
    TooManyNeurons {
        /// Requested neuron count.
        neurons: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyNetwork => write!(f, "network has no neurons"),
            ModelError::InvalidSynapse { from, to, neurons } => {
                write!(f, "synapse {from} -> {to} outside network of {neurons} neurons")
            }
            ModelError::InvalidWeight { weight } => {
                write!(f, "synapse weight {weight} is not a finite nonnegative spike density")
            }
            ModelError::InvalidConnection { from, to, layers } => {
                write!(f, "connection {from} -> {to} invalid for {layers} layers")
            }
            ModelError::TooFewLayers { layers } => {
                write!(f, "a layer chain needs at least two layers, got {layers}")
            }
            ModelError::EmptyLayer { index } => {
                write!(f, "layer {index} has no neurons")
            }
            ModelError::InvalidFanIn { fan_in, max } => {
                write!(f, "fan-in {fan_in} must be in 1..={max}")
            }
            ModelError::InvalidDegree { degree } => {
                write!(f, "average degree {degree} is not a finite nonnegative number")
            }
            ModelError::FanInTooLarge { fan_in, layer } => {
                write!(f, "window fan-in {fan_in} exceeds source layer of {layer} neurons")
            }
            ModelError::TooLargeToMaterialize { synapses, limit } => {
                write!(f, "{synapses} synapses exceed the materialization limit of {limit}")
            }
            ModelError::TooManyNeurons { neurons } => {
                write!(f, "{neurons} neurons exceed explicit u32 representation")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            ModelError::EmptyNetwork,
            ModelError::InvalidSynapse { from: 1, to: 9, neurons: 5 },
            ModelError::InvalidWeight { weight: f32::NAN },
            ModelError::InvalidConnection { from: 2, to: 2, layers: 3 },
            ModelError::TooFewLayers { layers: 1 },
            ModelError::EmptyLayer { index: 2 },
            ModelError::InvalidFanIn { fan_in: 0, max: 8 },
            ModelError::InvalidDegree { degree: f64::NAN },
            ModelError::FanInTooLarge { fan_in: 10, layer: 5 },
            ModelError::TooLargeToMaterialize { synapses: 1 << 40, limit: 1 << 30 },
            ModelError::TooManyNeurons { neurons: 1 << 33 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
