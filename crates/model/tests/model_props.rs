//! Property tests: the analytic layer-level partitioner agrees with the
//! explicit Algorithm 1 on randomly generated layered networks.

use proptest::prelude::*;
use snnmap_hw::CoreConstraints;
use snnmap_model::{partition, ConnPattern, LayerGraph, PartitionPolicy};

/// A random small layered network: 2–5 layers, mixed Full/Window/Multi
/// connections between consecutive layers plus optional skips.
fn arbitrary_layer_graph() -> impl Strategy<Value = LayerGraph> {
    let layers = prop::collection::vec(4u64..60, 2..5);
    let knobs = prop::collection::vec((0u8..3, 1u64..12, 1u32..4, 0.1f32..2.0), 8);
    (layers, knobs).prop_map(|(layers, knobs)| {
        let mut g = LayerGraph::new("prop");
        let ids: Vec<usize> = layers.iter().map(|&n| g.add_layer(n)).collect();
        for (k, w) in ids.windows(2).enumerate() {
            let (kind, f, taps, rate) = knobs[k % knobs.len()];
            let n_pre = layers[k];
            let pattern = match kind {
                0 => ConnPattern::Full,
                1 => ConnPattern::Window { fan_in: f.min(n_pre) },
                _ => {
                    let taps = taps.min(n_pre as u32).max(1);
                    let max_fan = (n_pre / taps as u64) * taps as u64;
                    ConnPattern::MultiWindow {
                        fan_in: f.max(taps as u64).min(max_fan),
                        taps,
                    }
                }
            };
            g.connect(w[0], w[1], pattern, rate).unwrap();
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Strict analytic partitioning produces exactly the clusters the
    /// explicit partitioner does, for arbitrary layered networks and
    /// constraint mixes, and conserves total traffic.
    #[test]
    fn analytic_equals_explicit(
        g in arbitrary_layer_graph(),
        npc in 3u32..40,
        spc_k in 1u64..100,
    ) {
        let con = CoreConstraints::new(npc, spc_k * 16).unwrap();
        let snn = g.materialize(1 << 22).unwrap();
        let explicit = partition(&snn, con).unwrap();
        let analytic = g.partition_analytic(con, PartitionPolicy::strict()).unwrap();
        prop_assert_eq!(explicit.num_clusters(), analytic.num_clusters());
        for c in 0..explicit.num_clusters() {
            prop_assert_eq!(explicit.neurons_in(c), analytic.neurons_in(c), "cluster {}", c);
            prop_assert_eq!(explicit.synapses_in(c), analytic.synapses_in(c), "cluster {}", c);
        }
        let te = explicit.total_traffic() + explicit.intra_traffic();
        let ta = analytic.total_traffic() + analytic.intra_traffic();
        prop_assert!((te - ta).abs() < 1e-4 * te.max(1.0), "{} vs {}", te, ta);
    }

    /// Materialization matches the declared synapse counts, and every
    /// window target has exactly its fan-in.
    #[test]
    fn materialize_counts(g in arbitrary_layer_graph()) {
        let snn = g.materialize(1 << 22).unwrap();
        prop_assert_eq!(snn.num_neurons() as u64, g.num_neurons());
        prop_assert_eq!(snn.num_synapses(), g.num_synapses());
        prop_assert!((snn.total_traffic() - g.total_traffic()).abs()
            < 1e-4 * g.total_traffic().max(1.0));
    }

    /// Table 3 policy never yields clusters spanning layers: the first
    /// cluster of every layer starts exactly at the layer boundary, so
    /// per-layer cluster counts are the per-layer first-fit counts.
    #[test]
    fn table3_policy_layer_alignment(g in arbitrary_layer_graph(), npc in 3u32..40) {
        let con = CoreConstraints::new(npc, u64::MAX).unwrap();
        let pcn = g.partition_analytic(con, PartitionPolicy::table3()).unwrap();
        let expected: u64 = (0..g.num_layers())
            .map(|l| g.layer_size(l).div_ceil(npc as u64))
            .sum();
        prop_assert_eq!(pcn.num_clusters() as u64, expected);
    }
}
