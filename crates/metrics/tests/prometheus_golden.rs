//! Golden-file test for the Prometheus report encoder.
//!
//! `/metrics` consumers (scrapers, dashboards, CI greps) key on exact
//! metric names and formatting; this pins the rendered page byte-for-
//! byte so a formatter change is a conscious, reviewed diff of
//! `tests/golden/report.prom`.

use snnmap_metrics::MetricsReport;

#[test]
fn report_page_matches_the_golden_file() {
    let report = MetricsReport {
        energy: 1234.5,
        avg_latency: 4.25,
        max_latency: 10.0,
        avg_congestion: 0.125,
        max_congestion: 8.5,
        congestion_coverage: 1.0,
        max_congestion_is_lower_bound: false,
    };
    let golden = include_str!("golden/report.prom");
    assert_eq!(report.to_prometheus(), golden);
    // Deterministic: rendering twice is byte-identical.
    assert_eq!(report.to_prometheus(), report.to_prometheus());
}
