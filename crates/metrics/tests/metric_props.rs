//! Property tests on the §3.3 metric implementations.

use proptest::prelude::*;
use snnmap_hw::{Coord, CostModel, Mesh, Placement};
use snnmap_metrics::{
    average_latency, congestion_map, energy, expe, max_latency, CongestionAccumulator,
};
use snnmap_model::{Pcn, PcnBuilder};

fn arbitrary_pcn_and_placement(
    clusters: u32,
    side: u16,
) -> impl Strategy<Value = (Pcn, Placement)> {
    let edges = prop::collection::vec(
        (0..clusters, 0..clusters, 0.1f32..10.0),
        1..(clusters as usize * 3),
    );
    let perm = Just(()).prop_perturb(move |_, mut rng| {
        let mesh = Mesh::new(side, side).unwrap();
        let mut idx: Vec<usize> = (0..mesh.len()).collect();
        // Fisher-Yates with proptest's rng for reproducible shrinking.
        for i in (1..idx.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            idx.swap(i, j);
        }
        idx
    });
    (edges, perm).prop_map(move |(edges, idx)| {
        let mesh = Mesh::new(side, side).unwrap();
        let mut b = PcnBuilder::new();
        for _ in 0..clusters {
            b.add_cluster(1, 1);
        }
        for (f, t, w) in edges {
            b.add_edge(f, t, w).unwrap();
        }
        let pcn = b.build().unwrap();
        let mut p = Placement::new_unplaced(mesh, clusters);
        for c in 0..clusters {
            p.place(c, mesh.coord_of_index(idx[c as usize])).unwrap();
        }
        (pcn, p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Energy decomposes per edge, is translation invariant, and scales
    /// linearly with the cost constants.
    #[test]
    fn energy_linearity((pcn, p) in arbitrary_pcn_and_placement(12, 5)) {
        let cm1 = CostModel::new(1.0, 0.1, 1.0, 0.01);
        let cm2 = CostModel::new(2.0, 0.2, 1.0, 0.01);
        let e1 = energy(&pcn, &p, cm1).unwrap();
        let e2 = energy(&pcn, &p, cm2).unwrap();
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-9 * e1.max(1.0));
    }

    /// The weighted average latency never exceeds the maximum.
    #[test]
    fn avg_latency_bounded_by_max((pcn, p) in arbitrary_pcn_and_placement(12, 5)) {
        let cm = CostModel::paper_target();
        let avg = average_latency(&pcn, &p, cm).unwrap();
        let max = max_latency(&pcn, &p, cm).unwrap();
        prop_assert!(avg <= max + 1e-12);
    }

    /// The congestion map's total mass is the traffic-weighted expected
    /// router-traversal count: Σ_e w(e) · (d(e) + 1).
    #[test]
    fn congestion_mass_conservation((pcn, p) in arbitrary_pcn_and_placement(12, 5)) {
        let acc = congestion_map(&pcn, &p).unwrap();
        let mass: f64 = acc.map().iter().sum();
        let expected: f64 = pcn
            .iter_edges()
            .map(|(f, t, w)| w as f64 * (p.distance(f, t).unwrap() as f64 + 1.0))
            .sum();
        prop_assert!((mass - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// `Expe` levels conserve probability on arbitrary source/target
    /// pairs, and endpoints are always traversed.
    #[test]
    fn expe_conservation(
        sx in 0u16..8, sy in 0u16..8, tx in 0u16..8, ty in 0u16..8
    ) {
        let (s, t) = (Coord::new(sx, sy), Coord::new(tx, ty));
        prop_assert_eq!(expe(s, s, t), 1.0);
        prop_assert_eq!(expe(t, s, t), 1.0);
        // Sum over each anti-diagonal level of the bounding rectangle.
        let dx = sx.abs_diff(tx);
        let dy = sy.abs_diff(ty);
        for level in 0..=(dx + dy) {
            let mut sum = 0.0;
            for i in 0..=dx {
                let Some(j) = level.checked_sub(i) else { continue };
                if j > dy {
                    continue;
                }
                let x = if tx >= sx { sx + i } else { sx - i };
                let y = if ty >= sy { sy + j } else { sy - j };
                sum += expe(Coord::new(x, y), s, t);
            }
            prop_assert!((sum - 1.0).abs() < 1e-9, "level {level}: {sum}");
        }
    }

    /// Accumulating edges one at a time equals accumulating them in any
    /// order (the map is a sum).
    #[test]
    fn accumulator_is_order_independent(
        edges in prop::collection::vec(((0u16..4, 0u16..4), (0u16..4, 0u16..4), 0.1f64..5.0), 1..12)
    ) {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut fwd = CongestionAccumulator::new(mesh);
        let mut rev = CongestionAccumulator::new(mesh);
        for &((sx, sy), (tx, ty), w) in &edges {
            fwd.add_edge(Coord::new(sx, sy), Coord::new(tx, ty), w);
        }
        for &((sx, sy), (tx, ty), w) in edges.iter().rev() {
            rev.add_edge(Coord::new(sx, sy), Coord::new(tx, ty), w);
        }
        for (a, b) in fwd.map().iter().zip(rev.map()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
