//! Property tests on the §3.3 metric implementations.

use proptest::prelude::*;
use snnmap_hw::{Coord, CostModel, Mesh, Placement};
use snnmap_metrics::{
    average_latency, congestion_map, energy, expe, max_latency, CongestionAccumulator,
};
use snnmap_model::{Pcn, PcnBuilder};

fn arbitrary_pcn_and_placement(
    clusters: u32,
    side: u16,
) -> impl Strategy<Value = (Pcn, Placement)> {
    let edges = prop::collection::vec(
        (0..clusters, 0..clusters, 0.1f32..10.0),
        1..(clusters as usize * 3),
    );
    let perm = Just(()).prop_perturb(move |_, mut rng| {
        let mesh = Mesh::new(side, side).unwrap();
        let mut idx: Vec<usize> = (0..mesh.len()).collect();
        // Fisher-Yates with proptest's rng for reproducible shrinking.
        for i in (1..idx.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            idx.swap(i, j);
        }
        idx
    });
    (edges, perm).prop_map(move |(edges, idx)| {
        let mesh = Mesh::new(side, side).unwrap();
        let mut b = PcnBuilder::new();
        for _ in 0..clusters {
            b.add_cluster(1, 1);
        }
        for (f, t, w) in edges {
            b.add_edge(f, t, w).unwrap();
        }
        let pcn = b.build().unwrap();
        let mut p = Placement::new_unplaced(mesh, clusters);
        for c in 0..clusters {
            p.place(c, mesh.coord_of_index(idx[c as usize])).unwrap();
        }
        (pcn, p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Energy decomposes per edge, is translation invariant, and scales
    /// linearly with the cost constants.
    #[test]
    fn energy_linearity((pcn, p) in arbitrary_pcn_and_placement(12, 5)) {
        let cm1 = CostModel::new(1.0, 0.1, 1.0, 0.01).unwrap();
        let cm2 = CostModel::new(2.0, 0.2, 1.0, 0.01).unwrap();
        let e1 = energy(&pcn, &p, cm1).unwrap();
        let e2 = energy(&pcn, &p, cm2).unwrap();
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-9 * e1.max(1.0));
    }

    /// The weighted average latency never exceeds the maximum.
    #[test]
    fn avg_latency_bounded_by_max((pcn, p) in arbitrary_pcn_and_placement(12, 5)) {
        let cm = CostModel::paper_target();
        let avg = average_latency(&pcn, &p, cm).unwrap();
        let max = max_latency(&pcn, &p, cm).unwrap();
        prop_assert!(avg <= max + 1e-12);
    }

    /// The congestion map's total mass is the traffic-weighted expected
    /// router-traversal count: Σ_e w(e) · (d(e) + 1).
    #[test]
    fn congestion_mass_conservation((pcn, p) in arbitrary_pcn_and_placement(12, 5)) {
        let acc = congestion_map(&pcn, &p).unwrap();
        let mass: f64 = acc.map().iter().sum();
        let expected: f64 = pcn
            .iter_edges()
            .map(|(f, t, w)| w as f64 * (p.distance(f, t).unwrap() as f64 + 1.0))
            .sum();
        prop_assert!((mass - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// `Expe` levels conserve probability on arbitrary source/target
    /// pairs, and endpoints are always traversed.
    #[test]
    fn expe_conservation(
        sx in 0u16..8, sy in 0u16..8, tx in 0u16..8, ty in 0u16..8
    ) {
        let (s, t) = (Coord::new(sx, sy), Coord::new(tx, ty));
        prop_assert_eq!(expe(s, s, t), 1.0);
        prop_assert_eq!(expe(t, s, t), 1.0);
        // Sum over each anti-diagonal level of the bounding rectangle.
        let dx = sx.abs_diff(tx);
        let dy = sy.abs_diff(ty);
        for level in 0..=(dx + dy) {
            let mut sum = 0.0;
            for i in 0..=dx {
                let Some(j) = level.checked_sub(i) else { continue };
                if j > dy {
                    continue;
                }
                let x = if tx >= sx { sx + i } else { sx - i };
                let y = if ty >= sy { sy + j } else { sy - j };
                sum += expe(Coord::new(x, y), s, t);
            }
            prop_assert!((sum - 1.0).abs() < 1e-9, "level {level}: {sum}");
        }
    }

    /// Accumulating edges one at a time equals accumulating them in any
    /// order (the map is a sum).
    #[test]
    fn accumulator_is_order_independent(
        edges in prop::collection::vec(((0u16..4, 0u16..4), (0u16..4, 0u16..4), 0.1f64..5.0), 1..12)
    ) {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut fwd = CongestionAccumulator::new(mesh);
        let mut rev = CongestionAccumulator::new(mesh);
        for &((sx, sy), (tx, ty), w) in &edges {
            fwd.add_edge(Coord::new(sx, sy), Coord::new(tx, ty), w).unwrap();
        }
        for &((sx, sy), (tx, ty), w) in edges.iter().rev() {
            rev.add_edge(Coord::new(sx, sy), Coord::new(tx, ty), w).unwrap();
        }
        for (a, b) in fwd.map().iter().zip(rev.map()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// On non-square meshes the row-major index `x · cols + y` must not
    /// alias across rows: every edge's mass lands strictly inside its
    /// bounding rectangle and the total mass is conserved. (A rows/cols
    /// mix-up in the stride shifts mass into unrelated routers without
    /// changing the total, so both checks are needed.)
    #[test]
    fn non_square_meshes_do_not_alias(
        rows in 2u16..7,
        extra_cols in 1u16..5,
        edges in prop::collection::vec(((0u16..6, 0u16..10), (0u16..6, 0u16..10), 0.1f64..5.0), 1..10)
    ) {
        let cols = rows + extra_cols;
        let mesh = Mesh::new(rows, cols).unwrap();
        let clip = |x: u16, max: u16| x.min(max - 1);
        let mut acc = CongestionAccumulator::new(mesh);
        let mut expected_mass = 0.0;
        for &((sx, sy), (tx, ty), w) in &edges {
            let s = Coord::new(clip(sx, rows), clip(sy, cols));
            let t = Coord::new(clip(tx, rows), clip(ty, cols));
            acc.add_edge(s, t, w).unwrap();
            expected_mass +=
                w * ((s.x.abs_diff(t.x) + s.y.abs_diff(t.y)) as f64 + 1.0);
        }
        let mass: f64 = acc.map().iter().sum();
        prop_assert!((mass - expected_mass).abs() < 1e-9 * expected_mass.max(1.0));
        // Any router outside every bounding rectangle must be untouched.
        for c in mesh.iter() {
            let inside_some = edges.iter().any(|&((sx, sy), (tx, ty), _)| {
                let s = Coord::new(clip(sx, rows), clip(sy, cols));
                let t = Coord::new(clip(tx, rows), clip(ty, cols));
                c.x >= s.x.min(t.x) && c.x <= s.x.max(t.x)
                    && c.y >= s.y.min(t.y) && c.y <= s.y.max(t.y)
            });
            if !inside_some {
                prop_assert_eq!(acc.map()[mesh.index_of(c)], 0.0, "router {}", c);
            }
        }
    }
}
