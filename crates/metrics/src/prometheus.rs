//! Prometheus text exposition-format (version 0.0.4) encoding.
//!
//! One tiny, dependency-free builder shared by everything that exposes
//! metrics: [`MetricsReport::to_prometheus`](crate::MetricsReport::to_prometheus)
//! for placement quality, and the `snnmap-serve` daemon's `/metrics`
//! endpoint for operational gauges. Sharing the formatter keeps the two
//! surfaces consistent (names, escaping, value formatting) and golden-
//! file testable.
//!
//! # Examples
//!
//! ```
//! use snnmap_metrics::PromText;
//!
//! let mut prom = PromText::new();
//! prom.header("jobs", "gauge", "Jobs by lifecycle state.");
//! prom.sample("jobs", &[("state", "queued")], 3.0);
//! prom.sample("jobs", &[("state", "running")], 1.0);
//! let text = prom.finish();
//! assert!(text.contains("# TYPE snnmap_jobs gauge"));
//! assert!(text.contains("snnmap_jobs{state=\"queued\"} 3"));
//! ```

use std::fmt::Write as _;

/// Prefix stamped onto every metric name, keeping the whole project in
/// one Prometheus namespace.
pub const PROM_PREFIX: &str = "snnmap_";

/// Incremental builder for a Prometheus text page.
///
/// Metric names passed to [`header`](PromText::header) and
/// [`sample`](PromText::sample) are bare (`"jobs"`); the builder adds
/// [`PROM_PREFIX`]. Values render with `f64`'s shortest-roundtrip
/// display, which Prometheus accepts for integers and floats alike.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` preamble for a metric family.
    /// `kind` is a Prometheus type: `gauge` or `counter`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {PROM_PREFIX}{name} {help}");
        let _ = writeln!(self.out, "# TYPE {PROM_PREFIX}{name} {kind}");
    }

    /// Appends one sample line, with optional `{key="value"}` labels.
    /// Label values are escaped per the exposition format (`\\`, `\"`,
    /// `\n`).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = write!(self.out, "{PROM_PREFIX}{name}");
        if !labels.is_empty() {
            let _ = write!(self.out, "{{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    let _ = write!(self.out, ",");
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            let _ = write!(self.out, "}}");
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

impl crate::MetricsReport {
    /// Renders the five §3.3 metrics (plus congestion coverage) as a
    /// Prometheus text page — the formatter behind both
    /// `snnmap eval --format prometheus` and the serve daemon's
    /// `/metrics` endpoint. Rendering is deterministic: equal reports
    /// produce byte-identical pages (golden-file tested).
    pub fn to_prometheus(&self) -> String {
        let mut prom = PromText::new();
        for (name, help, value) in [
            ("energy", "Energy consumption M_ec (eq. 9).", self.energy),
            ("avg_latency", "Average spike latency M_al (eq. 10).", self.avg_latency),
            ("max_latency", "Maximum spike latency M_ml (eq. 11).", self.max_latency),
            ("avg_congestion", "Average router congestion M_ac (eq. 12).", self.avg_congestion),
            ("max_congestion", "Maximum router congestion M_mc (eq. 14).", self.max_congestion),
            (
                "congestion_coverage",
                "Fraction of edge traffic evaluated for the congestion metrics.",
                self.congestion_coverage,
            ),
            (
                "max_congestion_is_lower_bound",
                "1 when max_congestion only bounds M_mc from below (edge-sampled congestion).",
                f64::from(u8::from(self.max_congestion_is_lower_bound)),
            ),
        ] {
            prom.header(name, "gauge", help);
            prom.sample(name, &[], value);
        }
        prom.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_render_labels_and_escapes() {
        let mut prom = PromText::new();
        prom.header("x", "counter", "Help text.");
        prom.sample("x", &[("a", "p\"q"), ("b", "l1\nl2\\")], 2.5);
        let text = prom.finish();
        assert_eq!(
            text,
            "# HELP snnmap_x Help text.\n# TYPE snnmap_x counter\n\
             snnmap_x{a=\"p\\\"q\",b=\"l1\\nl2\\\\\"} 2.5\n"
        );
    }

    #[test]
    fn integral_values_render_without_fraction() {
        let mut prom = PromText::new();
        prom.sample("n", &[], 42.0);
        assert_eq!(prom.finish(), "snnmap_n 42\n");
    }
}
