//! Hop-distance histograms — analysis support beyond the paper's scalar
//! metrics.

use snnmap_hw::{HwError, Placement};
use snnmap_model::Pcn;

/// Computes the traffic-by-hop-distance histogram of a placement:
/// `result[d]` is the total traffic of connections spanning exactly `d`
/// mesh hops; the vector extends to the longest used distance (PCNs
/// without connections yield `[0.0]`).
///
/// This is the full distribution behind the scalar metrics: energy is a
/// weighted first moment of it, max latency its support's upper end. A
/// good placement concentrates mass at small `d`; comparing histograms
/// shows *where* an optimizer wins (e.g. FD removing the long tail the
/// Hilbert curve leaves).
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Coord, Mesh, Placement};
/// use snnmap_metrics::hop_histogram;
/// use snnmap_model::PcnBuilder;
///
/// let mut b = PcnBuilder::new();
/// for _ in 0..3 { b.add_cluster(1, 1); }
/// b.add_edge(0, 1, 2.0)?; // adjacent
/// b.add_edge(0, 2, 1.0)?; // two hops
/// let pcn = b.build()?;
/// let mesh = Mesh::new(1, 3)?;
/// let p = Placement::from_coords(
///     mesh,
///     &[Coord::new(0, 0), Coord::new(0, 1), Coord::new(0, 2)],
/// )?;
/// let h = hop_histogram(&pcn, &p)?;
/// assert_eq!(h, vec![0.0, 2.0, 1.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if an edge
/// endpoint has no position.
pub fn hop_histogram(pcn: &Pcn, placement: &Placement) -> Result<Vec<f64>, HwError> {
    let mesh = placement.mesh();
    let max_d = (mesh.rows() as usize - 1) + (mesh.cols() as usize - 1);
    let mut bins = vec![0.0f64; max_d + 1];
    let mut used = 0usize;
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, w) in pcn.out_edges(c) {
            let pt = placement.try_coord_of(t)?;
            let d = pc.manhattan(pt) as usize;
            bins[d] += w as f64;
            used = used.max(d);
        }
    }
    bins.truncate(used + 1);
    Ok(bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::{Coord, CostModel, Mesh};
    use snnmap_model::PcnBuilder;

    fn setup() -> (Pcn, Placement) {
        let mut b = PcnBuilder::new();
        for _ in 0..4 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(0, 2, 2.0).unwrap();
        b.add_edge(0, 3, 3.0).unwrap();
        let pcn = b.build().unwrap();
        let mesh = Mesh::new(2, 2).unwrap();
        let coords: Vec<Coord> = mesh.iter().collect();
        (pcn, Placement::from_coords(mesh, &coords).unwrap())
    }

    #[test]
    fn bins_sum_to_total_traffic() {
        let (pcn, p) = setup();
        let h = hop_histogram(&pcn, &p).unwrap();
        let total: f64 = h.iter().sum();
        assert!((total - pcn.total_traffic()).abs() < 1e-12);
    }

    #[test]
    fn energy_is_first_moment_plus_router_term() {
        // M_ec = sum_d bins[d] * ((d+1) EN_r + d EN_w).
        let (pcn, p) = setup();
        let cost = CostModel::paper_target();
        let h = hop_histogram(&pcn, &p).unwrap();
        let from_hist: f64 = h
            .iter()
            .enumerate()
            .map(|(d, w)| w * cost.spike_energy(d as u32))
            .sum();
        let direct = crate::energy(&pcn, &p, cost).unwrap();
        assert!((from_hist - direct).abs() < 1e-9);
    }

    #[test]
    fn truncates_to_longest_used_distance() {
        let (pcn, p) = setup();
        // On a 2x2 mesh, max distance is 2 and edge 0->3 uses it.
        assert_eq!(hop_histogram(&pcn, &p).unwrap().len(), 3);
    }

    #[test]
    fn empty_pcn_yields_single_zero_bin() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        let pcn = b.build().unwrap();
        let p = Placement::from_coords(Mesh::new(1, 1).unwrap(), &[Coord::new(0, 0)]).unwrap();
        assert_eq!(hop_histogram(&pcn, &p).unwrap(), vec![0.0]);
    }
}
