//! Spike latency metrics `M_al` (eq. 10) and `M_ml` (eq. 11).

use snnmap_hw::{CostModel, HwError, Placement};
use snnmap_model::Pcn;

/// Average time a spike spends in the interconnect (eq. 10): the
/// traffic-weighted mean of per-connection latencies,
///
/// `M_al = Σ_e w(e)·((d+1)·L_r + d·L_w) / Σ_e w(e)`.
///
/// Returns `0.0` for a PCN with no connections (no spikes travel).
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if an edge endpoint
/// has no position.
pub fn average_latency(pcn: &Pcn, placement: &Placement, cost: CostModel) -> Result<f64, HwError> {
    let mut weighted = 0.0f64;
    let mut traffic = 0.0f64;
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, w) in pcn.out_edges(c) {
            let pt = placement.try_coord_of(t)?;
            weighted += w as f64 * cost.spike_latency(pc.manhattan(pt));
            traffic += w as f64;
        }
    }
    Ok(if traffic > 0.0 { weighted / traffic } else { 0.0 })
}

/// Maximum transmission time over all connection routes (eq. 11):
///
/// `M_ml = max_e ((d+1)·L_r + d·L_w)`.
///
/// Unlike the average, the maximum is over *routes*, not traffic: the
/// weight does not enter (a rarely used long route still bounds worst-case
/// spike age). Returns `0.0` for a PCN with no connections.
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if an edge endpoint
/// has no position.
pub fn max_latency(pcn: &Pcn, placement: &Placement, cost: CostModel) -> Result<f64, HwError> {
    let mut max = 0.0f64;
    let mut any = false;
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, _) in pcn.out_edges(c) {
            let pt = placement.try_coord_of(t)?;
            max = max.max(cost.spike_latency(pc.manhattan(pt)));
            any = true;
        }
    }
    Ok(if any { max } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::{Coord, Mesh};
    use snnmap_model::PcnBuilder;

    fn line_pcn() -> Pcn {
        // 0 -> 1 heavy short edge, 0 -> 2 light long edge.
        let mut b = PcnBuilder::new();
        for _ in 0..3 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 9.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        b.build().unwrap()
    }

    fn line_placement() -> Placement {
        Placement::from_coords(
            Mesh::new(1, 4).unwrap(),
            &[Coord::new(0, 0), Coord::new(0, 1), Coord::new(0, 3)],
        )
        .unwrap()
    }

    #[test]
    fn average_is_traffic_weighted() {
        let cm = CostModel::paper_target();
        let avg = average_latency(&line_pcn(), &line_placement(), cm).unwrap();
        // d=1: 2*1 + 1*0.01 = 2.01 at weight 9; d=3: 4.03 at weight 1.
        let expect = (9.0 * 2.01 + 1.0 * 4.03) / 10.0;
        assert!((avg - expect).abs() < 1e-12, "{avg} vs {expect}");
    }

    #[test]
    fn max_ignores_weight() {
        let cm = CostModel::paper_target();
        let ml = max_latency(&line_pcn(), &line_placement(), cm).unwrap();
        assert!((ml - 4.03).abs() < 1e-12);
    }

    #[test]
    fn empty_pcn_yields_zero() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        let pcn = b.build().unwrap();
        let p = Placement::from_coords(Mesh::new(1, 1).unwrap(), &[Coord::new(0, 0)]).unwrap();
        let cm = CostModel::paper_target();
        assert_eq!(average_latency(&pcn, &p, cm).unwrap(), 0.0);
        assert_eq!(max_latency(&pcn, &p, cm).unwrap(), 0.0);
    }

    #[test]
    fn average_never_exceeds_max() {
        let cm = CostModel::paper_target();
        let avg = average_latency(&line_pcn(), &line_placement(), cm).unwrap();
        let ml = max_latency(&line_pcn(), &line_placement(), cm).unwrap();
        assert!(avg <= ml);
    }

    #[test]
    fn unplaced_errors() {
        let pcn = line_pcn();
        let p = Placement::new_unplaced(Mesh::new(2, 2).unwrap(), 3);
        assert!(average_latency(&pcn, &p, CostModel::paper_target()).is_err());
        assert!(max_latency(&pcn, &p, CostModel::paper_target()).is_err());
    }
}
