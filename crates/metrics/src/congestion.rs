//! Router congestion `Con(x, y)` (eq. 13) and its aggregates `M_ac`
//! (eq. 12) and `M_mc` (eq. 14).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_hw::{Coord, HwError, Mesh, Placement};
use snnmap_model::Pcn;

use crate::expe::expectation_grid;

/// Summary of a congestion map: the average over all routers (`M_ac`,
/// eq. 12) and the maximum (`M_mc`, eq. 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionStats {
    /// `M_ac`: mean expected traffic per router.
    pub average: f64,
    /// `M_mc`: expected traffic of the hottest router.
    pub max: f64,
    /// Fraction of total edge traffic that was evaluated (1.0 for exact
    /// evaluation; < 1.0 when edge sampling was used — averages are
    /// rescaled to be unbiased, the maximum is a lower bound).
    pub coverage: f64,
    /// Sampling honesty flag: `true` exactly when `coverage < 1.0`, i.e.
    /// [`max`](Self::max) only bounds `M_mc` from below because unevaluated
    /// edges could load the hottest router further. Exact evaluation and
    /// the degenerate (no traffic) case report `false`.
    pub max_is_lower_bound: bool,
}

/// Accumulates per-router expected traffic over the edges of a placement.
///
/// Each edge's traffic is spread over its source–target bounding rectangle
/// using the Algorithm 4 staircase distribution; contributions add up in a
/// dense per-router map.
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Coord, Mesh, Placement};
/// use snnmap_metrics::CongestionAccumulator;
///
/// let mesh = Mesh::new(2, 2)?;
/// let mut acc = CongestionAccumulator::new(mesh);
/// acc.add_edge(Coord::new(0, 0), Coord::new(1, 1), 4.0)?;
/// let stats = acc.stats();
/// // Corners see the full 4.0; the two detours 2.0 each: avg = 12/4.
/// assert_eq!(stats.average, 3.0);
/// assert_eq!(stats.max, 4.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CongestionAccumulator {
    mesh: Mesh,
    map: Vec<f64>,
    evaluated_traffic: f64,
    total_traffic: f64,
}

impl CongestionAccumulator {
    /// An empty accumulator for `mesh`.
    pub fn new(mesh: Mesh) -> Self {
        Self { mesh, map: vec![0.0; mesh.len()], evaluated_traffic: 0.0, total_traffic: 0.0 }
    }

    /// Adds one connection carrying `weight` traffic from `s` to `t`,
    /// spreading it over the bounding rectangle per Algorithm 4.
    ///
    /// # Errors
    ///
    /// [`HwError::OutOfBounds`] if either endpoint lies outside the mesh;
    /// the accumulator is left unchanged (a release build used to corrupt
    /// the map through unchecked row-major indexing here).
    pub fn add_edge(&mut self, s: Coord, t: Coord, weight: f64) -> Result<(), HwError> {
        for coord in [s, t] {
            if !self.mesh.contains(coord) {
                return Err(HwError::OutOfBounds { coord });
            }
        }
        self.total_traffic += weight;
        self.evaluated_traffic += weight;
        self.spread(s, t, weight);
        Ok(())
    }

    /// Records an edge's traffic in the totals *without* evaluating its
    /// rectangle — used by sampling evaluation for the skipped edges.
    pub fn skip_edge(&mut self, weight: f64) {
        self.total_traffic += weight;
    }

    fn spread(&mut self, s: Coord, t: Coord, weight: f64) {
        let dx = s.x.abs_diff(t.x) as usize;
        let dy = s.y.abs_diff(t.y) as usize;
        let grid = expectation_grid(dx, dy);
        let cols = dy + 1;
        let x0 = s.x.min(t.x);
        let y0 = s.y.min(t.y);
        // The normalized grid walks (0,0) -> (dx,dy); map back to the
        // quadrant the edge actually occupies.
        let flip_x = t.x < s.x;
        let flip_y = t.y < s.y;
        for i in 0..=dx {
            let x = if flip_x { x0 as usize + dx - i } else { x0 as usize + i };
            for j in 0..=dy {
                let v = grid[i * cols + j];
                if v == 0.0 {
                    continue;
                }
                let y = if flip_y { y0 as usize + dy - j } else { y0 as usize + j };
                self.map[x * self.mesh.cols() as usize + y] += weight * v;
            }
        }
    }

    /// The per-router congestion map, row-major (`Con(x, y)` at
    /// `x · cols + y`). Values are rescaled for sampling coverage when
    /// read through [`stats`](Self::stats); this raw view is unscaled.
    pub fn map(&self) -> &[f64] {
        &self.map
    }

    /// Aggregates the map into `M_ac` / `M_mc`.
    ///
    /// Under sampling (`coverage < 1`), the average is rescaled by
    /// `1 / coverage` (unbiased for uniform edge sampling); the maximum is
    /// reported unscaled and is therefore a lower bound.
    ///
    /// Degenerate accumulators — no edges at all, or every edge skipped
    /// by sampling so nothing was evaluated — report `coverage: 1.0`,
    /// `average: 0.0`, `max: 0.0` rather than dividing by a zero total.
    /// The guards are written `!(x > 0.0)` so a NaN total (from a caller
    /// feeding NaN weights) also takes the degenerate path instead of
    /// propagating into every field.
    // `!(x > 0.0)` is deliberate (NaN-inclusive), not a spelled-out `<=`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn stats(&self) -> CongestionStats {
        if !(self.total_traffic > 0.0) || !(self.evaluated_traffic > 0.0) {
            return CongestionStats {
                average: 0.0,
                max: 0.0,
                coverage: 1.0,
                max_is_lower_bound: false,
            };
        }
        let coverage = self.evaluated_traffic / self.total_traffic;
        let sum: f64 = self.map.iter().sum();
        let max = self.map.iter().copied().fold(0.0, f64::max);
        CongestionStats {
            average: sum / coverage / self.mesh.len() as f64,
            max,
            coverage,
            max_is_lower_bound: coverage < 1.0,
        }
    }
}

/// Builds the exact congestion map of a placement: every connection's
/// traffic spread per Algorithm 4.
///
/// Cost is `O(Σ_e area(bounding rectangle of e))`; for very large PCNs on
/// poor placements prefer
/// [`evaluate_with`](crate::evaluate_with) and its edge-sampling option.
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if an edge endpoint
/// has no position; [`HwError::OutOfBounds`] if a position lies outside
/// the accumulator's mesh (impossible for a well-formed [`Placement`],
/// but propagated rather than asserted).
pub fn congestion_map(pcn: &Pcn, placement: &Placement) -> Result<CongestionAccumulator, HwError> {
    let mut acc = CongestionAccumulator::new(placement.mesh());
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, w) in pcn.out_edges(c) {
            let pt = placement.try_coord_of(t)?;
            acc.add_edge(pc, pt, w as f64)?;
        }
    }
    Ok(acc)
}

/// Builds a sampled congestion map: at most `max_edges` connections are
/// evaluated (uniformly chosen with a seeded RNG); the rest only count
/// toward coverage so that [`CongestionAccumulator::stats`] can rescale.
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if a sampled edge
/// endpoint has no position.
pub(crate) fn congestion_map_sampled(
    pcn: &Pcn,
    placement: &Placement,
    max_edges: u64,
    seed: u64,
) -> Result<CongestionAccumulator, HwError> {
    let total = pcn.num_connections();
    if total <= max_edges {
        return congestion_map(pcn, placement);
    }
    let prob = max_edges as f64 / total as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut acc = CongestionAccumulator::new(placement.mesh());
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, w) in pcn.out_edges(c) {
            if rng.gen_bool(prob) {
                let pt = placement.try_coord_of(t)?;
                acc.add_edge(pc, pt, w as f64)?;
            } else {
                acc.skip_edge(w as f64);
            }
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::PcnBuilder;

    fn pair(w: f32, a: Coord, b: Coord, mesh: Mesh) -> (Pcn, Placement) {
        let mut bld = PcnBuilder::new();
        bld.add_cluster(1, 1);
        bld.add_cluster(1, 1);
        bld.add_edge(0, 1, w).unwrap();
        (bld.build().unwrap(), Placement::from_coords(mesh, &[a, b]).unwrap())
    }

    #[test]
    fn straight_edge_loads_its_line_only() {
        let mesh = Mesh::new(3, 3).unwrap();
        let (pcn, p) = pair(2.0, Coord::new(1, 0), Coord::new(1, 2), mesh);
        let acc = congestion_map(&pcn, &p).unwrap();
        let m = acc.map();
        for y in 0..3 {
            assert_eq!(m[mesh.index_of(Coord::new(1, y))], 2.0);
        }
        for y in 0..3 {
            assert_eq!(m[mesh.index_of(Coord::new(0, y))], 0.0);
            assert_eq!(m[mesh.index_of(Coord::new(2, y))], 0.0);
        }
        let stats = acc.stats();
        assert!((stats.average - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(stats.max, 2.0);
        assert_eq!(stats.coverage, 1.0);
    }

    #[test]
    fn total_map_mass_is_weight_times_expected_hops() {
        // Summing Con over all routers equals w * E[routers traversed]
        // = w * (manhattan + 1), since staircase paths visit exactly
        // d + 1 routers.
        let mesh = Mesh::new(6, 6).unwrap();
        let (pcn, p) = pair(3.0, Coord::new(0, 0), Coord::new(4, 3), mesh);
        let acc = congestion_map(&pcn, &p).unwrap();
        let mass: f64 = acc.map().iter().sum();
        assert!((mass - 3.0 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn direction_flips_are_mirrored() {
        let mesh = Mesh::new(5, 5).unwrap();
        let (pcn_a, pa) = pair(1.0, Coord::new(0, 0), Coord::new(2, 2), mesh);
        let (pcn_b, pb) = pair(1.0, Coord::new(2, 2), Coord::new(0, 0), mesh);
        let ma = congestion_map(&pcn_a, &pa).unwrap();
        let mb = congestion_map(&pcn_b, &pb).unwrap();
        for (a, b) in ma.map().iter().zip(mb.map()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_rescales_average() {
        // Many identical edges: sampled average should be close to the
        // exact one, and coverage < 1.
        let mesh = Mesh::new(8, 8).unwrap();
        let mut b = PcnBuilder::new();
        for _ in 0..64 {
            b.add_cluster(1, 1);
        }
        for i in 0..63u32 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let pcn = b.build().unwrap();
        let coords: Vec<Coord> = mesh.iter().collect();
        let p = Placement::from_coords(mesh, &coords).unwrap();
        let exact = congestion_map(&pcn, &p).unwrap().stats();
        let sampled = congestion_map_sampled(&pcn, &p, 32, 11).unwrap().stats();
        assert!(sampled.coverage < 1.0);
        assert!(sampled.max_is_lower_bound);
        assert!(!exact.max_is_lower_bound);
        assert!(
            (sampled.average - exact.average).abs() < 0.5 * exact.average,
            "sampled {} vs exact {}",
            sampled.average,
            exact.average
        );
        assert!(sampled.max <= exact.max + 1e-12);
    }

    #[test]
    fn sampling_with_large_budget_is_exact() {
        let mesh = Mesh::new(2, 2).unwrap();
        let (pcn, p) = pair(1.0, Coord::new(0, 0), Coord::new(1, 1), mesh);
        let a = congestion_map(&pcn, &p).unwrap().stats();
        let b = congestion_map_sampled(&pcn, &p, 100, 0).unwrap().stats();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_map_stats() {
        let acc = CongestionAccumulator::new(Mesh::new(3, 3).unwrap());
        let s = acc.stats();
        assert_eq!(s.average, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.coverage, 1.0);
        assert!(!s.max_is_lower_bound);
    }

    #[test]
    fn all_edges_skipped_is_degenerate_not_nan() {
        // Sampling can skip every edge: total > 0 but nothing evaluated.
        // coverage must not report 0 (which the average would then divide
        // by); the degenerate contract is coverage 1.0, average/max 0.0.
        let mut acc = CongestionAccumulator::new(Mesh::new(3, 3).unwrap());
        acc.skip_edge(5.0);
        acc.skip_edge(2.5);
        let s = acc.stats();
        assert_eq!(
            s,
            CongestionStats { average: 0.0, max: 0.0, coverage: 1.0, max_is_lower_bound: false }
        );
    }

    #[test]
    fn nan_traffic_takes_the_degenerate_path() {
        let mesh = Mesh::new(3, 3).unwrap();
        let mut acc = CongestionAccumulator::new(mesh);
        acc.add_edge(Coord::new(0, 0), Coord::new(1, 1), f64::NAN).unwrap();
        let s = acc.stats();
        assert!(s.average == 0.0 && s.max == 0.0 && s.coverage == 1.0, "{s:?}");
    }

    #[test]
    fn out_of_mesh_endpoints_are_typed_errors_and_leave_the_map_untouched() {
        let mesh = Mesh::new(3, 3).unwrap();
        let mut acc = CongestionAccumulator::new(mesh);
        let bad = Coord::new(3, 0);
        for (s, t) in [(bad, Coord::new(0, 0)), (Coord::new(0, 0), bad), (bad, bad)] {
            let err = acc.add_edge(s, t, 1.0).unwrap_err();
            assert!(matches!(err, HwError::OutOfBounds { coord } if coord == bad), "{err}");
        }
        assert!(acc.map().iter().all(|&v| v == 0.0));
        assert_eq!(
            acc.stats(),
            CongestionStats { average: 0.0, max: 0.0, coverage: 1.0, max_is_lower_bound: false }
        );
        // The accumulator still works after a rejected edge.
        acc.add_edge(Coord::new(0, 0), Coord::new(2, 2), 1.0).unwrap();
        assert!(acc.stats().max > 0.0);
    }

    #[test]
    fn quadrant_flips_bit_match_the_per_point_expe() {
        // An asymmetric rectangle (dx = 3, dy = 1) walked in all four
        // flip_x/flip_y quadrants: every cell the accumulator writes must
        // bit-equal `w * expe(cell, s, t)` — `spread`'s flipped fast path
        // and the per-point reference share the same grid, so even the
        // rounding must agree.
        use crate::expe;
        let mesh = Mesh::new(9, 9).unwrap();
        let w = 3.25;
        let center = Coord::new(4, 4);
        for t in [Coord::new(7, 5), Coord::new(1, 5), Coord::new(7, 3), Coord::new(1, 3)] {
            let mut acc = CongestionAccumulator::new(mesh);
            acc.add_edge(center, t, w).unwrap();
            for c in mesh.iter() {
                let got = acc.map()[mesh.index_of(c)];
                let want = w * expe(c, center, t);
                assert!(
                    got.to_bits() == want.to_bits(),
                    "{center} -> {t} at {c}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn quadrant_flips_match_brute_force_staircase_enumeration() {
        // Independent reference: enumerate every monotone staircase walk
        // with its probability (½ per free step, straight once an axis is
        // exhausted) in *mesh* coordinates, stepping from s toward t, and
        // accumulate per-router visit probability. dx ≠ dy so an i/j (or
        // flip) mix-up shifts mass to the wrong cells.
        fn walk(p: Coord, t: Coord, prob: f64, visits: &mut [f64], mesh: Mesh) {
            visits[mesh.index_of(p)] += prob;
            if p == t {
                return;
            }
            let step_x = Coord::new(if t.x > p.x { p.x + 1 } else { p.x.wrapping_sub(1) }, p.y);
            let step_y = Coord::new(p.x, if t.y > p.y { p.y + 1 } else { p.y.wrapping_sub(1) });
            if p.x == t.x {
                walk(step_y, t, prob, visits, mesh);
            } else if p.y == t.y {
                walk(step_x, t, prob, visits, mesh);
            } else {
                walk(step_x, t, prob / 2.0, visits, mesh);
                walk(step_y, t, prob / 2.0, visits, mesh);
            }
        }
        let mesh = Mesh::new(8, 8).unwrap();
        let w = 2.0;
        let s = Coord::new(3, 4);
        for t in [Coord::new(6, 5), Coord::new(0, 5), Coord::new(6, 3), Coord::new(0, 3)] {
            let mut acc = CongestionAccumulator::new(mesh);
            acc.add_edge(s, t, w).unwrap();
            let mut visits = vec![0.0; mesh.len()];
            walk(s, t, 1.0, &mut visits, mesh);
            for c in mesh.iter() {
                let got = acc.map()[mesh.index_of(c)];
                let want = w * visits[mesh.index_of(c)];
                assert!((got - want).abs() < 1e-12, "{s} -> {t} at {c}: {got} vs {want}");
            }
        }
    }
}
