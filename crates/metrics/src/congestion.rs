//! Router congestion `Con(x, y)` (eq. 13) and its aggregates `M_ac`
//! (eq. 12) and `M_mc` (eq. 14).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_hw::{Coord, HwError, Mesh, Placement};
use snnmap_model::Pcn;

use crate::expe::expectation_grid;

/// Summary of a congestion map: the average over all routers (`M_ac`,
/// eq. 12) and the maximum (`M_mc`, eq. 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionStats {
    /// `M_ac`: mean expected traffic per router.
    pub average: f64,
    /// `M_mc`: expected traffic of the hottest router.
    pub max: f64,
    /// Fraction of total edge traffic that was evaluated (1.0 for exact
    /// evaluation; < 1.0 when edge sampling was used — averages are
    /// rescaled to be unbiased, the maximum is a lower bound).
    pub coverage: f64,
}

/// Accumulates per-router expected traffic over the edges of a placement.
///
/// Each edge's traffic is spread over its source–target bounding rectangle
/// using the Algorithm 4 staircase distribution; contributions add up in a
/// dense per-router map.
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Coord, Mesh, Placement};
/// use snnmap_metrics::CongestionAccumulator;
///
/// let mesh = Mesh::new(2, 2)?;
/// let mut acc = CongestionAccumulator::new(mesh);
/// acc.add_edge(Coord::new(0, 0), Coord::new(1, 1), 4.0);
/// let stats = acc.stats();
/// // Corners see the full 4.0; the two detours 2.0 each: avg = 12/4.
/// assert_eq!(stats.average, 3.0);
/// assert_eq!(stats.max, 4.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CongestionAccumulator {
    mesh: Mesh,
    map: Vec<f64>,
    evaluated_traffic: f64,
    total_traffic: f64,
}

impl CongestionAccumulator {
    /// An empty accumulator for `mesh`.
    pub fn new(mesh: Mesh) -> Self {
        Self { mesh, map: vec![0.0; mesh.len()], evaluated_traffic: 0.0, total_traffic: 0.0 }
    }

    /// Adds one connection carrying `weight` traffic from `s` to `t`,
    /// spreading it over the bounding rectangle per Algorithm 4.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either endpoint is outside the mesh.
    pub fn add_edge(&mut self, s: Coord, t: Coord, weight: f64) {
        debug_assert!(self.mesh.contains(s) && self.mesh.contains(t));
        self.total_traffic += weight;
        self.evaluated_traffic += weight;
        self.spread(s, t, weight);
    }

    /// Records an edge's traffic in the totals *without* evaluating its
    /// rectangle — used by sampling evaluation for the skipped edges.
    pub fn skip_edge(&mut self, weight: f64) {
        self.total_traffic += weight;
    }

    fn spread(&mut self, s: Coord, t: Coord, weight: f64) {
        let dx = s.x.abs_diff(t.x) as usize;
        let dy = s.y.abs_diff(t.y) as usize;
        let grid = expectation_grid(dx, dy);
        let cols = dy + 1;
        let x0 = s.x.min(t.x);
        let y0 = s.y.min(t.y);
        // The normalized grid walks (0,0) -> (dx,dy); map back to the
        // quadrant the edge actually occupies.
        let flip_x = t.x < s.x;
        let flip_y = t.y < s.y;
        for i in 0..=dx {
            let x = if flip_x { x0 as usize + dx - i } else { x0 as usize + i };
            for j in 0..=dy {
                let v = grid[i * cols + j];
                if v == 0.0 {
                    continue;
                }
                let y = if flip_y { y0 as usize + dy - j } else { y0 as usize + j };
                self.map[x * self.mesh.cols() as usize + y] += weight * v;
            }
        }
    }

    /// The per-router congestion map, row-major (`Con(x, y)` at
    /// `x · cols + y`). Values are rescaled for sampling coverage when
    /// read through [`stats`](Self::stats); this raw view is unscaled.
    pub fn map(&self) -> &[f64] {
        &self.map
    }

    /// Aggregates the map into `M_ac` / `M_mc`.
    ///
    /// Under sampling (`coverage < 1`), the average is rescaled by
    /// `1 / coverage` (unbiased for uniform edge sampling); the maximum is
    /// reported unscaled and is therefore a lower bound.
    pub fn stats(&self) -> CongestionStats {
        let coverage = if self.total_traffic > 0.0 {
            self.evaluated_traffic / self.total_traffic
        } else {
            1.0
        };
        let sum: f64 = self.map.iter().sum();
        let max = self.map.iter().copied().fold(0.0, f64::max);
        let scale = if coverage > 0.0 { 1.0 / coverage } else { 1.0 };
        CongestionStats {
            average: sum * scale / self.mesh.len() as f64,
            max,
            coverage,
        }
    }
}

/// Builds the exact congestion map of a placement: every connection's
/// traffic spread per Algorithm 4.
///
/// Cost is `O(Σ_e area(bounding rectangle of e))`; for very large PCNs on
/// poor placements prefer
/// [`evaluate_with`](crate::evaluate_with) and its edge-sampling option.
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if an edge endpoint
/// has no position.
pub fn congestion_map(pcn: &Pcn, placement: &Placement) -> Result<CongestionAccumulator, HwError> {
    let mut acc = CongestionAccumulator::new(placement.mesh());
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, w) in pcn.out_edges(c) {
            let pt = placement.try_coord_of(t)?;
            acc.add_edge(pc, pt, w as f64);
        }
    }
    Ok(acc)
}

/// Builds a sampled congestion map: at most `max_edges` connections are
/// evaluated (uniformly chosen with a seeded RNG); the rest only count
/// toward coverage so that [`CongestionAccumulator::stats`] can rescale.
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if a sampled edge
/// endpoint has no position.
pub(crate) fn congestion_map_sampled(
    pcn: &Pcn,
    placement: &Placement,
    max_edges: u64,
    seed: u64,
) -> Result<CongestionAccumulator, HwError> {
    let total = pcn.num_connections();
    if total <= max_edges {
        return congestion_map(pcn, placement);
    }
    let prob = max_edges as f64 / total as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut acc = CongestionAccumulator::new(placement.mesh());
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, w) in pcn.out_edges(c) {
            if rng.gen_bool(prob) {
                let pt = placement.try_coord_of(t)?;
                acc.add_edge(pc, pt, w as f64);
            } else {
                acc.skip_edge(w as f64);
            }
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::PcnBuilder;

    fn pair(w: f32, a: Coord, b: Coord, mesh: Mesh) -> (Pcn, Placement) {
        let mut bld = PcnBuilder::new();
        bld.add_cluster(1, 1);
        bld.add_cluster(1, 1);
        bld.add_edge(0, 1, w).unwrap();
        (bld.build().unwrap(), Placement::from_coords(mesh, &[a, b]).unwrap())
    }

    #[test]
    fn straight_edge_loads_its_line_only() {
        let mesh = Mesh::new(3, 3).unwrap();
        let (pcn, p) = pair(2.0, Coord::new(1, 0), Coord::new(1, 2), mesh);
        let acc = congestion_map(&pcn, &p).unwrap();
        let m = acc.map();
        for y in 0..3 {
            assert_eq!(m[mesh.index_of(Coord::new(1, y))], 2.0);
        }
        for y in 0..3 {
            assert_eq!(m[mesh.index_of(Coord::new(0, y))], 0.0);
            assert_eq!(m[mesh.index_of(Coord::new(2, y))], 0.0);
        }
        let stats = acc.stats();
        assert!((stats.average - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(stats.max, 2.0);
        assert_eq!(stats.coverage, 1.0);
    }

    #[test]
    fn total_map_mass_is_weight_times_expected_hops() {
        // Summing Con over all routers equals w * E[routers traversed]
        // = w * (manhattan + 1), since staircase paths visit exactly
        // d + 1 routers.
        let mesh = Mesh::new(6, 6).unwrap();
        let (pcn, p) = pair(3.0, Coord::new(0, 0), Coord::new(4, 3), mesh);
        let acc = congestion_map(&pcn, &p).unwrap();
        let mass: f64 = acc.map().iter().sum();
        assert!((mass - 3.0 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn direction_flips_are_mirrored() {
        let mesh = Mesh::new(5, 5).unwrap();
        let (pcn_a, pa) = pair(1.0, Coord::new(0, 0), Coord::new(2, 2), mesh);
        let (pcn_b, pb) = pair(1.0, Coord::new(2, 2), Coord::new(0, 0), mesh);
        let ma = congestion_map(&pcn_a, &pa).unwrap();
        let mb = congestion_map(&pcn_b, &pb).unwrap();
        for (a, b) in ma.map().iter().zip(mb.map()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_rescales_average() {
        // Many identical edges: sampled average should be close to the
        // exact one, and coverage < 1.
        let mesh = Mesh::new(8, 8).unwrap();
        let mut b = PcnBuilder::new();
        for _ in 0..64 {
            b.add_cluster(1, 1);
        }
        for i in 0..63u32 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let pcn = b.build().unwrap();
        let coords: Vec<Coord> = mesh.iter().collect();
        let p = Placement::from_coords(mesh, &coords).unwrap();
        let exact = congestion_map(&pcn, &p).unwrap().stats();
        let sampled = congestion_map_sampled(&pcn, &p, 32, 11).unwrap().stats();
        assert!(sampled.coverage < 1.0);
        assert!(
            (sampled.average - exact.average).abs() < 0.5 * exact.average,
            "sampled {} vs exact {}",
            sampled.average,
            exact.average
        );
        assert!(sampled.max <= exact.max + 1e-12);
    }

    #[test]
    fn sampling_with_large_budget_is_exact() {
        let mesh = Mesh::new(2, 2).unwrap();
        let (pcn, p) = pair(1.0, Coord::new(0, 0), Coord::new(1, 1), mesh);
        let a = congestion_map(&pcn, &p).unwrap().stats();
        let b = congestion_map_sampled(&pcn, &p, 100, 0).unwrap().stats();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_map_stats() {
        let acc = CongestionAccumulator::new(Mesh::new(3, 3).unwrap());
        let s = acc.stats();
        assert_eq!(s.average, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.coverage, 1.0);
    }
}
