//! The `Expe` expected-traversal function (Algorithm 4, Appendix B).

use snnmap_hw::Coord;

/// Expected number of times a single spike from `s` to `t` passes through
/// coordinate `(x, y)` (Algorithm 4).
///
/// The routing model is a *random monotone staircase*: the spike only
/// moves toward the target; at every router where both coordinates still
/// differ from the target's it continues in either direction with
/// probability ½, and once one coordinate matches the target's it runs
/// straight. Source and target routers count as traversed
/// (`Expe(s) = Expe(t) = 1`).
///
/// Points outside the bounding rectangle of `s` and `t` are never
/// traversed and return `0`.
///
/// This is the per-point form, faithful to the paper's pseudocode; the
/// congestion metrics use the same dynamic program over whole rectangles
/// at once (see [`CongestionAccumulator`](crate::CongestionAccumulator)).
///
/// # Examples
///
/// ```
/// use snnmap_hw::Coord;
/// use snnmap_metrics::expe;
///
/// let s = Coord::new(0, 0);
/// let t = Coord::new(1, 1);
/// // The two corner detours are each taken with probability 1/2.
/// assert_eq!(expe(Coord::new(0, 1), s, t), 0.5);
/// assert_eq!(expe(Coord::new(1, 0), s, t), 0.5);
/// assert_eq!(expe(s, s, t), 1.0);
/// assert_eq!(expe(t, s, t), 1.0);
/// assert_eq!(expe(Coord::new(5, 5), s, t), 0.0);
/// ```
pub fn expe(p: Coord, s: Coord, t: Coord) -> f64 {
    // Normalize to a rectangle walked in +x/+y direction.
    let dx = s.x.abs_diff(t.x) as usize;
    let dy = s.y.abs_diff(t.y) as usize;
    let in_x = (p.x >= s.x.min(t.x)) && (p.x <= s.x.max(t.x));
    let in_y = (p.y >= s.y.min(t.y)) && (p.y <= s.y.max(t.y));
    if !in_x || !in_y {
        return 0.0;
    }
    // Local coordinates measured from the source.
    let i = p.x.abs_diff(s.x) as usize;
    let j = p.y.abs_diff(s.y) as usize;
    // Mixed-direction check: p must be on the source->target side in both
    // axes (abs_diff alone would accept points mirrored about s).
    let toward_x = (t.x >= s.x && p.x >= s.x) || (t.x <= s.x && p.x <= s.x);
    let toward_y = (t.y >= s.y && p.y >= s.y) || (t.y <= s.y && p.y <= s.y);
    if !toward_x || !toward_y {
        return 0.0;
    }
    let grid = expectation_grid(dx, dy);
    grid[i * (dy + 1) + j]
}

/// The full expectation grid of a normalized rectangle: entry
/// `[i·(dy+1) + j]` is the probability the staircase from `(0,0)` to
/// `(dx,dy)` visits `(i,j)`. Shared by [`expe`], the congestion
/// accumulator, and the incremental congestion objective in
/// `snnmap-core`.
///
/// Note the grid is *not* symmetric under endpoint reversal: the walk
/// runs straight once it hits the target row/column, so swapping source
/// and target redistributes the boundary mass. Callers maintaining
/// per-edge contributions must therefore respect edge direction.
pub fn expectation_grid(dx: usize, dy: usize) -> Vec<f64> {
    let cols = dy + 1;
    let mut e = vec![0.0f64; (dx + 1) * cols];
    e[0] = 1.0;
    for i in 0..=dx {
        for j in 0..=dy {
            let v = e[i * cols + j];
            if v == 0.0 {
                continue;
            }
            if i == dx && j == dy {
                continue;
            }
            if i == dx {
                // Reached the target row: run straight in y.
                e[i * cols + j + 1] += v;
            } else if j == dy {
                e[(i + 1) * cols + j] += v;
            } else {
                e[i * cols + j + 1] += v / 2.0;
                e[(i + 1) * cols + j] += v / 2.0;
            }
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_route_is_deterministic() {
        let s = Coord::new(2, 1);
        let t = Coord::new(2, 5);
        for y in 1..=5 {
            assert_eq!(expe(Coord::new(2, y), s, t), 1.0);
        }
        assert_eq!(expe(Coord::new(3, 3), s, t), 0.0);
    }

    #[test]
    fn grid_levels_conserve_probability() {
        // On every anti-diagonal strictly inside the rectangle, the visit
        // probabilities sum to 1 (the spike is somewhere on its way).
        for (dx, dy) in [(3usize, 4usize), (1, 1), (5, 2), (0, 4), (4, 0)] {
            let g = expectation_grid(dx, dy);
            let cols = dy + 1;
            for level in 0..=(dx + dy) {
                let sum: f64 = (0..=dx)
                    .filter_map(|i| {
                        let j = level.checked_sub(i)?;
                        (j <= dy).then(|| g[i * cols + j])
                    })
                    .sum();
                assert!(
                    (sum - 1.0).abs() < 1e-12,
                    "dx={dx} dy={dy} level {level}: {sum}"
                );
            }
        }
    }

    #[test]
    fn symmetric_rectangle_is_symmetric() {
        let g = expectation_grid(2, 2);
        // Transposing i and j leaves the grid unchanged.
        for i in 0..=2 {
            for j in 0..=2 {
                assert!((g[i * 3 + j] - g[j * 3 + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_four_quadrant_directions() {
        // The same rectangle walked in all four directions gives the same
        // expectation at the mirrored point.
        let cases = [
            (Coord::new(0, 0), Coord::new(2, 3)),
            (Coord::new(2, 3), Coord::new(0, 0)),
            (Coord::new(0, 3), Coord::new(2, 0)),
            (Coord::new(2, 0), Coord::new(0, 3)),
        ];
        for (s, t) in cases {
            assert_eq!(expe(s, s, t), 1.0, "{s} -> {t}");
            assert_eq!(expe(t, s, t), 1.0, "{s} -> {t}");
            // One step from the source along x.
            let step = Coord::new(if t.x > s.x { s.x + 1 } else { s.x - 1 }, s.y);
            assert_eq!(expe(step, s, t), 0.5, "{s} -> {t}");
        }
    }

    #[test]
    fn mirrored_points_outside_path_are_zero() {
        // A point on the wrong side of the source must not be counted even
        // though abs_diff coordinates would land inside the grid.
        let s = Coord::new(5, 5);
        let t = Coord::new(7, 7);
        assert_eq!(expe(Coord::new(4, 6), s, t), 0.0);
        assert_eq!(expe(Coord::new(6, 4), s, t), 0.0);
    }

    #[test]
    fn binomial_interior_values() {
        // Inside the rectangle (before hitting a boundary), visiting
        // (i, j) has probability C(i + j, i) / 2^(i+j).
        let g = expectation_grid(4, 4);
        let choose = |n: u64, k: u64| -> f64 {
            let mut v = 1.0;
            for x in 0..k {
                v = v * (n - x) as f64 / (x + 1) as f64;
            }
            v
        };
        for i in 0..4usize {
            for j in 0..4usize {
                let expect = choose((i + j) as u64, i as u64) / 2f64.powi((i + j) as i32);
                assert!(
                    (g[i * 5 + j] - expect).abs() < 1e-12,
                    "({i},{j}): {} vs {expect}",
                    g[i * 5 + j]
                );
            }
        }
    }
}
