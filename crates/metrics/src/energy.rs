//! Energy consumption `M_ec` (eq. 9).

use snnmap_hw::{CostModel, HwError, Placement};
use snnmap_model::Pcn;

/// Total energy consumed by all spikes on the interconnect (eq. 9):
///
/// `M_ec = Σ_e w(e) · ((‖P(cᵢ) − P(cⱼ)‖ + 1)·EN_r + ‖P(cᵢ) − P(cⱼ)‖·EN_w)`
///
/// A spike crossing `d` hops traverses `d + 1` routers (source and target
/// included) and `d` wires.
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if an edge endpoint
/// has no position.
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Coord, CostModel, Mesh, Placement};
/// use snnmap_model::PcnBuilder;
///
/// let mut b = PcnBuilder::new();
/// b.add_cluster(1, 1);
/// b.add_cluster(1, 1);
/// b.add_edge(0, 1, 3.0)?;
/// let pcn = b.build()?;
/// let p = Placement::from_coords(
///     Mesh::new(1, 4)?,
///     &[Coord::new(0, 0), Coord::new(0, 3)],
/// )?;
/// // Three hops at weight 3: 3 * (4*EN_r + 3*EN_w).
/// let e = snnmap_metrics::energy(&pcn, &p, CostModel::paper_target())?;
/// assert!((e - 3.0 * (4.0 + 0.3)).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn energy(pcn: &Pcn, placement: &Placement, cost: CostModel) -> Result<f64, HwError> {
    let mut total = 0.0f64;
    for c in 0..pcn.num_clusters() {
        let pc = placement.try_coord_of(c)?;
        for (t, w) in pcn.out_edges(c) {
            let pt = placement.try_coord_of(t)?;
            total += w as f64 * cost.spike_energy(pc.manhattan(pt));
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::{Coord, Mesh};
    use snnmap_model::PcnBuilder;

    fn pair_pcn(w: f32) -> Pcn {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        b.add_cluster(1, 1);
        b.add_edge(0, 1, w).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn zero_distance_costs_one_router() {
        // Adjacent placement at distance 1: 2 routers + 1 wire.
        let pcn = pair_pcn(1.0);
        let p = Placement::from_coords(
            Mesh::new(1, 2).unwrap(),
            &[Coord::new(0, 0), Coord::new(0, 1)],
        )
        .unwrap();
        let e = energy(&pcn, &p, CostModel::paper_target()).unwrap();
        assert!((e - (2.0 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn scales_linearly_in_weight() {
        let p = Placement::from_coords(
            Mesh::new(2, 2).unwrap(),
            &[Coord::new(0, 0), Coord::new(1, 1)],
        )
        .unwrap();
        let cm = CostModel::paper_target();
        let e1 = energy(&pair_pcn(1.0), &p, cm).unwrap();
        let e5 = energy(&pair_pcn(5.0), &p, cm).unwrap();
        assert!((e5 - 5.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn translation_invariant() {
        let pcn = pair_pcn(2.0);
        let mesh = Mesh::new(8, 8).unwrap();
        let cm = CostModel::paper_target();
        let a = Placement::from_coords(mesh, &[Coord::new(0, 0), Coord::new(2, 1)]).unwrap();
        let b = Placement::from_coords(mesh, &[Coord::new(4, 4), Coord::new(6, 5)]).unwrap();
        assert_eq!(energy(&pcn, &a, cm).unwrap(), energy(&pcn, &b, cm).unwrap());
    }

    #[test]
    fn unplaced_cluster_errors() {
        let pcn = pair_pcn(1.0);
        let mut p = Placement::new_unplaced(Mesh::new(2, 2).unwrap(), 2);
        p.place(0, Coord::new(0, 0)).unwrap();
        assert!(matches!(
            energy(&pcn, &p, CostModel::paper_target()),
            Err(HwError::Unplaced { cluster: 1 })
        ));
    }

    #[test]
    fn empty_edge_set_is_zero() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        let pcn = b.build().unwrap();
        let p = Placement::from_coords(Mesh::new(1, 1).unwrap(), &[Coord::new(0, 0)]).unwrap();
        assert_eq!(energy(&pcn, &p, CostModel::paper_target()).unwrap(), 0.0);
    }
}
