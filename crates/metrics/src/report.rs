//! The combined five-metric report (§3.3 / §5.1.4).

use serde::{Deserialize, Serialize};
use snnmap_hw::{CostModel, HwError, Placement};
use snnmap_model::Pcn;

use crate::congestion::{congestion_map, congestion_map_sampled};
use crate::{average_latency, energy, max_latency};

/// All five §3.3 placement-quality metrics of one placement.
///
/// # Examples
///
/// ```
/// use snnmap_metrics::MetricsReport;
///
/// let base = MetricsReport {
///     energy: 100.0,
///     avg_latency: 4.0,
///     max_latency: 10.0,
///     avg_congestion: 2.0,
///     max_congestion: 8.0,
///     congestion_coverage: 1.0,
///     max_congestion_is_lower_bound: false,
/// };
/// let better = MetricsReport { energy: 50.0, ..base };
/// let rel = better.normalized_to(&base);
/// assert_eq!(rel.energy, 0.5);
/// assert_eq!(rel.avg_latency, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Energy consumption `M_ec` (eq. 9).
    pub energy: f64,
    /// Average latency `M_al` (eq. 10).
    pub avg_latency: f64,
    /// Maximum latency `M_ml` (eq. 11).
    pub max_latency: f64,
    /// Average congestion `M_ac` (eq. 12).
    pub avg_congestion: f64,
    /// Maximum congestion `M_mc` (eq. 14).
    pub max_congestion: f64,
    /// Fraction of edge traffic evaluated for the congestion metrics
    /// (1.0 = exact; see [`EvalOptions::congestion_sample`]).
    pub congestion_coverage: f64,
    /// `true` when [`max_congestion`](Self::max_congestion) is only a
    /// lower bound on `M_mc` because congestion was edge-sampled
    /// (`congestion_coverage < 1.0`); see
    /// [`CongestionStats::max_is_lower_bound`](crate::CongestionStats).
    pub max_congestion_is_lower_bound: bool,
}

impl MetricsReport {
    /// Expresses every metric as a ratio to `baseline` (the presentation
    /// used throughout Figures 8 and 10–12, normalized to random
    /// mapping). Metrics whose baseline is zero stay as ratios of 1.
    pub fn normalized_to(&self, baseline: &MetricsReport) -> MetricsReport {
        let div = |a: f64, b: f64| if b != 0.0 { a / b } else { 1.0 };
        MetricsReport {
            energy: div(self.energy, baseline.energy),
            avg_latency: div(self.avg_latency, baseline.avg_latency),
            max_latency: div(self.max_latency, baseline.max_latency),
            avg_congestion: div(self.avg_congestion, baseline.avg_congestion),
            max_congestion: div(self.max_congestion, baseline.max_congestion),
            congestion_coverage: self.congestion_coverage.min(baseline.congestion_coverage),
            max_congestion_is_lower_bound: self.max_congestion_is_lower_bound
                || baseline.max_congestion_is_lower_bound,
        }
    }
}

/// Options for [`evaluate_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// When `Some((max_edges, seed))`, the congestion map evaluates at
    /// most `max_edges` connections (uniform sample, averages rescaled).
    /// Exact congestion is `O(Σ_e rectangle area)`, which is prohibitive
    /// for millions of long edges — the paper's random baselines on the
    /// giant benchmarks are exactly that case.
    pub congestion_sample: Option<(u64, u64)>,
}

impl Default for EvalOptions {
    /// Exact evaluation.
    fn default() -> Self {
        Self { congestion_sample: None }
    }
}

/// Computes all five metrics exactly.
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if any connected
/// cluster has no position.
pub fn evaluate(pcn: &Pcn, placement: &Placement, cost: CostModel) -> Result<MetricsReport, HwError> {
    evaluate_with(pcn, placement, cost, EvalOptions::default())
}

/// Computes all five metrics with explicit options (e.g. congestion edge
/// sampling for very large instances).
///
/// # Errors
///
/// [`HwError::Unplaced`] / [`HwError::UnknownCluster`] if any connected
/// cluster has no position.
pub fn evaluate_with(
    pcn: &Pcn,
    placement: &Placement,
    cost: CostModel,
    options: EvalOptions,
) -> Result<MetricsReport, HwError> {
    let acc = match options.congestion_sample {
        Some((max_edges, seed)) => congestion_map_sampled(pcn, placement, max_edges, seed)?,
        None => congestion_map(pcn, placement)?,
    };
    let c = acc.stats();
    Ok(MetricsReport {
        energy: energy(pcn, placement, cost)?,
        avg_latency: average_latency(pcn, placement, cost)?,
        max_latency: max_latency(pcn, placement, cost)?,
        avg_congestion: c.average,
        max_congestion: c.max,
        congestion_coverage: c.coverage,
        max_congestion_is_lower_bound: c.max_is_lower_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::{Coord, Mesh};
    use snnmap_model::PcnBuilder;

    fn setup() -> (Pcn, Placement) {
        let mut b = PcnBuilder::new();
        for _ in 0..3 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 2.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let pcn = b.build().unwrap();
        let mesh = Mesh::new(2, 2).unwrap();
        let p = Placement::from_coords(
            mesh,
            &[Coord::new(0, 0), Coord::new(0, 1), Coord::new(1, 1)],
        )
        .unwrap();
        (pcn, p)
    }

    #[test]
    fn evaluate_composes_the_five_metrics() {
        let (pcn, p) = setup();
        let cm = CostModel::paper_target();
        let r = evaluate(&pcn, &p, cm).unwrap();
        assert_eq!(r.energy, energy(&pcn, &p, cm).unwrap());
        assert_eq!(r.avg_latency, average_latency(&pcn, &p, cm).unwrap());
        assert_eq!(r.max_latency, max_latency(&pcn, &p, cm).unwrap());
        assert_eq!(r.congestion_coverage, 1.0);
        assert!(r.avg_congestion > 0.0);
        assert!(r.max_congestion >= r.avg_congestion);
    }

    #[test]
    fn normalization_to_self_is_unity() {
        let (pcn, p) = setup();
        let r = evaluate(&pcn, &p, CostModel::paper_target()).unwrap();
        let n = r.normalized_to(&r);
        for v in [n.energy, n.avg_latency, n.max_latency, n.avg_congestion, n.max_congestion] {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampled_options_set_coverage() {
        let (pcn, p) = setup();
        let r = evaluate_with(
            &pcn,
            &p,
            CostModel::paper_target(),
            EvalOptions { congestion_sample: Some((1, 42)) },
        )
        .unwrap();
        assert!(r.congestion_coverage <= 1.0);
        assert_eq!(r.max_congestion_is_lower_bound, r.congestion_coverage < 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let (pcn, p) = setup();
        let r = evaluate(&pcn, &p, CostModel::paper_target()).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
