//! Placement-quality metrics for SNN-to-hardware mappings.
//!
//! §3.3 of the paper quantifies a placement `P : V_P → S` with five
//! metrics, all implemented here:
//!
//! * [`energy`] — total interconnect energy `M_ec` (eq. 9),
//! * [`average_latency`] / [`max_latency`] — spike transmission latency
//!   `M_al` (eq. 10) and `M_ml` (eq. 11),
//! * [`congestion_map`] — per-router expected traffic `Con(x, y)`
//!   (eq. 13), built on the `Expe` dynamic program of Algorithm 4
//!   ([`expe`]), from which `M_ac` (eq. 12) and `M_mc` (eq. 14) follow,
//! * [`evaluate`] — all five at once as a [`MetricsReport`].
//!
//! # Examples
//!
//! ```
//! use snnmap_hw::{Coord, CostModel, Mesh, Placement};
//! use snnmap_model::PcnBuilder;
//! use snnmap_metrics::evaluate;
//!
//! let mut b = PcnBuilder::new();
//! b.add_cluster(10, 100);
//! b.add_cluster(10, 100);
//! b.add_edge(0, 1, 2.0)?;
//! let pcn = b.build()?;
//!
//! let mesh = Mesh::new(2, 2)?;
//! let p = Placement::from_coords(mesh, &[Coord::new(0, 0), Coord::new(1, 1)])?;
//! let report = evaluate(&pcn, &p, CostModel::paper_target())?;
//! // Two hops: 3 routers + 2 wires at weight 2.
//! assert_eq!(report.energy, 2.0 * (3.0 + 0.2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod congestion;
mod energy;
mod expe;
mod histogram;
mod latency;
mod prometheus;
mod report;

pub use congestion::{congestion_map, CongestionAccumulator, CongestionStats};
pub use energy::energy;
pub use expe::{expe, expectation_grid};
pub use histogram::hop_histogram;
pub use latency::{average_latency, max_latency};
pub use prometheus::{PromText, PROM_PREFIX};
pub use report::{evaluate, evaluate_with, EvalOptions, MetricsReport};
