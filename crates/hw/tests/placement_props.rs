//! Property tests: placements stay consistent under arbitrary operation
//! sequences.

use proptest::prelude::*;
use snnmap_hw::{Coord, Mesh, Placement};

/// An operation on a placement.
#[derive(Debug, Clone)]
enum Op {
    Place { cluster: u32, x: u16, y: u16 },
    Unplace { cluster: u32 },
    Swap { a: (u16, u16), b: (u16, u16) },
}

fn op_strategy(n_clusters: u32, side: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_clusters, 0..side, 0..side)
            .prop_map(|(cluster, x, y)| Op::Place { cluster, x, y }),
        (0..n_clusters).prop_map(|cluster| Op::Unplace { cluster }),
        ((0..side, 0..side), (0..side, 0..side)).prop_map(|(a, b)| Op::Swap { a, b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of place/unplace/swap operations — including failing
    /// ones — leaves the placement internally consistent, and successful
    /// operations have their documented effect.
    #[test]
    fn operation_sequences_preserve_consistency(
        ops in prop::collection::vec(op_strategy(20, 5), 1..120)
    ) {
        let mesh = Mesh::new(5, 5).unwrap();
        let mut p = Placement::new_unplaced(mesh, 20);
        for op in ops {
            match op {
                Op::Place { cluster, x, y } => {
                    let coord = Coord::new(x, y);
                    let was_placed = p.coord_of(cluster).is_some();
                    let occupied = p.cluster_at(coord).is_some();
                    let r = p.place(cluster, coord);
                    prop_assert_eq!(r.is_ok(), !was_placed && !occupied);
                    if r.is_ok() {
                        prop_assert_eq!(p.coord_of(cluster), Some(coord));
                    }
                }
                Op::Unplace { cluster } => {
                    let had = p.coord_of(cluster);
                    let r = p.unplace(cluster);
                    prop_assert_eq!(r.is_ok(), had.is_some());
                    if r.is_ok() {
                        prop_assert_eq!(p.coord_of(cluster), None);
                    }
                }
                Op::Swap { a, b } => {
                    let (ca, cb) = (Coord::new(a.0, a.1), Coord::new(b.0, b.1));
                    let (occ_a, occ_b) = (p.cluster_at(ca), p.cluster_at(cb));
                    p.swap_cores(ca, cb).unwrap();
                    prop_assert_eq!(p.cluster_at(ca), occ_b);
                    prop_assert_eq!(p.cluster_at(cb), occ_a);
                }
            }
            p.check_consistency().map_err(TestCaseError::fail)?;
        }
    }

    /// `from_coords` accepts exactly the injective in-bounds coordinate
    /// lists.
    #[test]
    fn from_coords_injective(coords in prop::collection::vec((0u16..6, 0u16..6), 0..36)) {
        let mesh = Mesh::new(6, 6).unwrap();
        let coords: Vec<Coord> = coords.into_iter().map(|(x, y)| Coord::new(x, y)).collect();
        let mut sorted: Vec<_> = coords.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let unique = sorted.len() == coords.len();
        let r = Placement::from_coords(mesh, &coords);
        prop_assert_eq!(r.is_ok(), unique);
        if let Ok(p) = r {
            p.check_consistency().map_err(TestCaseError::fail)?;
            prop_assert!(p.is_complete());
        }
    }

    /// Manhattan distance is a metric on mesh coordinates.
    #[test]
    fn manhattan_is_a_metric(
        a in (0u16..100, 0u16..100),
        b in (0u16..100, 0u16..100),
        c in (0u16..100, 0u16..100),
    ) {
        let (a, b, c) = (
            Coord::new(a.0, a.1),
            Coord::new(b.0, b.1),
            Coord::new(c.0, c.1),
        );
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        prop_assert_eq!(a.manhattan(b) == 0, a == b);
    }

    /// Mesh linear indexing is a bijection.
    #[test]
    fn mesh_indexing_bijection(rows in 1u16..80, cols in 1u16..80) {
        let mesh = Mesh::new(rows, cols).unwrap();
        for (i, c) in mesh.iter().enumerate() {
            prop_assert_eq!(mesh.index_of(c), i);
            prop_assert_eq!(mesh.coord_of_index(i), c);
        }
    }
}
