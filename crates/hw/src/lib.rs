//! Hardware model for 2D-mesh neuromorphic systems.
//!
//! This crate implements §3.1 of *Mapping Very Large Scale Spiking Neuron
//! Network to Neuromorphic Hardware* (ASPLOS '23): a many-core system made
//! of homogeneous neurosynaptic cores connected by routers in a 2D mesh.
//!
//! The main types are:
//!
//! * [`Mesh`] — the core grid `S = {(x, y) | 0 ≤ x < N, 0 ≤ y < M}` (eq. 1),
//! * [`Coord`] — a core/router coordinate with Manhattan-distance helpers,
//! * [`CoreConstraints`] — the per-core capacity limits `CON_npc`/`CON_spc`,
//! * [`CostModel`] — the interconnect energy/latency constants
//!   `EN_r`, `EN_w`, `L_r`, `L_w` (Table 2),
//! * [`Placement`] — an injective map from cluster indices to cores,
//! * [`FaultMap`] / [`FaultInjector`] — defective cores, mesh links, and
//!   whole chips, plus seeded deterministic fault generation,
//! * [`Board`] — a multi-chip topology: the mesh tiled into chips with
//!   per-core capacity vectors and expensive inter-chip links,
//! * [`presets`] — the platforms of Table 1 and the paper's target hardware.
//!
//! # Examples
//!
//! ```
//! use snnmap_hw::{Mesh, Coord, Placement};
//!
//! // A 4x4 chip with 5 clusters placed along the first row and a bit more.
//! let mesh = Mesh::new(4, 4)?;
//! let mut p = Placement::new_unplaced(mesh, 5);
//! for c in 0..5u32 {
//!     p.place(c, Coord::new(c as u16 / 4, c as u16 % 4))?;
//! }
//! assert_eq!(p.coord_of(4), Some(Coord::new(1, 0)));
//! assert_eq!(p.cluster_at(Coord::new(0, 2)), Some(2));
//! # Ok::<(), snnmap_hw::HwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod board;
mod constraints;
mod error;
mod fault;
mod mesh;
mod placement;
pub mod presets;

pub use board::{Board, ChipId};
pub use constraints::{CoreConstraints, CostModel};
pub use error::HwError;
pub use fault::{FaultDelta, FaultInjector, FaultMap, FaultPattern, Link};
pub use mesh::{Coord, CoordIter, Mesh};
pub use placement::Placement;

/// Identifier of a partitioned cluster: an index into the node list of a
/// Partitioned Cluster Network.
///
/// Kept as a plain `u32` so that the hardware layer stays independent of the
/// application-model crate; 2³² clusters is far beyond the 1 M-core scale the
/// paper targets.
pub type ClusterId = u32;
