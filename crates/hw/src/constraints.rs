//! Per-core capacity constraints and the interconnect cost model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::HwError;

/// Per-core capacity limits, `CON_npc` and `CON_spc` in §3.1 of the paper.
///
/// `CON_npc` is the maximum number of neurons a core can simulate and
/// `CON_spc` the maximum number of synapses whose weights a core can store.
/// The partitioner (Algorithm 1) packs neurons into clusters subject to
/// both limits.
///
/// # Examples
///
/// ```
/// use snnmap_hw::CoreConstraints;
///
/// let con = CoreConstraints::new(4096, 64 * 1024)?;
/// assert!(con.admits(4096, 65536));
/// assert!(!con.admits(4097, 10));
/// # Ok::<(), snnmap_hw::HwError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreConstraints {
    /// Maximum neurons per core (`CON_npc`).
    pub neurons_per_core: u32,
    /// Maximum synapses per core (`CON_spc`).
    pub synapses_per_core: u64,
}

impl CoreConstraints {
    /// Creates a constraint set.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::ZeroCapacity`] if either limit is zero: a core
    /// that can hold nothing makes every SNN unmappable and is always a
    /// configuration bug.
    pub fn new(neurons_per_core: u32, synapses_per_core: u64) -> Result<Self, HwError> {
        if neurons_per_core == 0 || synapses_per_core == 0 {
            return Err(HwError::ZeroCapacity { neurons_per_core, synapses_per_core });
        }
        Ok(Self { neurons_per_core, synapses_per_core })
    }

    /// Whether a cluster with `neurons` neurons and `synapses` stored
    /// synapses fits on one core.
    #[inline]
    pub fn admits(&self, neurons: u32, synapses: u64) -> bool {
        neurons <= self.neurons_per_core && synapses <= self.synapses_per_core
    }
}

impl Default for CoreConstraints {
    /// The paper's target hardware (Table 2): 4096 neurons and 64 K synapses
    /// per core.
    fn default() -> Self {
        Self { neurons_per_core: 4096, synapses_per_core: 64 * 1024 }
    }
}

impl fmt::Display for CoreConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} neurons/core, {} synapses/core",
            self.neurons_per_core, self.synapses_per_core
        )
    }
}

/// Interconnect energy and latency constants of the target hardware
/// (Table 2 of the paper).
///
/// * `en_r` — energy for a router to route one spike message (`EN_r`),
/// * `en_w` — energy for one spike traversing an inter-router wire (`EN_w`),
/// * `l_r` — router traversal delay (`L_r`),
/// * `l_w` — wire traversal delay (`L_w`).
///
/// A spike travelling `h` hops traverses `h + 1` routers and `h` wires, so
/// its energy is `(h + 1)·EN_r + h·EN_w` and its latency `(h + 1)·L_r + h·L_w`
/// (eqs. 9–11).
///
/// # Examples
///
/// ```
/// use snnmap_hw::CostModel;
///
/// let cm = CostModel::paper_target();
/// assert_eq!(cm.spike_energy(0), 1.0);    // same-core: one router, no wire
/// assert_eq!(cm.spike_energy(3), 4.3);    // 4 routers + 3 wires
/// assert_eq!(cm.spike_latency(3), 4.03);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Router energy per spike (`EN_r`).
    pub en_r: f64,
    /// Wire energy per spike per hop (`EN_w`).
    pub en_w: f64,
    /// Router delay per spike (`L_r`).
    pub l_r: f64,
    /// Wire delay per spike per hop (`L_w`).
    pub l_w: f64,
}

impl CostModel {
    /// Creates a cost model from the four constants.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidCostModel`] if any constant is negative
    /// or non-finite.
    pub fn new(en_r: f64, en_w: f64, l_r: f64, l_w: f64) -> Result<Self, HwError> {
        for (name, v) in [("EN_r", en_r), ("EN_w", en_w), ("L_r", l_r), ("L_w", l_w)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(HwError::InvalidCostModel {
                    message: format!("{name} must be finite and nonnegative, got {v}"),
                });
            }
        }
        Ok(Self { en_r, en_w, l_r, l_w })
    }

    /// The paper's target hardware constants (Table 2):
    /// `EN_r = 1`, `EN_w = 0.1`, `L_r = 1`, `L_w = 0.01`.
    pub fn paper_target() -> Self {
        Self { en_r: 1.0, en_w: 0.1, l_r: 1.0, l_w: 0.01 }
    }

    /// Energy of one spike travelling `hops` mesh hops:
    /// `(hops + 1)·EN_r + hops·EN_w`.
    #[inline]
    pub fn spike_energy(&self, hops: u32) -> f64 {
        (hops as f64 + 1.0) * self.en_r + hops as f64 * self.en_w
    }

    /// Latency of one spike travelling `hops` mesh hops:
    /// `(hops + 1)·L_r + hops·L_w`.
    #[inline]
    pub fn spike_latency(&self, hops: u32) -> f64 {
        (hops as f64 + 1.0) * self.l_r + hops as f64 * self.l_w
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_target()
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EN_r={}, EN_w={}, L_r={}, L_w={}",
            self.en_r, self.en_w, self.l_r, self.l_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_admit_boundary() {
        let con = CoreConstraints::new(10, 100).unwrap();
        assert!(con.admits(10, 100));
        assert!(con.admits(0, 0));
        assert!(!con.admits(11, 100));
        assert!(!con.admits(10, 101));
    }

    #[test]
    fn constraints_reject_zero() {
        assert!(matches!(
            CoreConstraints::new(0, 100),
            Err(HwError::ZeroCapacity { neurons_per_core: 0, synapses_per_core: 100 })
        ));
        assert!(matches!(
            CoreConstraints::new(100, 0),
            Err(HwError::ZeroCapacity { neurons_per_core: 100, synapses_per_core: 0 })
        ));
    }

    #[test]
    fn default_constraints_match_table2() {
        let con = CoreConstraints::default();
        assert_eq!(con.neurons_per_core, 4096);
        assert_eq!(con.synapses_per_core, 65536);
    }

    #[test]
    fn cost_model_matches_paper_formulas() {
        let cm = CostModel::paper_target();
        // h hops: (h+1)*1 + h*0.1 energy; (h+1)*1 + h*0.01 latency.
        for h in 0..100u32 {
            let e = cm.spike_energy(h);
            let l = cm.spike_latency(h);
            assert!((e - ((h as f64 + 1.0) + 0.1 * h as f64)).abs() < 1e-12);
            assert!((l - ((h as f64 + 1.0) + 0.01 * h as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn cost_model_rejects_bad_constants() {
        for (en_r, en_w) in [(f64::NAN, 0.1), (f64::INFINITY, 0.1), (1.0, -0.1)] {
            assert!(matches!(
                CostModel::new(en_r, en_w, 1.0, 0.01),
                Err(HwError::InvalidCostModel { .. })
            ));
        }
        assert!(CostModel::new(0.0, 0.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn displays() {
        let con = CoreConstraints::new(4, 5).unwrap();
        assert_eq!(con.to_string(), "4 neurons/core, 5 synapses/core");
        assert!(CostModel::paper_target().to_string().contains("EN_r=1"));
    }
}
