//! Capacity presets for published neuromorphic platforms (Table 1 of the
//! paper) and the abstract target hardware the paper evaluates on (Table 2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CoreConstraints, CostModel};

/// The capacity profile of a published neuromorphic platform, one row of
/// Table 1.
///
/// # Examples
///
/// ```
/// use snnmap_hw::presets;
///
/// let spin = presets::spinnaker();
/// assert_eq!(spin.max_system_neurons(), 1_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Neurons each core can simulate.
    pub neurons_per_core: u32,
    /// Synapses each core can store.
    pub synapses_per_core: u64,
    /// Cores on one chip.
    pub cores_per_chip: u32,
    /// Chips in the largest published system.
    pub chips_per_system: u64,
    /// Neuron capacity of the high-performance system, as reported in
    /// Table 1 (the table rounds, so this is stored rather than derived).
    pub system_neurons: u64,
    /// Synapse capacity of the high-performance system, as reported in
    /// Table 1.
    pub system_synapses: u64,
}

impl PlatformSpec {
    /// Total cores in the largest published system.
    pub fn max_system_cores(&self) -> u64 {
        self.cores_per_chip as u64 * self.chips_per_system
    }

    /// Neuron capacity of the largest published system (Table 1,
    /// "High-performance system" block).
    pub fn max_system_neurons(&self) -> u64 {
        self.system_neurons
    }

    /// Synapse capacity of the largest published system.
    pub fn max_system_synapses(&self) -> u64 {
        self.system_synapses
    }

    /// Per-core constraints for partitioning against this platform.
    pub fn core_constraints(&self) -> CoreConstraints {
        CoreConstraints::new(self.neurons_per_core, self.synapses_per_core)
    }
}

impl fmt::Display for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} neurons/core x {} cores/chip x {} chips",
            self.name, self.neurons_per_core, self.cores_per_chip, self.chips_per_system
        )
    }
}

/// DYNAPs (Moradi et al. 2017): 256 neurons/core, 16 K synapses/core,
/// 1 core/chip, 4-chip system.
pub fn dynaps() -> PlatformSpec {
    PlatformSpec {
        name: "DYNAPs",
        neurons_per_core: 256,
        synapses_per_core: 16 * 1024,
        cores_per_chip: 1,
        chips_per_system: 4,
        system_neurons: 1_000,
        system_synapses: 65_000,
    }
}

/// BrainScaleS (Schemmel 2021): 512 neurons/core, 128 K synapses/core,
/// 1 core/chip, 8192-chip wafer-scale system.
pub fn brainscales() -> PlatformSpec {
    PlatformSpec {
        name: "BrainScaleS",
        neurons_per_core: 512,
        synapses_per_core: 128 * 1024,
        cores_per_chip: 1,
        chips_per_system: 8192,
        system_neurons: 4_000_000,
        system_synapses: 1_000_000_000,
    }
}

/// Loihi (Davies et al. 2018): 128 neurons/core, 500 K synapses/core,
/// 1024 cores/chip (the paper's Table 1 figure), 768-chip system.
pub fn loihi() -> PlatformSpec {
    PlatformSpec {
        name: "Loihi",
        neurons_per_core: 128,
        synapses_per_core: 500_000,
        cores_per_chip: 1024,
        chips_per_system: 768,
        system_neurons: 100_000_000,
        system_synapses: 100_000_000_000,
    }
}

/// SpiNNaker (Furber et al. 2014): 1000 neurons/core, 2 K synapses/core
/// stored locally, 18 cores/chip, million-chip system.
pub fn spinnaker() -> PlatformSpec {
    PlatformSpec {
        name: "SpiNNaker",
        neurons_per_core: 1000,
        synapses_per_core: 2 * 1024,
        cores_per_chip: 18,
        chips_per_system: 1_000_000,
        system_neurons: 1_000_000_000,
        system_synapses: 200_000_000_000,
    }
}

/// TrueNorth (DeBole et al. 2019): 256 neurons/core, 262 K synapses/core,
/// 4096 cores/chip, 64-chip system.
pub fn truenorth() -> PlatformSpec {
    PlatformSpec {
        name: "TrueNorth",
        neurons_per_core: 256,
        synapses_per_core: 262_144,
        cores_per_chip: 4096,
        chips_per_system: 64,
        system_neurons: 64_000_000,
        system_synapses: 1_000_000_000_000,
    }
}

/// All five Table 1 platforms, in column order.
pub fn all_platforms() -> Vec<PlatformSpec> {
    vec![dynaps(), brainscales(), loihi(), spinnaker(), truenorth()]
}

/// The abstract target hardware the paper evaluates on (Table 2):
/// `CON_npc = 4096`, `CON_spc = 64 K`, `EN_r = 1`, `EN_w = 0.1`,
/// `L_r = 1`, `L_w = 0.01`.
pub fn paper_target() -> (CoreConstraints, CostModel) {
    (CoreConstraints::new(4096, 64 * 1024), CostModel::paper_target())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_values() {
        let p = truenorth();
        assert_eq!(p.neurons_per_core, 256);
        assert_eq!(p.synapses_per_core, 262_144);
        assert_eq!(p.max_system_cores(), 4096 * 64);
        assert_eq!(p.max_system_neurons(), 64_000_000);
    }

    #[test]
    fn spinnaker_is_billion_neuron_machine() {
        assert_eq!(spinnaker().max_system_neurons(), 1_000_000_000);
        assert_eq!(spinnaker().max_system_cores(), 18_000_000);
    }

    #[test]
    fn all_platforms_have_distinct_names() {
        let all = all_platforms();
        assert_eq!(all.len(), 5);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn paper_target_matches_table2() {
        let (con, cost) = paper_target();
        assert_eq!(con.neurons_per_core, 4096);
        assert_eq!(con.synapses_per_core, 65536);
        assert_eq!(cost.en_r, 1.0);
        assert_eq!(cost.en_w, 0.1);
        assert_eq!(cost.l_r, 1.0);
        assert_eq!(cost.l_w, 0.01);
    }

    #[test]
    fn constraints_derived_from_spec() {
        let c = loihi().core_constraints();
        assert_eq!(c.neurons_per_core, 128);
        assert_eq!(c.synapses_per_core, 500_000);
    }
}
