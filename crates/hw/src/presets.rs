//! Capacity presets for published neuromorphic platforms (Table 1 of the
//! paper) and the abstract target hardware the paper evaluates on (Table 2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::board::near_square_grid;
use crate::{Board, CoreConstraints, CostModel, HwError};

/// The capacity profile of a published neuromorphic platform, one row of
/// Table 1.
///
/// # Examples
///
/// ```
/// use snnmap_hw::presets;
///
/// let spin = presets::spinnaker();
/// assert_eq!(spin.max_system_neurons(), 1_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Neurons each core can simulate.
    pub neurons_per_core: u32,
    /// Synapses each core can store.
    pub synapses_per_core: u64,
    /// Cores on one chip.
    pub cores_per_chip: u32,
    /// Chips in the largest published system.
    pub chips_per_system: u64,
    /// Neuron capacity of the high-performance system, as reported in
    /// Table 1 (the table rounds, so this is stored rather than derived).
    pub system_neurons: u64,
    /// Synapse capacity of the high-performance system, as reported in
    /// Table 1.
    pub system_synapses: u64,
}

impl PlatformSpec {
    /// Total cores in the largest published system.
    pub fn max_system_cores(&self) -> u64 {
        self.cores_per_chip as u64 * self.chips_per_system
    }

    /// Neuron capacity of the largest published system (Table 1,
    /// "High-performance system" block).
    pub fn max_system_neurons(&self) -> u64 {
        self.system_neurons
    }

    /// Synapse capacity of the largest published system.
    pub fn max_system_synapses(&self) -> u64 {
        self.system_synapses
    }

    /// Per-core constraints for partitioning against this platform.
    ///
    /// Constructed as a literal: every Table 1 row has nonzero limits, so
    /// this cannot fail for the built-in presets.
    pub fn core_constraints(&self) -> CoreConstraints {
        CoreConstraints {
            neurons_per_core: self.neurons_per_core,
            synapses_per_core: self.synapses_per_core,
        }
    }

    /// The core block modelling one chip of this platform: the smallest
    /// near-square `R × C` grid with `R · C ≥ cores_per_chip` (Table 1
    /// reports a count, not a layout; e.g. SpiNNaker's 18 cores become a
    /// 5 × 4 block).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] when `cores_per_chip` is zero.
    pub fn chip_dims(&self) -> Result<(u16, u16), HwError> {
        near_square_grid(self.cores_per_chip as u64)
    }

    /// Builds a [`Board`] of `grid_rows × grid_cols` chips of this
    /// platform, each chip a [`PlatformSpec::chip_dims`] core block with
    /// this platform's per-core constraints.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] for a degenerate grid or a mesh that
    /// overflows the `u16` side limit; [`HwError::ZeroCapacity`] if the
    /// spec carries zero per-core limits.
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_hw::presets;
    ///
    /// // 2x2 Loihi chips: each chip is 1024 cores = a 32x32 block.
    /// let board = presets::loihi().board(2, 2)?;
    /// assert_eq!(board.mesh().len(), 4 * 1024);
    /// assert_eq!(board.num_chips(), 4);
    /// # Ok::<(), snnmap_hw::HwError>(())
    /// ```
    pub fn board(&self, grid_rows: u16, grid_cols: u16) -> Result<Board, HwError> {
        let (cr, cc) = self.chip_dims()?;
        let con = CoreConstraints::new(self.neurons_per_core, self.synapses_per_core)?;
        Board::uniform(grid_rows, grid_cols, cr, cc, con)
    }

    /// The board of the largest published system of this platform
    /// (`chips_per_system` chips in a near-square grid).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] when the full system overflows the
    /// `u16` mesh side limit.
    pub fn system_board(&self) -> Result<Board, HwError> {
        let (g, h) = near_square_grid(self.chips_per_system)?;
        self.board(g, h)
    }
}

impl fmt::Display for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} neurons/core x {} cores/chip x {} chips",
            self.name, self.neurons_per_core, self.cores_per_chip, self.chips_per_system
        )
    }
}

/// DYNAPs (Moradi et al. 2017): 256 neurons/core, 16 K synapses/core,
/// 1 core/chip, 4-chip system.
pub fn dynaps() -> PlatformSpec {
    PlatformSpec {
        name: "DYNAPs",
        neurons_per_core: 256,
        synapses_per_core: 16 * 1024,
        cores_per_chip: 1,
        chips_per_system: 4,
        system_neurons: 1_000,
        system_synapses: 65_000,
    }
}

/// BrainScaleS (Schemmel 2021): 512 neurons/core, 128 K synapses/core,
/// 1 core/chip, 8192-chip wafer-scale system.
pub fn brainscales() -> PlatformSpec {
    PlatformSpec {
        name: "BrainScaleS",
        neurons_per_core: 512,
        synapses_per_core: 128 * 1024,
        cores_per_chip: 1,
        chips_per_system: 8192,
        system_neurons: 4_000_000,
        system_synapses: 1_000_000_000,
    }
}

/// Loihi (Davies et al. 2018): 128 neurons/core, 500 K synapses/core,
/// 1024 cores/chip (the paper's Table 1 figure), 768-chip system.
pub fn loihi() -> PlatformSpec {
    PlatformSpec {
        name: "Loihi",
        neurons_per_core: 128,
        synapses_per_core: 500_000,
        cores_per_chip: 1024,
        chips_per_system: 768,
        system_neurons: 100_000_000,
        system_synapses: 100_000_000_000,
    }
}

/// SpiNNaker (Furber et al. 2014): 1000 neurons/core, 2 K synapses/core
/// stored locally, 18 cores/chip, million-chip system.
pub fn spinnaker() -> PlatformSpec {
    PlatformSpec {
        name: "SpiNNaker",
        neurons_per_core: 1000,
        synapses_per_core: 2 * 1024,
        cores_per_chip: 18,
        chips_per_system: 1_000_000,
        system_neurons: 1_000_000_000,
        system_synapses: 200_000_000_000,
    }
}

/// TrueNorth (DeBole et al. 2019): 256 neurons/core, 262 K synapses/core,
/// 4096 cores/chip, 64-chip system.
pub fn truenorth() -> PlatformSpec {
    PlatformSpec {
        name: "TrueNorth",
        neurons_per_core: 256,
        synapses_per_core: 262_144,
        cores_per_chip: 4096,
        chips_per_system: 64,
        system_neurons: 64_000_000,
        system_synapses: 1_000_000_000_000,
    }
}

/// All five Table 1 platforms, in column order.
pub fn all_platforms() -> Vec<PlatformSpec> {
    vec![dynaps(), brainscales(), loihi(), spinnaker(), truenorth()]
}

/// Looks a platform up by name, case-insensitively.
///
/// # Examples
///
/// ```
/// use snnmap_hw::presets;
///
/// assert_eq!(presets::find("TrueNorth"), Some(presets::truenorth()));
/// assert_eq!(presets::find("truenorth"), Some(presets::truenorth()));
/// assert_eq!(presets::find("hal9000"), None);
/// ```
pub fn find(name: &str) -> Option<PlatformSpec> {
    all_platforms().into_iter().find(|p| p.name.eq_ignore_ascii_case(name.trim()))
}

/// The abstract target hardware the paper evaluates on (Table 2):
/// `CON_npc = 4096`, `CON_spc = 64 K`, `EN_r = 1`, `EN_w = 0.1`,
/// `L_r = 1`, `L_w = 0.01`.
pub fn paper_target() -> (CoreConstraints, CostModel) {
    (CoreConstraints::default(), CostModel::paper_target())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_values() {
        let p = truenorth();
        assert_eq!(p.neurons_per_core, 256);
        assert_eq!(p.synapses_per_core, 262_144);
        assert_eq!(p.max_system_cores(), 4096 * 64);
        assert_eq!(p.max_system_neurons(), 64_000_000);
    }

    #[test]
    fn spinnaker_is_billion_neuron_machine() {
        assert_eq!(spinnaker().max_system_neurons(), 1_000_000_000);
        assert_eq!(spinnaker().max_system_cores(), 18_000_000);
    }

    #[test]
    fn all_platforms_have_distinct_names() {
        let all = all_platforms();
        assert_eq!(all.len(), 5);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn paper_target_matches_table2() {
        let (con, cost) = paper_target();
        assert_eq!(con.neurons_per_core, 4096);
        assert_eq!(con.synapses_per_core, 65536);
        assert_eq!(cost.en_r, 1.0);
        assert_eq!(cost.en_w, 0.1);
        assert_eq!(cost.l_r, 1.0);
        assert_eq!(cost.l_w, 0.01);
    }

    #[test]
    fn constraints_derived_from_spec() {
        let c = loihi().core_constraints();
        assert_eq!(c.neurons_per_core, 128);
        assert_eq!(c.synapses_per_core, 500_000);
    }

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("LOIHI"), Some(loihi()));
        assert_eq!(find(" spinnaker "), Some(spinnaker()));
        assert_eq!(find("loihi2"), None);
    }

    #[test]
    fn chip_dims_cover_cores_per_chip() {
        for p in all_platforms() {
            let (r, c) = p.chip_dims().unwrap();
            let cores = r as u64 * c as u64;
            assert!(cores >= p.cores_per_chip as u64, "{}: {r}x{c}", p.name);
            // Never more than one extra row's worth of over-provisioning.
            assert!(cores - (p.cores_per_chip as u64) < r as u64, "{}: {r}x{c}", p.name);
        }
        assert_eq!(spinnaker().chip_dims().unwrap(), (5, 4));
        assert_eq!(truenorth().chip_dims().unwrap(), (64, 64));
        assert_eq!(dynaps().chip_dims().unwrap(), (1, 1));
    }

    #[test]
    fn preset_boards_carry_table1_capacities() {
        let b = truenorth().board(2, 3).unwrap();
        assert_eq!(b.num_chips(), 6);
        assert_eq!(b.mesh().len(), 6 * 4096);
        let con = b.constraints_at(crate::Coord::new(0, 0));
        assert_eq!(con.neurons_per_core, 256);
        assert_eq!(con.synapses_per_core, 262_144);
        // DYNAPs' full published system is 4 one-core chips.
        let full = dynaps().system_board().unwrap();
        assert_eq!(full.num_chips(), 4);
        assert_eq!(full.mesh().len(), 4);
        // SpiNNaker's million-chip system overflows no u16 but is huge.
        let spin = spinnaker().system_board().unwrap();
        assert_eq!(spin.num_chips(), 1_000_000);
    }
}
