//! Multi-chip board topology: a mesh of cores tiled into chips.
//!
//! Real systems from Table 1 of the paper are boards of chips — SpiNNaker
//! has 18 cores per chip and a million chips, TrueNorth 4096 cores per
//! chip across 64 chips. A [`Board`] overlays that structure onto the
//! flat [`Mesh`] the mapper already understands: the mesh is partitioned
//! into a `grid_rows × grid_cols` grid of chips, each chip a
//! `chip_rows × chip_cols` block of cores. Links whose endpoints lie on
//! different chips are *inter-chip* links — slower and more expensive
//! than the on-chip mesh, which the NoC router penalizes and the FD
//! engine's cost metrics can observe through [`Board::is_interchip`].
//!
//! Each core carries its own [`CoreConstraints`] capacity vector
//! (uniform by default, per-core overridable), which the placement
//! pipeline enforces: HSC init skips cores a cluster does not fit on and
//! the FD candidate filter rejects moves that would exceed a budget.
//!
//! Determinism: a `Board` is plain data — chip ids, core iteration
//! order, and capacity lookups are pure functions of the topology, so
//! every consumer inherits the repo-wide bit-determinism guarantee.

use std::fmt;

use crate::{Coord, CoreConstraints, HwError, Mesh};

/// Identifier of a chip on a board: its row-major index in the chip grid.
pub type ChipId = u32;

/// A multi-chip board: a [`Mesh`] tiled into a grid of chips with
/// per-core capacity constraints.
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Board, Coord, CoreConstraints};
///
/// // A 2x2 grid of 4x4-core chips: an 8x8 mesh of 4 chips.
/// let board = Board::uniform(2, 2, 4, 4, CoreConstraints::new(64, 1024)?)?;
/// assert_eq!(board.num_chips(), 4);
/// assert_eq!(board.mesh().len(), 64);
/// assert_eq!(board.chip_of(Coord::new(5, 2)), 2);
/// assert!(board.is_interchip(Coord::new(3, 0), Coord::new(4, 0)));
/// assert!(!board.is_interchip(Coord::new(2, 0), Coord::new(3, 0)));
/// # Ok::<(), snnmap_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Board {
    mesh: Mesh,
    grid_rows: u16,
    grid_cols: u16,
    chip_rows: u16,
    chip_cols: u16,
    /// Capacity of every core without an override.
    uniform: CoreConstraints,
    /// Per-core overrides in row-major mesh order; empty means every core
    /// uses `uniform` (the common case — kept empty so million-core
    /// boards cost no per-core storage).
    overrides: Vec<CoreConstraints>,
}

impl Board {
    /// Creates a board of `grid_rows × grid_cols` chips, each a
    /// `chip_rows × chip_cols` block of cores, every core carrying the
    /// same capacity `constraints`.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] when any dimension is zero or the
    /// implied mesh side exceeds `u16::MAX`.
    pub fn uniform(
        grid_rows: u16,
        grid_cols: u16,
        chip_rows: u16,
        chip_cols: u16,
        constraints: CoreConstraints,
    ) -> Result<Self, HwError> {
        if grid_rows == 0 || grid_cols == 0 {
            return Err(HwError::InvalidBoard {
                message: format!("chip grid must be nonzero, got {grid_rows}x{grid_cols}"),
            });
        }
        if chip_rows == 0 || chip_cols == 0 {
            return Err(HwError::InvalidBoard {
                message: format!("chip core block must be nonzero, got {chip_rows}x{chip_cols}"),
            });
        }
        let rows = grid_rows as u32 * chip_rows as u32;
        let cols = grid_cols as u32 * chip_cols as u32;
        if rows > u16::MAX as u32 || cols > u16::MAX as u32 {
            return Err(HwError::InvalidBoard {
                message: format!(
                    "board mesh {rows}x{cols} exceeds the u16 mesh side limit \
                     ({grid_rows}x{grid_cols} chips of {chip_rows}x{chip_cols} cores)"
                ),
            });
        }
        let mesh = Mesh::new(rows as u16, cols as u16).map_err(|e| HwError::InvalidBoard {
            message: format!("board mesh rejected: {e}"),
        })?;
        Ok(Self {
            mesh,
            grid_rows,
            grid_cols,
            chip_rows,
            chip_cols,
            uniform: constraints,
            overrides: Vec::new(),
        })
    }

    /// Parses a board spec string. Four forms are accepted:
    ///
    /// * `NAME` — a Table 1 platform preset at full published system
    ///   scale, e.g. `truenorth` (64 chips of 64×64 cores),
    /// * `NAME:GxH` — a preset chip scaled to an explicit `G × H` chip
    ///   grid, e.g. `loihi:2x2`,
    /// * `GxH/RxC` — a custom grid of `G × H` chips of `R × C` cores
    ///   with the default (Table 2) per-core constraints,
    /// * `GxH/RxC@NPC,SPC` — the same with explicit neurons/synapses
    ///   per-core limits, e.g. `2x2/16x16@256,65536`.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] for unknown presets or malformed specs,
    /// [`HwError::ZeroCapacity`] for zero capacity limits.
    pub fn parse(spec: &str) -> Result<Self, HwError> {
        let bad = |message: String| HwError::InvalidBoard { message };
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(bad("empty board spec".into()));
        }
        if let Some((dims, caps)) = spec.split_once('@') {
            let (grid, chip) = split_grid_chip(dims)?;
            let (npc, spc) = caps
                .split_once(',')
                .ok_or_else(|| bad(format!("expected `@NPC,SPC`, got `@{caps}`")))?;
            let npc: u32 =
                npc.trim().parse().map_err(|_| bad(format!("bad neurons/core `{npc}`")))?;
            let spc: u64 =
                spc.trim().parse().map_err(|_| bad(format!("bad synapses/core `{spc}`")))?;
            let con = CoreConstraints::new(npc, spc)?;
            return Board::uniform(grid.0, grid.1, chip.0, chip.1, con);
        }
        if spec.contains('/') {
            let (grid, chip) = split_grid_chip(spec)?;
            return Board::uniform(grid.0, grid.1, chip.0, chip.1, CoreConstraints::default());
        }
        if let Some((name, grid)) = spec.split_once(':') {
            let preset = crate::presets::find(name)
                .ok_or_else(|| bad(format!("unknown platform preset `{name}`")))?;
            let (g, h) = parse_dims(grid)?;
            return preset.board(g, h);
        }
        let preset = crate::presets::find(spec)
            .ok_or_else(|| bad(format!("unknown platform preset `{spec}`")))?;
        let (g, h) = near_square_grid(preset.chips_per_system)?;
        preset.board(g, h)
    }

    /// The underlying core mesh.
    #[inline]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Chip grid rows.
    #[inline]
    pub fn grid_rows(&self) -> u16 {
        self.grid_rows
    }

    /// Chip grid columns.
    #[inline]
    pub fn grid_cols(&self) -> u16 {
        self.grid_cols
    }

    /// Core rows per chip.
    #[inline]
    pub fn chip_rows(&self) -> u16 {
        self.chip_rows
    }

    /// Core columns per chip.
    #[inline]
    pub fn chip_cols(&self) -> u16 {
        self.chip_cols
    }

    /// Number of chips on the board.
    #[inline]
    pub fn num_chips(&self) -> u32 {
        self.grid_rows as u32 * self.grid_cols as u32
    }

    /// Cores per chip.
    #[inline]
    pub fn cores_per_chip(&self) -> usize {
        self.chip_rows as usize * self.chip_cols as usize
    }

    /// The chip a core belongs to (row-major chip-grid index).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `c` is outside the mesh.
    #[inline]
    pub fn chip_of(&self, c: Coord) -> ChipId {
        debug_assert!(self.mesh.contains(c), "coordinate {c} outside {}", self.mesh);
        let cx = (c.x / self.chip_rows) as u32;
        let cy = (c.y / self.chip_cols) as u32;
        cx * self.grid_cols as u32 + cy
    }

    /// The chip of the core at row-major mesh index `idx`
    /// (see [`Mesh::coord_of_index`]).
    #[inline]
    pub fn chip_of_index(&self, idx: usize) -> ChipId {
        self.chip_of(self.mesh.coord_of_index(idx))
    }

    /// The top-left core of a chip.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] when `chip` is outside the grid.
    pub fn chip_origin(&self, chip: ChipId) -> Result<Coord, HwError> {
        if chip >= self.num_chips() {
            return Err(HwError::InvalidBoard {
                message: format!("chip {chip} outside {}-chip board", self.num_chips()),
            });
        }
        let cx = (chip / self.grid_cols as u32) as u16;
        let cy = (chip % self.grid_cols as u32) as u16;
        Ok(Coord::new(cx * self.chip_rows, cy * self.chip_cols))
    }

    /// Iterates the cores of a chip in row-major order.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] when `chip` is outside the grid.
    pub fn cores_of(&self, chip: ChipId) -> Result<impl Iterator<Item = Coord> + '_, HwError> {
        let origin = self.chip_origin(chip)?;
        let (cr, cc) = (self.chip_rows, self.chip_cols);
        Ok((0..cr).flat_map(move |dx| {
            (0..cc).map(move |dy| Coord::new(origin.x + dx, origin.y + dy))
        }))
    }

    /// The capacity constraints of one core.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `c` is outside the mesh.
    #[inline]
    pub fn constraints_at(&self, c: Coord) -> CoreConstraints {
        if self.overrides.is_empty() {
            self.uniform
        } else {
            self.overrides[self.mesh.index_of(c)]
        }
    }

    /// Overrides the capacity of one core (making the board
    /// heterogeneous).
    ///
    /// # Errors
    ///
    /// [`HwError::OutOfBounds`] when `c` is outside the mesh.
    pub fn set_constraints(&mut self, c: Coord, con: CoreConstraints) -> Result<(), HwError> {
        if !self.mesh.contains(c) {
            return Err(HwError::OutOfBounds { coord: c });
        }
        if self.overrides.is_empty() {
            self.overrides = vec![self.uniform; self.mesh.len()];
        }
        self.overrides[self.mesh.index_of(c)] = con;
        Ok(())
    }

    /// Whether a cluster of `neurons` neurons and `synapses` synapses
    /// fits on the core at `c`.
    #[inline]
    pub fn admits(&self, c: Coord, neurons: u32, synapses: u64) -> bool {
        self.constraints_at(c).admits(neurons, synapses)
    }

    /// Whether the link (or route segment) between two cores crosses a
    /// chip boundary. Order-insensitive; the cores need not be adjacent.
    #[inline]
    pub fn is_interchip(&self, a: Coord, b: Coord) -> bool {
        self.chip_of(a) != self.chip_of(b)
    }

    /// Total neuron and synapse capacity of one chip.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidBoard`] when `chip` is outside the grid.
    pub fn chip_capacity(&self, chip: ChipId) -> Result<(u64, u64), HwError> {
        if self.overrides.is_empty() {
            self.chip_origin(chip)?;
            let cores = self.cores_per_chip() as u64;
            return Ok((
                cores * self.uniform.neurons_per_core as u64,
                cores.saturating_mul(self.uniform.synapses_per_core),
            ));
        }
        let mut neurons = 0u64;
        let mut synapses = 0u64;
        for c in self.cores_of(chip)? {
            let con = self.constraints_at(c);
            neurons += con.neurons_per_core as u64;
            synapses = synapses.saturating_add(con.synapses_per_core);
        }
        Ok((neurons, synapses))
    }

    /// Per-core capacity tables in row-major mesh order:
    /// `(neuron_limits, synapse_limits)`. The FD engine's hot path indexes
    /// these flat tables instead of calling [`Board::constraints_at`] per
    /// candidate.
    #[must_use]
    pub fn capacity_tables(&self) -> (Vec<u32>, Vec<u64>) {
        let n = self.mesh.len();
        if self.overrides.is_empty() {
            (vec![self.uniform.neurons_per_core; n], vec![self.uniform.synapses_per_core; n])
        } else {
            (
                self.overrides.iter().map(|c| c.neurons_per_core).collect(),
                self.overrides.iter().map(|c| c.synapses_per_core).collect(),
            )
        }
    }

    /// Row-major chip-id table: `table[mesh.index_of(c)] == chip_of(c)`.
    #[must_use]
    pub fn chip_table(&self) -> Vec<ChipId> {
        (0..self.mesh.len()).map(|i| self.chip_of_index(i)).collect()
    }

    /// The capacity every core carries unless individually overridden.
    #[inline]
    pub fn uniform_constraints(&self) -> CoreConstraints {
        self.uniform
    }

    /// Cores whose capacity differs from the uniform default, in
    /// row-major mesh order (empty on homogeneous boards).
    pub fn overridden_cores(&self) -> impl Iterator<Item = (Coord, CoreConstraints)> + '_ {
        self.overrides
            .iter()
            .enumerate()
            .filter(move |(_, con)| **con != self.uniform)
            .map(move |(i, con)| (self.mesh.coord_of_index(i), *con))
    }
}

impl fmt::Display for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} chips of {}x{} cores ({})",
            self.grid_rows, self.grid_cols, self.chip_rows, self.chip_cols, self.mesh
        )
    }
}

/// Parses `GxH` into `(G, H)`.
fn parse_dims(s: &str) -> Result<(u16, u16), HwError> {
    let bad = || HwError::InvalidBoard { message: format!("expected `GxH`, got `{s}`") };
    let (a, b) = s.split_once(['x', 'X']).ok_or_else(bad)?;
    let a: u16 = a.trim().parse().map_err(|_| bad())?;
    let b: u16 = b.trim().parse().map_err(|_| bad())?;
    Ok((a, b))
}

/// Chip-grid dims and core-block dims, as parsed from `GxH/RxC`.
type GridChipDims = ((u16, u16), (u16, u16));

/// Parses `GxH/RxC` into chip-grid and core-block dims.
fn split_grid_chip(s: &str) -> Result<GridChipDims, HwError> {
    let (grid, chip) = s.split_once('/').ok_or_else(|| HwError::InvalidBoard {
        message: format!("expected `GxH/RxC`, got `{s}`"),
    })?;
    Ok((parse_dims(grid)?, parse_dims(chip)?))
}

/// The smallest near-square grid holding at least `n` items:
/// `rows = ceil(sqrt(n))`, `cols = ceil(n / rows)`.
pub(crate) fn near_square_grid(n: u64) -> Result<(u16, u16), HwError> {
    if n == 0 {
        return Err(HwError::InvalidBoard { message: "cannot grid zero items".into() });
    }
    let mut rows = ((n as f64).sqrt().floor() as u64).max(1);
    while rows.checked_mul(rows).is_some_and(|sq| sq < n) {
        rows += 1;
    }
    let cols = n.div_ceil(rows);
    let rows = u16::try_from(rows)
        .map_err(|_| HwError::InvalidBoard { message: format!("grid for {n} items overflows") })?;
    let cols = u16::try_from(cols)
        .map_err(|_| HwError::InvalidBoard { message: format!("grid for {n} items overflows") })?;
    Ok((rows, cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn con(n: u32, s: u64) -> CoreConstraints {
        CoreConstraints::new(n, s).unwrap()
    }

    fn board2x2() -> Board {
        Board::uniform(2, 2, 4, 4, con(64, 1024)).unwrap()
    }

    #[test]
    fn uniform_board_dimensions() {
        let b = board2x2();
        assert_eq!(b.mesh(), Mesh::new(8, 8).unwrap());
        assert_eq!(b.num_chips(), 4);
        assert_eq!(b.cores_per_chip(), 16);
        assert_eq!(b.to_string(), "2x2 chips of 4x4 cores (8x8 mesh)");
    }

    #[test]
    fn chip_ids_are_row_major_over_the_grid() {
        let b = board2x2();
        assert_eq!(b.chip_of(Coord::new(0, 0)), 0);
        assert_eq!(b.chip_of(Coord::new(0, 4)), 1);
        assert_eq!(b.chip_of(Coord::new(4, 0)), 2);
        assert_eq!(b.chip_of(Coord::new(7, 7)), 3);
        assert_eq!(b.chip_origin(2).unwrap(), Coord::new(4, 0));
        assert!(b.chip_origin(4).is_err());
        // Every core of chip k maps back to chip k.
        for chip in 0..b.num_chips() {
            let cores: Vec<Coord> = b.cores_of(chip).unwrap().collect();
            assert_eq!(cores.len(), b.cores_per_chip());
            assert!(cores.iter().all(|&c| b.chip_of(c) == chip));
        }
    }

    #[test]
    fn interchip_detection() {
        let b = board2x2();
        assert!(b.is_interchip(Coord::new(3, 0), Coord::new(4, 0)));
        assert!(b.is_interchip(Coord::new(0, 3), Coord::new(0, 4)));
        assert!(!b.is_interchip(Coord::new(0, 0), Coord::new(3, 3)));
        assert!(b.is_interchip(Coord::new(0, 0), Coord::new(7, 7)));
    }

    #[test]
    fn capacity_overrides() {
        let mut b = board2x2();
        assert!(b.admits(Coord::new(1, 1), 64, 1024));
        assert!(!b.admits(Coord::new(1, 1), 65, 0));
        b.set_constraints(Coord::new(1, 1), con(8, 8)).unwrap();
        assert!(!b.admits(Coord::new(1, 1), 64, 1024));
        assert!(b.admits(Coord::new(1, 2), 64, 1024));
        assert!(b.set_constraints(Coord::new(9, 9), con(1, 1)).is_err());
        let (cap_n, cap_s) = b.capacity_tables();
        assert_eq!(cap_n[Mesh::new(8, 8).unwrap().index_of(Coord::new(1, 1))], 8);
        assert_eq!(cap_s[0], 1024);
        // Chip 0 lost 56 neurons of capacity to the override.
        assert_eq!(b.chip_capacity(0).unwrap().0, 15 * 64 + 8);
        assert_eq!(b.chip_capacity(3).unwrap(), (16 * 64, 16 * 1024));
    }

    #[test]
    fn chip_table_matches_chip_of() {
        let b = Board::uniform(2, 3, 3, 2, con(4, 4)).unwrap();
        let table = b.chip_table();
        for (i, &chip) in table.iter().enumerate() {
            assert_eq!(chip, b.chip_of(b.mesh().coord_of_index(i)));
        }
        assert_eq!(table.iter().copied().max(), Some(b.num_chips() - 1));
    }

    #[test]
    fn degenerate_boards_are_rejected() {
        assert!(matches!(
            Board::uniform(0, 2, 4, 4, con(1, 1)),
            Err(HwError::InvalidBoard { .. })
        ));
        assert!(matches!(
            Board::uniform(2, 2, 0, 4, con(1, 1)),
            Err(HwError::InvalidBoard { .. })
        ));
        // 300 * 300 > u16::MAX mesh side.
        assert!(matches!(
            Board::uniform(300, 1, 300, 1, con(1, 1)),
            Err(HwError::InvalidBoard { .. })
        ));
    }

    #[test]
    fn parse_custom_specs() {
        let b = Board::parse("2x2/4x4@64,1024").unwrap();
        assert_eq!(b, board2x2());
        let d = Board::parse("3x1/2x5").unwrap();
        assert_eq!(d.mesh(), Mesh::new(6, 5).unwrap());
        assert_eq!(d.constraints_at(Coord::new(0, 0)), CoreConstraints::default());
        for bad in ["", "2x2", "2x2/4x4@64", "2x2/0x4", "ax2/4x4", "2x2/4x4@0,5"] {
            assert!(Board::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn parse_presets() {
        // TrueNorth chips are 4096 cores -> 64x64 blocks.
        let tn = Board::parse("truenorth:2x2").unwrap();
        assert_eq!(tn.mesh(), Mesh::new(128, 128).unwrap());
        assert_eq!(tn.constraints_at(Coord::new(0, 0)).neurons_per_core, 256);
        // Bare preset = full published system: 64 TrueNorth chips -> 8x8 grid.
        let full = Board::parse("TrueNorth").unwrap();
        assert_eq!(full.num_chips(), 64);
        assert_eq!(full.mesh(), Mesh::new(512, 512).unwrap());
        assert!(Board::parse("nocortex:2x2").is_err());
        assert!(Board::parse("nocortex").is_err());
    }

    #[test]
    fn near_square_grids() {
        assert_eq!(near_square_grid(1).unwrap(), (1, 1));
        assert_eq!(near_square_grid(4).unwrap(), (2, 2));
        assert_eq!(near_square_grid(18).unwrap(), (5, 4));
        assert_eq!(near_square_grid(768).unwrap(), (28, 28));
        assert!(near_square_grid(0).is_err());
        assert!(near_square_grid(u64::MAX).is_err());
    }
}
