//! Error type for hardware-model operations.

use std::error::Error;
use std::fmt;

use crate::{ClusterId, Coord};

/// Errors produced by the hardware-model layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A mesh dimension was zero.
    EmptyMesh {
        /// Requested row count.
        rows: u16,
        /// Requested column count.
        cols: u16,
    },
    /// A requested core count needs a mesh side larger than `u16::MAX`.
    MeshTooLarge {
        /// Requested number of cores.
        cores: u64,
    },
    /// A coordinate lies outside the mesh.
    OutOfBounds {
        /// The offending coordinate.
        coord: Coord,
    },
    /// Attempted to place a cluster on an occupied core.
    CoreOccupied {
        /// The contested coordinate.
        coord: Coord,
        /// The cluster already sitting there.
        occupant: ClusterId,
    },
    /// Attempted to place a cluster that is already placed.
    AlreadyPlaced {
        /// The offending cluster.
        cluster: ClusterId,
    },
    /// An operation referenced a cluster id outside the placement.
    UnknownCluster {
        /// The offending cluster id.
        cluster: ClusterId,
        /// Number of clusters the placement was created with.
        len: u32,
    },
    /// An operation required a placed cluster but it has no position yet.
    Unplaced {
        /// The offending cluster id.
        cluster: ClusterId,
    },
    /// The mesh has fewer cores than there are clusters to place.
    InsufficientCapacity {
        /// Number of clusters to place.
        clusters: u64,
        /// Number of cores available.
        cores: u64,
    },
    /// Attempted to place (or move) a cluster onto a core marked dead by
    /// the fault map.
    FaultyCore {
        /// The dead core's coordinate.
        coord: Coord,
    },
    /// A link operation referenced two cores that are not mesh neighbours.
    NotAdjacent {
        /// First endpoint.
        a: Coord,
        /// Second endpoint.
        b: Coord,
    },
    /// A fault specification was malformed (bad rate, mesh mismatch, …).
    InvalidFaultSpec {
        /// What was wrong.
        message: String,
    },
    /// A per-core capacity limit was zero: a core that can hold nothing
    /// makes every SNN unmappable and is always a configuration bug.
    ZeroCapacity {
        /// Requested `CON_npc`.
        neurons_per_core: u32,
        /// Requested `CON_spc`.
        synapses_per_core: u64,
    },
    /// A cost-model constant was negative or non-finite.
    InvalidCostModel {
        /// What was wrong.
        message: String,
    },
    /// A board topology or board spec string was malformed (zero chip
    /// grid, mesh overflow, unknown preset, …).
    InvalidBoard {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::EmptyMesh { rows, cols } => {
                write!(f, "mesh dimensions must be nonzero, got {rows}x{cols}")
            }
            HwError::MeshTooLarge { cores } => {
                write!(f, "no u16-sided square mesh holds {cores} cores")
            }
            HwError::OutOfBounds { coord } => write!(f, "coordinate {coord} outside the mesh"),
            HwError::CoreOccupied { coord, occupant } => {
                write!(f, "core {coord} already holds cluster {occupant}")
            }
            HwError::AlreadyPlaced { cluster } => {
                write!(f, "cluster {cluster} is already placed")
            }
            HwError::UnknownCluster { cluster, len } => {
                write!(f, "cluster id {cluster} outside placement of {len} clusters")
            }
            HwError::Unplaced { cluster } => write!(f, "cluster {cluster} has no position"),
            HwError::InsufficientCapacity { clusters, cores } => {
                write!(f, "{clusters} clusters cannot fit on {cores} cores")
            }
            HwError::FaultyCore { coord } => {
                write!(f, "core {coord} is marked dead by the fault map")
            }
            HwError::NotAdjacent { a, b } => {
                write!(f, "cores {a} and {b} are not mesh neighbours")
            }
            HwError::InvalidFaultSpec { message } => {
                write!(f, "invalid fault specification: {message}")
            }
            HwError::ZeroCapacity { neurons_per_core, synapses_per_core } => {
                write!(
                    f,
                    "per-core capacities must be nonzero, got {neurons_per_core} \
                     neurons/core and {synapses_per_core} synapses/core"
                )
            }
            HwError::InvalidCostModel { message } => {
                write!(f, "invalid cost model: {message}")
            }
            HwError::InvalidBoard { message } => {
                write!(f, "invalid board: {message}")
            }
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            HwError::EmptyMesh { rows: 0, cols: 3 },
            HwError::MeshTooLarge { cores: u64::MAX },
            HwError::OutOfBounds { coord: Coord::new(9, 9) },
            HwError::CoreOccupied { coord: Coord::new(1, 1), occupant: 7 },
            HwError::AlreadyPlaced { cluster: 3 },
            HwError::UnknownCluster { cluster: 10, len: 5 },
            HwError::Unplaced { cluster: 2 },
            HwError::InsufficientCapacity { clusters: 10, cores: 9 },
            HwError::FaultyCore { coord: Coord::new(2, 2) },
            HwError::NotAdjacent { a: Coord::new(0, 0), b: Coord::new(2, 2) },
            HwError::InvalidFaultSpec { message: "rate out of range".into() },
            HwError::ZeroCapacity { neurons_per_core: 0, synapses_per_core: 64 },
            HwError::InvalidCostModel { message: "EN_r must be finite, got NaN".into() },
            HwError::InvalidBoard { message: "chip grid must be nonzero".into() },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<HwError>();
    }
}
