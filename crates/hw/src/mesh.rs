//! The 2D-mesh core grid and its coordinates.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::HwError;

/// A coordinate `(x, y)` of a core (and its bound router) in the mesh.
///
/// Following §3.1 of the paper, `x` is the row index (`0 ≤ x < N`) and `y`
/// the column index (`0 ≤ y < M`); the top-left core is `(0, 0)` and the
/// bottom-right core is `(N − 1, M − 1)`.
///
/// `u16` components bound the mesh to 65 536 × 65 536 cores — four billion
/// cores, three orders of magnitude beyond the paper's largest system —
/// while keeping a `Coord` at four bytes so that million-core placements
/// stay compact.
///
/// # Examples
///
/// ```
/// use snnmap_hw::Coord;
///
/// let a = Coord::new(1, 2);
/// let b = Coord::new(4, 0);
/// assert_eq!(a.manhattan(b), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Coord {
    /// Row index (`0 ≤ x < N`).
    pub x: u16,
    /// Column index (`0 ≤ y < M`).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from row `x` and column `y`.
    #[inline]
    pub const fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// The Manhattan (L1) distance `‖a − b‖₁` between two cores — the hop
    /// count of a minimal route in the mesh, used throughout the paper's
    /// cost metrics (eqs. 9–11).
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Whether two cores are mesh neighbours (Manhattan distance exactly 1).
    #[inline]
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }
}

impl From<(u16, u16)> for Coord {
    #[inline]
    fn from((x, y): (u16, u16)) -> Self {
        Coord::new(x, y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// The rectangular mesh of cores, `S = {(x, y) ∈ ℕ² | 0 ≤ x < N, 0 ≤ y < M}`
/// (eq. 1 of the paper).
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Mesh, Coord};
///
/// let mesh = Mesh::new(3, 5)?;
/// assert_eq!(mesh.len(), 15);
/// assert!(mesh.contains(Coord::new(2, 4)));
/// assert!(!mesh.contains(Coord::new(3, 0)));
/// # Ok::<(), snnmap_hw::HwError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    rows: u16,
    cols: u16,
}

impl Mesh {
    /// Creates an `N × M` mesh with `rows = N` and `cols = M`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EmptyMesh`] if either dimension is zero.
    pub fn new(rows: u16, cols: u16) -> Result<Self, HwError> {
        if rows == 0 || cols == 0 {
            return Err(HwError::EmptyMesh { rows, cols });
        }
        Ok(Self { rows, cols })
    }

    /// Creates the smallest square mesh with at least `min_cores` cores.
    ///
    /// This mirrors the paper's Table 3 where each application targets the
    /// smallest square system that fits its cluster count (e.g. 251 clusters
    /// on a 16 × 16 system).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EmptyMesh`] when `min_cores` is zero, and
    /// [`HwError::MeshTooLarge`] when the required side exceeds `u16::MAX`.
    pub fn square_for(min_cores: u64) -> Result<Self, HwError> {
        if min_cores == 0 {
            return Err(HwError::EmptyMesh { rows: 0, cols: 0 });
        }
        let mut side = (min_cores as f64).sqrt().floor() as u64;
        while side <= u16::MAX as u64 && side * side < min_cores {
            side += 1;
        }
        let side = u16::try_from(side).map_err(|_| HwError::MeshTooLarge { cores: min_cores })?;
        if (side as u64) * (side as u64) < min_cores {
            return Err(HwError::MeshTooLarge { cores: min_cores });
        }
        Mesh::new(side, side)
    }

    /// Number of rows `N`.
    #[inline]
    pub const fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns `M`.
    #[inline]
    pub const fn cols(&self) -> u16 {
        self.cols
    }

    /// Total number of cores `N × M`.
    #[inline]
    pub const fn len(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Whether the mesh has no cores. Always `false`: [`Mesh::new`] rejects
    /// empty meshes, so this exists only to pair with [`Mesh::len`].
    #[inline]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Whether `c` lies inside the mesh.
    #[inline]
    pub const fn contains(&self, c: Coord) -> bool {
        c.x < self.rows && c.y < self.cols
    }

    /// Row-major linear index of a coordinate: `x · M + y`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `c` is outside the mesh.
    #[inline]
    pub fn index_of(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c), "coordinate {c} outside {self}");
        c.x as usize * self.cols as usize + c.y as usize
    }

    /// Inverse of [`Mesh::index_of`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx ≥ len()`.
    #[inline]
    pub fn coord_of_index(&self, idx: usize) -> Coord {
        debug_assert!(idx < self.len(), "index {idx} outside {self}");
        Coord::new((idx / self.cols as usize) as u16, (idx % self.cols as usize) as u16)
    }

    /// The up-to-four mesh neighbours of `c` (bidirectional links, §3.1).
    pub fn neighbors(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        let candidates = [
            (c.x.checked_sub(1), Some(c.y)),
            (c.x.checked_add(1), Some(c.y)),
            (Some(c.x), c.y.checked_sub(1)),
            (Some(c.x), c.y.checked_add(1)),
        ];
        candidates.into_iter().filter_map(move |(x, y)| match (x, y) {
            (Some(x), Some(y)) if self.contains(Coord::new(x, y)) => Some(Coord::new(x, y)),
            _ => None,
        })
    }

    /// Iterates all coordinates in row-major order.
    pub fn iter(&self) -> CoordIter {
        CoordIter { mesh: *self, next: 0 }
    }

    /// The full coordinate table in index order:
    /// `table[self.index_of(c)] == c` for every in-mesh `c`.
    ///
    /// Hot loops (the Force-Directed engine visits every edge of every
    /// affected cluster per sweep) use this flat table to replace the
    /// div/mod of [`Mesh::coord_of_index`] with an indexed load.
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_hw::Mesh;
    ///
    /// let mesh = Mesh::new(3, 5)?;
    /// let table = mesh.coord_table();
    /// assert_eq!(table.len(), mesh.len());
    /// assert!(table.iter().enumerate().all(|(i, &c)| mesh.index_of(c) == i));
    /// # Ok::<(), snnmap_hw::HwError>(())
    /// ```
    #[must_use]
    pub fn coord_table(&self) -> Vec<Coord> {
        self.iter().collect()
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.rows, self.cols)
    }
}

impl IntoIterator for Mesh {
    type Item = Coord;
    type IntoIter = CoordIter;

    fn into_iter(self) -> CoordIter {
        self.iter()
    }
}

impl IntoIterator for &Mesh {
    type Item = Coord;
    type IntoIter = CoordIter;

    fn into_iter(self) -> CoordIter {
        self.iter()
    }
}

/// Row-major iterator over all coordinates of a [`Mesh`],
/// produced by [`Mesh::iter`].
#[derive(Debug, Clone)]
pub struct CoordIter {
    mesh: Mesh,
    next: usize,
}

impl Iterator for CoordIter {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        if self.next >= self.mesh.len() {
            return None;
        }
        let c = self.mesh.coord_of_index(self.next);
        self.next += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.mesh.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CoordIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_matches_hand_computed() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(0, 0)), 0);
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 1).manhattan(Coord::new(2, 9)), 11);
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Coord::new(7, 3);
        let b = Coord::new(1, 10);
        assert_eq!(a.manhattan(b), b.manhattan(a));
    }

    #[test]
    fn adjacency() {
        let c = Coord::new(2, 2);
        assert!(c.is_adjacent(Coord::new(1, 2)));
        assert!(c.is_adjacent(Coord::new(2, 3)));
        assert!(!c.is_adjacent(c));
        assert!(!c.is_adjacent(Coord::new(3, 3)));
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(Mesh::new(0, 4), Err(HwError::EmptyMesh { .. })));
        assert!(matches!(Mesh::new(4, 0), Err(HwError::EmptyMesh { .. })));
    }

    #[test]
    fn square_for_matches_table3_sizes() {
        // Table 3: 16 clusters -> 4x4, 251 -> 16x16, 6956 -> 84x84,
        // 1_048_576 -> 1024x1024.
        assert_eq!(Mesh::square_for(16).unwrap(), Mesh::new(4, 4).unwrap());
        assert_eq!(Mesh::square_for(251).unwrap(), Mesh::new(16, 16).unwrap());
        assert_eq!(Mesh::square_for(6956).unwrap(), Mesh::new(84, 84).unwrap());
        assert_eq!(Mesh::square_for(1 << 20).unwrap(), Mesh::new(1024, 1024).unwrap());
    }

    #[test]
    fn square_for_rejects_degenerate() {
        assert!(Mesh::square_for(0).is_err());
        assert!(Mesh::square_for(u64::MAX).is_err());
    }

    #[test]
    fn index_roundtrip() {
        let mesh = Mesh::new(3, 5).unwrap();
        for (i, c) in mesh.iter().enumerate() {
            assert_eq!(mesh.index_of(c), i);
            assert_eq!(mesh.coord_of_index(i), c);
        }
    }

    #[test]
    fn iter_covers_all_cores_in_row_major_order() {
        let mesh = Mesh::new(2, 3).unwrap();
        let coords: Vec<_> = mesh.iter().collect();
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(0, 1),
                Coord::new(0, 2),
                Coord::new(1, 0),
                Coord::new(1, 1),
                Coord::new(1, 2),
            ]
        );
        assert_eq!(mesh.iter().len(), 6);
    }

    #[test]
    fn neighbors_at_corner_edge_interior() {
        let mesh = Mesh::new(3, 3).unwrap();
        let corner: Vec<_> = mesh.neighbors(Coord::new(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let edge: Vec<_> = mesh.neighbors(Coord::new(0, 1)).collect();
        assert_eq!(edge.len(), 3);
        let interior: Vec<_> = mesh.neighbors(Coord::new(1, 1)).collect();
        assert_eq!(interior.len(), 4);
        for n in interior {
            assert!(n.is_adjacent(Coord::new(1, 1)));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Coord::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Mesh::new(4, 8).unwrap().to_string(), "4x8 mesh");
    }
}
