//! The hardware fault model: dead cores and faulty mesh links.
//!
//! Real neuromorphic chips ship with manufacturing defects and develop
//! in-field faults; a mapper that assumes a pristine mesh produces
//! placements a defective chip cannot load. [`FaultMap`] records which
//! cores and links are unusable, and [`FaultInjector`] generates seeded,
//! reproducible fault maps for evaluation ([`FaultPattern::Uniform`]
//! random defects, [`FaultPattern::Clustered`] regional damage, or an
//! [`FaultPattern::Explicit`] list from a chip's test report).
//!
//! Determinism guarantees: a `FaultMap` iterates its dead cores in
//! row-major mesh order and its faulty links in canonical sorted order,
//! and [`FaultInjector::inject`] is a pure function of `(seed, mesh,
//! pattern)` — the same inputs always produce an identical map.

use std::collections::BTreeSet;
use std::fmt;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::board::{Board, ChipId};
use crate::{Coord, HwError, Mesh};

/// A canonical undirected mesh link: the two endpoints in sorted order.
///
/// Links are bidirectional (§3.1), so `(a, b)` and `(b, a)` name the same
/// wire; the canonical form keys the smaller coordinate first.
pub type Link = (Coord, Coord);

#[inline]
fn canonical_link(a: Coord, b: Coord) -> Link {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Which cores and links of a mesh are defective.
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Coord, FaultMap, Mesh};
///
/// let mesh = Mesh::new(4, 4)?;
/// let mut faults = FaultMap::new(mesh);
/// faults.kill_core(Coord::new(1, 1))?;
/// faults.fail_link(Coord::new(0, 0), Coord::new(0, 1))?;
/// assert!(faults.is_dead(Coord::new(1, 1)));
/// assert!(!faults.link_ok(Coord::new(0, 1), Coord::new(0, 0)));
/// assert_eq!(faults.healthy_cores(), 15);
/// # Ok::<(), snnmap_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    mesh: Mesh,
    /// Mesh linear index → dead flag.
    dead: Vec<bool>,
    n_dead: u32,
    /// Faulty links in canonical (sorted-endpoint) form.
    links: BTreeSet<Link>,
}

impl FaultMap {
    /// A fully healthy mesh.
    pub fn new(mesh: Mesh) -> Self {
        Self { mesh, dead: vec![false; mesh.len()], n_dead: 0, links: BTreeSet::new() }
    }

    /// Builds a map from explicit dead-core and faulty-link lists
    /// (duplicates are collapsed).
    ///
    /// # Errors
    ///
    /// [`HwError::OutOfBounds`] for a coordinate outside the mesh,
    /// [`HwError::NotAdjacent`] for a link between non-neighbours.
    pub fn from_parts(mesh: Mesh, dead_cores: &[Coord], links: &[Link]) -> Result<Self, HwError> {
        let mut map = Self::new(mesh);
        for &c in dead_cores {
            map.kill_core(c)?;
        }
        for &(a, b) in links {
            map.fail_link(a, b)?;
        }
        Ok(map)
    }

    /// The mesh this fault map describes.
    #[inline]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Marks a core dead. Idempotent.
    ///
    /// # Errors
    ///
    /// [`HwError::OutOfBounds`] for a coordinate outside the mesh.
    pub fn kill_core(&mut self, coord: Coord) -> Result<(), HwError> {
        if !self.mesh.contains(coord) {
            return Err(HwError::OutOfBounds { coord });
        }
        let idx = self.mesh.index_of(coord);
        if !self.dead[idx] {
            self.dead[idx] = true;
            self.n_dead += 1;
        }
        Ok(())
    }

    /// Marks the link between two neighbouring cores faulty. Idempotent;
    /// endpoint order is irrelevant.
    ///
    /// # Errors
    ///
    /// [`HwError::OutOfBounds`] or [`HwError::NotAdjacent`].
    pub fn fail_link(&mut self, a: Coord, b: Coord) -> Result<(), HwError> {
        for c in [a, b] {
            if !self.mesh.contains(c) {
                return Err(HwError::OutOfBounds { coord: c });
            }
        }
        if !a.is_adjacent(b) {
            return Err(HwError::NotAdjacent { a, b });
        }
        self.links.insert(canonical_link(a, b));
        Ok(())
    }

    /// Whether a core is dead. Out-of-mesh coordinates read as dead: they
    /// are equally unusable for placement.
    #[inline]
    pub fn is_dead(&self, coord: Coord) -> bool {
        !self.mesh.contains(coord) || self.dead[self.mesh.index_of(coord)]
    }

    /// Whether the link between two neighbouring cores is healthy (either
    /// endpoint order). Non-adjacent or out-of-mesh pairs read as broken.
    #[inline]
    pub fn link_ok(&self, a: Coord, b: Coord) -> bool {
        self.mesh.contains(a)
            && self.mesh.contains(b)
            && a.is_adjacent(b)
            && !self.links.contains(&canonical_link(a, b))
    }

    /// Number of dead cores.
    #[inline]
    pub fn num_dead_cores(&self) -> u32 {
        self.n_dead
    }

    /// Number of faulty links.
    #[inline]
    pub fn num_faulty_links(&self) -> usize {
        self.links.len()
    }

    /// Number of usable (non-dead) cores.
    #[inline]
    pub fn healthy_cores(&self) -> usize {
        self.mesh.len() - self.n_dead as usize
    }

    /// Whether the map records no faults at all.
    #[inline]
    pub fn is_healthy(&self) -> bool {
        self.n_dead == 0 && self.links.is_empty()
    }

    /// Iterates dead cores in row-major mesh order (deterministic).
    pub fn dead_cores(&self) -> impl Iterator<Item = Coord> + '_ {
        self.mesh.iter().filter(|&c| self.dead[self.mesh.index_of(c)])
    }

    /// Iterates faulty links in canonical sorted order (deterministic).
    pub fn faulty_links(&self) -> impl Iterator<Item = Link> + '_ {
        self.links.iter().copied()
    }

    /// Iterates healthy cores in row-major mesh order.
    pub fn healthy_iter(&self) -> impl Iterator<Item = Coord> + '_ {
        self.mesh.iter().filter(|&c| !self.dead[self.mesh.index_of(c)])
    }

    /// Marks every core of one chip dead — whole-chip loss (a failed
    /// power domain, an unseated module, a chip-level ECC fault).
    /// Idempotent per core; returns how many cores *newly* died, so a
    /// second kill of the same chip returns 0.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidFaultSpec`] when the board describes a different
    /// mesh than this fault map, or the chip id is outside the board.
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_hw::{Board, CoreConstraints, FaultMap};
    ///
    /// let board = Board::uniform(2, 2, 4, 4, CoreConstraints::new(64, 1024)?)?;
    /// let mut faults = FaultMap::new(board.mesh());
    /// assert_eq!(faults.kill_chip(&board, 3)?, 16);
    /// assert_eq!(faults.kill_chip(&board, 3)?, 0);
    /// assert!(faults.is_chip_dead(&board, 3));
    /// assert_eq!(faults.dead_chips(&board), vec![3]);
    /// # Ok::<(), snnmap_hw::HwError>(())
    /// ```
    pub fn kill_chip(&mut self, board: &Board, chip: ChipId) -> Result<u32, HwError> {
        if board.mesh() != self.mesh {
            return Err(HwError::InvalidFaultSpec {
                message: format!(
                    "board covers {} but fault map describes {}",
                    board.mesh(),
                    self.mesh
                ),
            });
        }
        if chip >= board.num_chips() {
            return Err(HwError::InvalidFaultSpec {
                message: format!("chip {chip} outside {}-chip board", board.num_chips()),
            });
        }
        let before = self.n_dead;
        for c in board.cores_of(chip).expect("chip id checked above") {
            self.kill_core(c)?;
        }
        Ok(self.n_dead - before)
    }

    /// Whether *every* core of a chip is dead. Out-of-board chips read as
    /// dead: they are equally unusable.
    pub fn is_chip_dead(&self, board: &Board, chip: ChipId) -> bool {
        if board.mesh() != self.mesh || chip >= board.num_chips() {
            return true;
        }
        board.cores_of(chip).map_or(true, |mut cores| cores.all(|c| self.is_dead(c)))
    }

    /// The chips whose cores are all dead, in ascending chip-id order
    /// (deterministic). Empty when the board mesh does not match.
    pub fn dead_chips(&self, board: &Board) -> Vec<ChipId> {
        if board.mesh() != self.mesh {
            return Vec::new();
        }
        (0..board.num_chips()).filter(|&chip| self.is_chip_dead(board, chip)).collect()
    }

    /// The faults present in `self` but not in `earlier`: what broke since
    /// the older map was taken. Dead cores come out in row-major mesh
    /// order and links in canonical sorted order (deterministic). Faults
    /// that *healed* (present in `earlier` only) are ignored — hardware
    /// does not un-break, and a conservative repair must not trust it to.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidFaultSpec`] when the two maps describe different
    /// meshes.
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_hw::{Coord, FaultMap, Mesh};
    ///
    /// let mesh = Mesh::new(4, 4)?;
    /// let before = FaultMap::new(mesh);
    /// let mut after = before.clone();
    /// after.kill_core(Coord::new(2, 1))?;
    /// let delta = after.diff(&before)?;
    /// assert_eq!(delta.new_dead_cores, vec![Coord::new(2, 1)]);
    /// assert!(delta.new_failed_links.is_empty());
    /// # Ok::<(), snnmap_hw::HwError>(())
    /// ```
    pub fn diff(&self, earlier: &FaultMap) -> Result<FaultDelta, HwError> {
        if self.mesh != earlier.mesh {
            return Err(HwError::InvalidFaultSpec {
                message: format!(
                    "cannot diff fault maps of different meshes: {} vs {}",
                    self.mesh, earlier.mesh
                ),
            });
        }
        let new_dead_cores =
            self.dead_cores().filter(|&c| !earlier.dead[earlier.mesh.index_of(c)]).collect();
        let new_failed_links =
            self.links.iter().filter(|l| !earlier.links.contains(l)).copied().collect();
        Ok(FaultDelta { new_dead_cores, new_failed_links })
    }
}

/// What broke between two [`FaultMap`] snapshots of the same mesh
/// (see [`FaultMap::diff`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultDelta {
    /// Cores dead in the newer map only, in row-major mesh order.
    pub new_dead_cores: Vec<Coord>,
    /// Links faulty in the newer map only, in canonical sorted order.
    pub new_failed_links: Vec<Link>,
}

impl FaultDelta {
    /// Whether nothing new broke.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_dead_cores.is_empty() && self.new_failed_links.is_empty()
    }
}

impl fmt::Display for FaultMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dead cores, {} faulty links on {}",
            self.n_dead,
            self.links.len(),
            self.mesh
        )
    }
}

/// The shape of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPattern {
    /// Each core dies independently; `core_rate`/`link_rate` are the
    /// fractions of cores/links marked faulty (rounded to the nearest
    /// count). Models uniformly scattered manufacturing defects.
    Uniform {
        /// Fraction of cores to kill, in `[0, 1)`.
        core_rate: f64,
        /// Fraction of links to break, in `[0, 1)`.
        link_rate: f64,
    },
    /// Dead cores concentrate around `regions` randomly chosen centers —
    /// the closest cores to any center die first. Models localized damage
    /// (a bad quadrant, a cracked corner).
    Clustered {
        /// Fraction of cores to kill, in `[0, 1)`.
        core_rate: f64,
        /// Number of damage centers (at least 1).
        regions: u32,
    },
    /// An exact list, e.g. from a chip's production test report.
    Explicit {
        /// Dead cores.
        dead_cores: Vec<Coord>,
        /// Faulty links (endpoint order irrelevant).
        faulty_links: Vec<Link>,
    },
}

/// Deterministic fault generator: the same `(seed, mesh, pattern)` triple
/// always yields an identical [`FaultMap`].
///
/// # Examples
///
/// ```
/// use snnmap_hw::{FaultInjector, FaultPattern, Mesh};
///
/// let mesh = Mesh::new(16, 16)?;
/// let pattern = FaultPattern::Uniform { core_rate: 0.05, link_rate: 0.0 };
/// let a = FaultInjector::new(7).inject(mesh, &pattern)?;
/// let b = FaultInjector::new(7).inject(mesh, &pattern)?;
/// assert_eq!(a, b);
/// assert_eq!(a.num_dead_cores(), 13); // round(0.05 * 256)
/// # Ok::<(), snnmap_hw::HwError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The injector's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a fault map on `mesh` following `pattern`.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidFaultSpec`] for rates outside `[0, 1)` or zero
    /// regions; [`HwError::OutOfBounds`]/[`HwError::NotAdjacent`] for bad
    /// explicit lists.
    pub fn inject(&self, mesh: Mesh, pattern: &FaultPattern) -> Result<FaultMap, HwError> {
        match pattern {
            FaultPattern::Uniform { core_rate, link_rate } => {
                check_rate(*core_rate, "core_rate")?;
                check_rate(*link_rate, "link_rate")?;
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
                let mut map = FaultMap::new(mesh);

                let n_dead = (core_rate * mesh.len() as f64).round() as usize;
                let mut cores: Vec<usize> = (0..mesh.len()).collect();
                cores.shuffle(&mut rng);
                for &idx in cores.iter().take(n_dead) {
                    map.kill_core(mesh.coord_of_index(idx))?;
                }

                let mut links = all_links(mesh);
                let n_faulty = (link_rate * links.len() as f64).round() as usize;
                links.shuffle(&mut rng);
                for &(a, b) in links.iter().take(n_faulty) {
                    map.fail_link(a, b)?;
                }
                Ok(map)
            }
            FaultPattern::Clustered { core_rate, regions } => {
                check_rate(*core_rate, "core_rate")?;
                if *regions == 0 {
                    return Err(HwError::InvalidFaultSpec {
                        message: "clustered pattern needs at least one region".into(),
                    });
                }
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
                let mut cores: Vec<usize> = (0..mesh.len()).collect();
                cores.shuffle(&mut rng);
                let centers: Vec<Coord> = cores
                    .iter()
                    .take((*regions as usize).min(mesh.len()))
                    .map(|&i| mesh.coord_of_index(i))
                    .collect();
                // Kill the budget closest-to-any-center cores; index as a
                // deterministic tie-breaker.
                let mut by_dist: Vec<(u32, usize)> = (0..mesh.len())
                    .map(|i| {
                        let c = mesh.coord_of_index(i);
                        let d = centers.iter().map(|&z| z.manhattan(c)).min().unwrap_or(0);
                        (d, i)
                    })
                    .collect();
                by_dist.sort_unstable();
                let n_dead = (core_rate * mesh.len() as f64).round() as usize;
                let mut map = FaultMap::new(mesh);
                for &(_, i) in by_dist.iter().take(n_dead) {
                    map.kill_core(mesh.coord_of_index(i))?;
                }
                Ok(map)
            }
            FaultPattern::Explicit { dead_cores, faulty_links } => {
                FaultMap::from_parts(mesh, dead_cores, faulty_links)
            }
        }
    }
}

fn check_rate(rate: f64, name: &str) -> Result<(), HwError> {
    if !(rate.is_finite() && (0.0..1.0).contains(&rate)) {
        return Err(HwError::InvalidFaultSpec {
            message: format!("{name} must be in [0, 1), got {rate}"),
        });
    }
    Ok(())
}

/// Every undirected link of the mesh in canonical order.
fn all_links(mesh: Mesh) -> Vec<Link> {
    let mut links = Vec::with_capacity(2 * mesh.len());
    for c in mesh.iter() {
        if c.x + 1 < mesh.rows() {
            links.push(canonical_link(c, Coord::new(c.x + 1, c.y)));
        }
        if c.y + 1 < mesh.cols() {
            links.push(canonical_link(c, Coord::new(c.x, c.y + 1)));
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(4, 4).unwrap()
    }

    #[test]
    fn empty_map_is_healthy() {
        let m = FaultMap::new(mesh4());
        assert!(m.is_healthy());
        assert_eq!(m.healthy_cores(), 16);
        assert_eq!(m.num_dead_cores(), 0);
        assert_eq!(m.dead_cores().count(), 0);
        assert!(!m.is_dead(Coord::new(0, 0)));
        assert!(m.link_ok(Coord::new(0, 0), Coord::new(0, 1)));
    }

    #[test]
    fn kill_core_is_idempotent_and_bounded() {
        let mut m = FaultMap::new(mesh4());
        m.kill_core(Coord::new(1, 1)).unwrap();
        m.kill_core(Coord::new(1, 1)).unwrap();
        assert_eq!(m.num_dead_cores(), 1);
        assert!(m.is_dead(Coord::new(1, 1)));
        assert!(matches!(m.kill_core(Coord::new(9, 9)), Err(HwError::OutOfBounds { .. })));
        // Out-of-mesh coordinates read as dead.
        assert!(m.is_dead(Coord::new(9, 9)));
    }

    #[test]
    fn links_are_undirected_and_validated() {
        let mut m = FaultMap::new(mesh4());
        m.fail_link(Coord::new(0, 1), Coord::new(0, 0)).unwrap();
        assert!(!m.link_ok(Coord::new(0, 0), Coord::new(0, 1)));
        assert!(!m.link_ok(Coord::new(0, 1), Coord::new(0, 0)));
        m.fail_link(Coord::new(0, 0), Coord::new(0, 1)).unwrap();
        assert_eq!(m.num_faulty_links(), 1);
        assert!(matches!(
            m.fail_link(Coord::new(0, 0), Coord::new(2, 2)),
            Err(HwError::NotAdjacent { .. })
        ));
        assert!(matches!(
            m.fail_link(Coord::new(0, 0), Coord::new(9, 0)),
            Err(HwError::OutOfBounds { .. })
        ));
        // Non-adjacent pairs read as broken.
        assert!(!m.link_ok(Coord::new(0, 0), Coord::new(3, 3)));
    }

    #[test]
    fn uniform_injection_is_deterministic_and_sized() {
        let mesh = Mesh::new(16, 16).unwrap();
        let p = FaultPattern::Uniform { core_rate: 0.05, link_rate: 0.05 };
        let a = FaultInjector::new(42).inject(mesh, &p).unwrap();
        let b = FaultInjector::new(42).inject(mesh, &p).unwrap();
        let c = FaultInjector::new(43).inject(mesh, &p).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_dead_cores(), 13); // round(0.05 * 256)
        assert_eq!(a.num_faulty_links(), 24); // round(0.05 * 480)
        assert_eq!(a.healthy_cores(), 256 - 13);
        assert_eq!(a.dead_cores().count(), 13);
    }

    #[test]
    fn clustered_injection_concentrates_damage() {
        let mesh = Mesh::new(16, 16).unwrap();
        let p = FaultPattern::Clustered { core_rate: 0.1, regions: 1 };
        let m = FaultInjector::new(5).inject(mesh, &p).unwrap();
        assert_eq!(m.num_dead_cores(), 26);
        // All dead cores lie within a small radius of each other: the
        // maximum pairwise distance of ~26 closest-to-center cores is far
        // below the mesh diameter.
        let dead: Vec<Coord> = m.dead_cores().collect();
        let max_pair = dead
            .iter()
            .flat_map(|&a| dead.iter().map(move |&b| a.manhattan(b)))
            .max()
            .unwrap();
        assert!(max_pair <= 10, "clustered faults spread too far: {max_pair}");
        // Deterministic.
        assert_eq!(m, FaultInjector::new(5).inject(mesh, &p).unwrap());
    }

    #[test]
    fn explicit_injection_roundtrips() {
        let dead = vec![Coord::new(0, 0), Coord::new(2, 3)];
        let links = vec![(Coord::new(1, 1), Coord::new(1, 2))];
        let p = FaultPattern::Explicit { dead_cores: dead.clone(), faulty_links: links.clone() };
        let m = FaultInjector::new(0).inject(mesh4(), &p).unwrap();
        assert_eq!(m.dead_cores().collect::<Vec<_>>(), dead);
        assert_eq!(m.faulty_links().collect::<Vec<_>>(), links);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let inj = FaultInjector::new(1);
        for rate in [-0.1, 1.0, 1.5, f64::NAN] {
            assert!(matches!(
                inj.inject(mesh4(), &FaultPattern::Uniform { core_rate: rate, link_rate: 0.0 }),
                Err(HwError::InvalidFaultSpec { .. })
            ));
        }
        assert!(matches!(
            inj.inject(mesh4(), &FaultPattern::Clustered { core_rate: 0.1, regions: 0 }),
            Err(HwError::InvalidFaultSpec { .. })
        ));
        assert!(inj
            .inject(
                mesh4(),
                &FaultPattern::Explicit {
                    dead_cores: vec![Coord::new(9, 9)],
                    faulty_links: vec![],
                },
            )
            .is_err());
    }

    #[test]
    fn all_links_counts_match_formula() {
        // An N x M mesh has N(M-1) + M(N-1) links.
        for (r, c) in [(1u16, 1u16), (2, 2), (3, 5), (16, 16)] {
            let mesh = Mesh::new(r, c).unwrap();
            let expect = r as usize * (c as usize - 1) + c as usize * (r as usize - 1);
            assert_eq!(all_links(mesh).len(), expect, "{r}x{c}");
        }
    }

    #[test]
    fn diff_reports_only_newly_broken_parts_in_order() {
        let mesh = mesh4();
        let mut before = FaultMap::new(mesh);
        before.kill_core(Coord::new(0, 0)).unwrap();
        before.fail_link(Coord::new(3, 2), Coord::new(3, 3)).unwrap();
        let mut after = before.clone();
        // Same mesh, same old faults, plus fresh damage (inserted out of
        // row-major order to exercise the ordering guarantee).
        after.kill_core(Coord::new(2, 2)).unwrap();
        after.kill_core(Coord::new(1, 0)).unwrap();
        after.fail_link(Coord::new(0, 1), Coord::new(0, 2)).unwrap();
        let delta = after.diff(&before).unwrap();
        assert_eq!(delta.new_dead_cores, vec![Coord::new(1, 0), Coord::new(2, 2)]);
        assert_eq!(delta.new_failed_links, vec![(Coord::new(0, 1), Coord::new(0, 2))]);
        assert!(!delta.is_empty());
        // Identical maps diff to nothing.
        assert!(after.diff(&after.clone()).unwrap().is_empty());
        // "Healed" faults are ignored: diffing the other way reports only
        // what `before` has that `after` lacks — nothing.
        assert!(before.diff(&after).unwrap().is_empty());
    }

    #[test]
    fn diff_rejects_mismatched_meshes() {
        let a = FaultMap::new(mesh4());
        let b = FaultMap::new(Mesh::new(3, 3).unwrap());
        assert!(matches!(a.diff(&b), Err(HwError::InvalidFaultSpec { .. })));
    }

    #[test]
    fn kill_chip_kills_exactly_one_block() {
        let board = Board::uniform(2, 2, 2, 2, crate::CoreConstraints::default()).unwrap();
        let mut m = FaultMap::new(board.mesh());
        assert_eq!(m.kill_chip(&board, 1).unwrap(), 4);
        assert_eq!(m.num_dead_cores(), 4);
        assert!(m.is_chip_dead(&board, 1));
        assert!(!m.is_chip_dead(&board, 0));
        assert_eq!(m.dead_chips(&board), vec![1]);
        // Chip 1 of a 2x2 grid of 2x2 chips is the top-right 2x2 block.
        for c in board.mesh().iter() {
            assert_eq!(m.is_dead(c), c.x < 2 && c.y >= 2, "core {c}");
        }
        // Idempotent; overlapping single-core damage still counts once.
        assert_eq!(m.kill_chip(&board, 1).unwrap(), 0);
        m.kill_core(Coord::new(2, 0)).unwrap();
        assert_eq!(m.kill_chip(&board, 2).unwrap(), 3);
        assert_eq!(m.dead_chips(&board), vec![1, 2]);
    }

    #[test]
    fn kill_chip_rejects_bad_specs() {
        let board = Board::uniform(2, 2, 2, 2, crate::CoreConstraints::default()).unwrap();
        let mut m = FaultMap::new(board.mesh());
        assert!(matches!(m.kill_chip(&board, 4), Err(HwError::InvalidFaultSpec { .. })));
        let mut other = FaultMap::new(Mesh::new(3, 3).unwrap());
        assert!(matches!(other.kill_chip(&board, 0), Err(HwError::InvalidFaultSpec { .. })));
        // Mismatched meshes read as dead / report nothing rather than lying.
        assert!(other.is_chip_dead(&board, 0));
        assert!(other.dead_chips(&board).is_empty());
    }

    #[test]
    fn display_summarizes() {
        let mut m = FaultMap::new(mesh4());
        m.kill_core(Coord::new(0, 0)).unwrap();
        assert!(m.to_string().contains("1 dead cores"));
    }
}
