//! Injective cluster-to-core placements.

use std::fmt;

use crate::{ClusterId, Coord, FaultMap, HwError, Mesh};

/// A (partial) placement `P : V_P → S` — an injective map from cluster
/// indices to mesh cores (§3.3, eqs. 7–8).
///
/// The structure is maintained doubly: `coord_of` answers "where is this
/// cluster" and `cluster_at` answers "who sits on this core", both in O(1).
/// This is what lets the Force-Directed engine swap adjacent occupants in
/// constant time.
///
/// A placement may be *partial* while being built (clusters not yet placed)
/// and *non-full* even when complete (Table 3 has e.g. 251 clusters on a
/// 16 × 16 = 256-core system, leaving 5 empty cores).
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Mesh, Coord, Placement};
///
/// let mesh = Mesh::new(2, 2)?;
/// let mut p = Placement::new_unplaced(mesh, 3);
/// p.place(0, Coord::new(0, 0))?;
/// p.place(1, Coord::new(0, 1))?;
/// p.place(2, Coord::new(1, 1))?;
/// assert!(p.is_complete());
/// assert_eq!(p.distance(0, 2)?, 2);
///
/// // Swap the occupants of two cores (one may be empty).
/// p.swap_cores(Coord::new(0, 0), Coord::new(1, 0))?;
/// assert_eq!(p.coord_of(0), Some(Coord::new(1, 0)));
/// assert_eq!(p.cluster_at(Coord::new(0, 0)), None);
/// # Ok::<(), snnmap_hw::HwError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Placement {
    mesh: Mesh,
    /// Cluster id → its coordinate (None while unplaced).
    pos: Vec<Option<Coord>>,
    /// Mesh linear index → occupying cluster.
    grid: Vec<Option<ClusterId>>,
    /// Mesh linear index → unplaceable (dead core). Empty when no fault
    /// mask is attached, so fault-free placements pay nothing.
    masked: Vec<bool>,
    placed: u32,
}

impl Placement {
    /// Creates an empty placement of `n_clusters` clusters on `mesh`,
    /// with every cluster unplaced.
    ///
    /// # Panics
    ///
    /// Panics if `n_clusters` exceeds the mesh capacity — an injective map
    /// cannot exist then, and every caller has already sized the mesh.
    pub fn new_unplaced(mesh: Mesh, n_clusters: u32) -> Self {
        assert!(
            n_clusters as usize <= mesh.len(),
            "{n_clusters} clusters cannot be injectively placed on {mesh}"
        );
        Self {
            mesh,
            pos: vec![None; n_clusters as usize],
            grid: vec![None; mesh.len()],
            masked: Vec::new(),
            placed: 0,
        }
    }

    /// Creates an empty placement whose dead cores (per `faults`) are
    /// unplaceable: [`Placement::place`] and [`Placement::swap_cores`]
    /// refuse to put a cluster on them.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidFaultSpec`] if `faults` describes a different
    /// mesh; [`HwError::InsufficientCapacity`] if `n_clusters` exceeds the
    /// number of healthy cores.
    pub fn new_unplaced_masked(
        mesh: Mesh,
        n_clusters: u32,
        faults: &FaultMap,
    ) -> Result<Self, HwError> {
        if faults.mesh() != mesh {
            return Err(HwError::InvalidFaultSpec {
                message: format!("fault map is for {}, placement for {mesh}", faults.mesh()),
            });
        }
        if n_clusters as usize > faults.healthy_cores() {
            return Err(HwError::InsufficientCapacity {
                clusters: n_clusters as u64,
                cores: faults.healthy_cores() as u64,
            });
        }
        let masked = mesh.iter().map(|c| faults.is_dead(c)).collect();
        Ok(Self {
            mesh,
            pos: vec![None; n_clusters as usize],
            grid: vec![None; mesh.len()],
            masked,
            placed: 0,
        })
    }

    /// Whether core `coord` is masked off (dead). Out-of-mesh coordinates
    /// read as unmasked; they fail placement with
    /// [`HwError::OutOfBounds`] instead.
    #[inline]
    pub fn is_masked(&self, coord: Coord) -> bool {
        !self.masked.is_empty()
            && self.mesh.contains(coord)
            && self.masked[self.mesh.index_of(coord)]
    }

    /// Number of masked (unplaceable) cores.
    pub fn masked_count(&self) -> usize {
        self.masked.iter().filter(|&&m| m).count()
    }

    /// Builds a complete placement from a per-cluster coordinate sequence:
    /// cluster `i` goes to `coords[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InsufficientCapacity`] if there are more clusters
    /// than cores, [`HwError::OutOfBounds`] for a coordinate outside the
    /// mesh, and [`HwError::CoreOccupied`] if two clusters share a core.
    pub fn from_coords(mesh: Mesh, coords: &[Coord]) -> Result<Self, HwError> {
        if coords.len() > mesh.len() {
            return Err(HwError::InsufficientCapacity {
                clusters: coords.len() as u64,
                cores: mesh.len() as u64,
            });
        }
        let mut p = Self::new_unplaced(mesh, coords.len() as u32);
        for (i, &c) in coords.iter().enumerate() {
            p.place(i as ClusterId, c)?;
        }
        Ok(p)
    }

    /// The mesh this placement targets.
    #[inline]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Number of clusters (placed or not).
    #[inline]
    pub fn len(&self) -> u32 {
        self.pos.len() as u32
    }

    /// Whether the placement tracks zero clusters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Number of clusters currently placed.
    #[inline]
    pub fn placed_count(&self) -> u32 {
        self.placed
    }

    /// Whether every cluster has a position.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.placed as usize == self.pos.len()
    }

    /// Coordinate of `cluster`, or `None` if it is unplaced or unknown.
    #[inline]
    pub fn coord_of(&self, cluster: ClusterId) -> Option<Coord> {
        self.pos.get(cluster as usize).copied().flatten()
    }

    /// Coordinate of `cluster`, failing loudly when absent.
    ///
    /// # Errors
    ///
    /// [`HwError::UnknownCluster`] for an out-of-range id,
    /// [`HwError::Unplaced`] for a known but unplaced cluster.
    pub fn try_coord_of(&self, cluster: ClusterId) -> Result<Coord, HwError> {
        match self.pos.get(cluster as usize) {
            None => Err(HwError::UnknownCluster { cluster, len: self.len() }),
            Some(None) => Err(HwError::Unplaced { cluster }),
            Some(Some(c)) => Ok(*c),
        }
    }

    /// The cluster occupying core `coord`, if any.
    ///
    /// Returns `None` both for an empty core and for a coordinate outside
    /// the mesh; use [`Mesh::contains`] to distinguish.
    #[inline]
    pub fn cluster_at(&self, coord: Coord) -> Option<ClusterId> {
        if !self.mesh.contains(coord) {
            return None;
        }
        self.grid[self.mesh.index_of(coord)]
    }

    /// Places an unplaced cluster on an empty core.
    ///
    /// # Errors
    ///
    /// [`HwError::UnknownCluster`], [`HwError::AlreadyPlaced`],
    /// [`HwError::OutOfBounds`] or [`HwError::CoreOccupied`].
    pub fn place(&mut self, cluster: ClusterId, coord: Coord) -> Result<(), HwError> {
        if cluster as usize >= self.pos.len() {
            return Err(HwError::UnknownCluster { cluster, len: self.len() });
        }
        if self.pos[cluster as usize].is_some() {
            return Err(HwError::AlreadyPlaced { cluster });
        }
        if !self.mesh.contains(coord) {
            return Err(HwError::OutOfBounds { coord });
        }
        if self.is_masked(coord) {
            return Err(HwError::FaultyCore { coord });
        }
        let idx = self.mesh.index_of(coord);
        if let Some(occupant) = self.grid[idx] {
            return Err(HwError::CoreOccupied { coord, occupant });
        }
        self.grid[idx] = Some(cluster);
        self.pos[cluster as usize] = Some(coord);
        self.placed += 1;
        Ok(())
    }

    /// Removes a cluster from the mesh, returning its previous coordinate.
    ///
    /// # Errors
    ///
    /// [`HwError::UnknownCluster`] or [`HwError::Unplaced`].
    pub fn unplace(&mut self, cluster: ClusterId) -> Result<Coord, HwError> {
        let coord = self.try_coord_of(cluster)?;
        self.grid[self.mesh.index_of(coord)] = None;
        self.pos[cluster as usize] = None;
        self.placed -= 1;
        Ok(coord)
    }

    /// Exchanges the occupants of two cores. Either core may be empty, so
    /// this doubles as a *move* when exactly one is occupied, and is a
    /// no-op when both are empty or `a == b`.
    ///
    /// This is the primitive the Force-Directed algorithm performs on each
    /// positive-tension pair (Algorithm 3, line 20).
    ///
    /// # Errors
    ///
    /// [`HwError::OutOfBounds`] if either coordinate is outside the mesh;
    /// [`HwError::FaultyCore`] if the exchange would move a cluster onto a
    /// masked (dead) core.
    pub fn swap_cores(&mut self, a: Coord, b: Coord) -> Result<(), HwError> {
        for c in [a, b] {
            if !self.mesh.contains(c) {
                return Err(HwError::OutOfBounds { coord: c });
            }
        }
        if a == b {
            return Ok(());
        }
        let ia = self.mesh.index_of(a);
        let ib = self.mesh.index_of(b);
        if self.grid[ia].is_some() && self.is_masked(b) {
            return Err(HwError::FaultyCore { coord: b });
        }
        if self.grid[ib].is_some() && self.is_masked(a) {
            return Err(HwError::FaultyCore { coord: a });
        }
        self.grid.swap(ia, ib);
        if let Some(cl) = self.grid[ia] {
            self.pos[cl as usize] = Some(a);
        }
        if let Some(cl) = self.grid[ib] {
            self.pos[cl as usize] = Some(b);
        }
        Ok(())
    }

    /// Reassigns every cluster's coordinate in one bulk operation,
    /// replacing the current (possibly partial) assignment: `coords[i]`
    /// becomes the position of cluster `i`. The whole assignment is
    /// validated before any state changes, so on error the placement is
    /// left exactly as it was.
    ///
    /// This is the Force-Directed engine's write-back path: the engine
    /// tracks occupancy in its own flat tables during sweeps and commits
    /// the result here once, instead of paying two placement updates per
    /// swap.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != self.len()` — a bulk assignment covers
    /// exactly the clusters the placement tracks.
    ///
    /// # Errors
    ///
    /// [`HwError::OutOfBounds`] for a coordinate outside the mesh,
    /// [`HwError::FaultyCore`] for a masked (dead) target core, and
    /// [`HwError::CoreOccupied`] if two clusters name the same core.
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_hw::{Mesh, Coord, Placement};
    ///
    /// let mesh = Mesh::new(2, 2)?;
    /// let mut p = Placement::new_unplaced(mesh, 2);
    /// p.set_coords(&[Coord::new(1, 1), Coord::new(0, 0)])?;
    /// assert_eq!(p.coord_of(0), Some(Coord::new(1, 1)));
    /// assert_eq!(p.cluster_at(Coord::new(0, 0)), Some(1));
    /// # Ok::<(), snnmap_hw::HwError>(())
    /// ```
    pub fn set_coords(&mut self, coords: &[Coord]) -> Result<(), HwError> {
        assert_eq!(
            coords.len(),
            self.pos.len(),
            "set_coords must cover every cluster of the placement"
        );
        let mut grid: Vec<Option<ClusterId>> = vec![None; self.mesh.len()];
        for (i, &c) in coords.iter().enumerate() {
            if !self.mesh.contains(c) {
                return Err(HwError::OutOfBounds { coord: c });
            }
            if self.is_masked(c) {
                return Err(HwError::FaultyCore { coord: c });
            }
            let idx = self.mesh.index_of(c);
            if let Some(occupant) = grid[idx] {
                return Err(HwError::CoreOccupied { coord: c, occupant });
            }
            grid[idx] = Some(i as ClusterId);
        }
        self.grid = grid;
        self.pos = coords.iter().map(|&c| Some(c)).collect();
        self.placed = self.pos.len() as u32;
        Ok(())
    }

    /// Manhattan distance `‖P(c_i) − P(c_j)‖₁` between two placed clusters —
    /// the quantity inside every metric of §3.3.
    ///
    /// # Errors
    ///
    /// [`HwError::UnknownCluster`] or [`HwError::Unplaced`] for either id.
    #[inline]
    pub fn distance(&self, ci: ClusterId, cj: ClusterId) -> Result<u32, HwError> {
        Ok(self.try_coord_of(ci)?.manhattan(self.try_coord_of(cj)?))
    }

    /// Iterates `(cluster, coordinate)` for every placed cluster, in
    /// cluster-id order.
    pub fn iter_placed(&self) -> impl Iterator<Item = (ClusterId, Coord)> + '_ {
        self.pos
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (i as ClusterId, c)))
    }

    /// Checks the internal bidirectional invariants: `pos` and `grid` agree,
    /// the map is injective, and `placed_count` is consistent.
    ///
    /// Cheap enough to run in tests and debug assertions; O(clusters + cores).
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = 0u32;
        for (i, p) in self.pos.iter().enumerate() {
            if let Some(c) = p {
                if !self.mesh.contains(*c) {
                    return Err(format!("cluster {i} at {c} outside {}", self.mesh));
                }
                if self.grid[self.mesh.index_of(*c)] != Some(i as ClusterId) {
                    return Err(format!("grid/pos mismatch for cluster {i} at {c}"));
                }
                if self.is_masked(*c) {
                    return Err(format!("cluster {i} occupies masked (dead) core {c}"));
                }
                seen += 1;
            }
        }
        if seen != self.placed {
            return Err(format!("placed_count {} but {seen} positions set", self.placed));
        }
        let grid_occupied = self.grid.iter().filter(|g| g.is_some()).count() as u32;
        if grid_occupied != seen {
            return Err(format!("{grid_occupied} occupied cores but {seen} placed clusters"));
        }
        Ok(())
    }
}

impl fmt::Debug for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Placement")
            .field("mesh", &self.mesh)
            .field("clusters", &self.len())
            .field("placed", &self.placed)
            .finish()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} clusters on {}", self.placed, self.len(), self.mesh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh3() -> Mesh {
        Mesh::new(3, 3).unwrap()
    }

    #[test]
    fn place_and_lookup_roundtrip() {
        let mut p = Placement::new_unplaced(mesh3(), 4);
        p.place(2, Coord::new(1, 1)).unwrap();
        assert_eq!(p.coord_of(2), Some(Coord::new(1, 1)));
        assert_eq!(p.cluster_at(Coord::new(1, 1)), Some(2));
        assert_eq!(p.coord_of(0), None);
        assert_eq!(p.placed_count(), 1);
        p.check_consistency().unwrap();
    }

    #[test]
    fn place_rejects_double_occupancy() {
        let mut p = Placement::new_unplaced(mesh3(), 4);
        p.place(0, Coord::new(0, 0)).unwrap();
        assert_eq!(
            p.place(1, Coord::new(0, 0)),
            Err(HwError::CoreOccupied { coord: Coord::new(0, 0), occupant: 0 })
        );
    }

    #[test]
    fn place_rejects_double_place() {
        let mut p = Placement::new_unplaced(mesh3(), 4);
        p.place(0, Coord::new(0, 0)).unwrap();
        assert_eq!(p.place(0, Coord::new(1, 1)), Err(HwError::AlreadyPlaced { cluster: 0 }));
    }

    #[test]
    fn place_rejects_out_of_bounds_and_unknown() {
        let mut p = Placement::new_unplaced(mesh3(), 4);
        assert!(matches!(p.place(0, Coord::new(3, 0)), Err(HwError::OutOfBounds { .. })));
        assert!(matches!(p.place(9, Coord::new(0, 0)), Err(HwError::UnknownCluster { .. })));
    }

    #[test]
    #[should_panic(expected = "injectively")]
    fn new_unplaced_rejects_overfull() {
        let _ = Placement::new_unplaced(mesh3(), 10);
    }

    #[test]
    fn from_coords_builds_complete_placement() {
        let coords: Vec<Coord> = mesh3().iter().take(5).collect();
        let p = Placement::from_coords(mesh3(), &coords).unwrap();
        assert!(p.is_complete());
        assert_eq!(p.len(), 5);
        for (i, &c) in coords.iter().enumerate() {
            assert_eq!(p.coord_of(i as ClusterId), Some(c));
        }
        p.check_consistency().unwrap();
    }

    #[test]
    fn from_coords_rejects_duplicates() {
        let coords = vec![Coord::new(0, 0), Coord::new(0, 0)];
        assert!(matches!(
            Placement::from_coords(mesh3(), &coords),
            Err(HwError::CoreOccupied { .. })
        ));
    }

    #[test]
    fn swap_occupied_pair() {
        let mut p =
            Placement::from_coords(mesh3(), &[Coord::new(0, 0), Coord::new(2, 2)]).unwrap();
        p.swap_cores(Coord::new(0, 0), Coord::new(2, 2)).unwrap();
        assert_eq!(p.coord_of(0), Some(Coord::new(2, 2)));
        assert_eq!(p.coord_of(1), Some(Coord::new(0, 0)));
        p.check_consistency().unwrap();
    }

    #[test]
    fn swap_with_empty_core_moves() {
        let mut p = Placement::from_coords(mesh3(), &[Coord::new(0, 0)]).unwrap();
        p.swap_cores(Coord::new(0, 0), Coord::new(1, 2)).unwrap();
        assert_eq!(p.coord_of(0), Some(Coord::new(1, 2)));
        assert_eq!(p.cluster_at(Coord::new(0, 0)), None);
        p.check_consistency().unwrap();
    }

    #[test]
    fn swap_two_empty_and_self_are_noops() {
        let mut p = Placement::from_coords(mesh3(), &[Coord::new(0, 0)]).unwrap();
        let before = p.clone();
        p.swap_cores(Coord::new(1, 1), Coord::new(2, 2)).unwrap();
        p.swap_cores(Coord::new(0, 0), Coord::new(0, 0)).unwrap();
        assert_eq!(p, before);
    }

    #[test]
    fn unplace_frees_core() {
        let mut p = Placement::from_coords(mesh3(), &[Coord::new(1, 1)]).unwrap();
        assert_eq!(p.unplace(0).unwrap(), Coord::new(1, 1));
        assert_eq!(p.cluster_at(Coord::new(1, 1)), None);
        assert_eq!(p.placed_count(), 0);
        assert_eq!(p.unplace(0), Err(HwError::Unplaced { cluster: 0 }));
    }

    #[test]
    fn distance_matches_manhattan() {
        let p = Placement::from_coords(mesh3(), &[Coord::new(0, 0), Coord::new(2, 1)]).unwrap();
        assert_eq!(p.distance(0, 1).unwrap(), 3);
        assert!(matches!(p.distance(0, 5), Err(HwError::UnknownCluster { .. })));
    }

    #[test]
    fn iter_placed_in_cluster_order() {
        let mut p = Placement::new_unplaced(mesh3(), 3);
        p.place(2, Coord::new(0, 0)).unwrap();
        p.place(0, Coord::new(1, 1)).unwrap();
        let v: Vec<_> = p.iter_placed().collect();
        assert_eq!(v, vec![(0, Coord::new(1, 1)), (2, Coord::new(0, 0))]);
    }

    #[test]
    fn set_coords_bulk_assigns_and_overwrites() {
        let mut p = Placement::new_unplaced(mesh3(), 3);
        p.place(0, Coord::new(2, 2)).unwrap();
        p.set_coords(&[Coord::new(0, 0), Coord::new(0, 1), Coord::new(1, 0)]).unwrap();
        assert!(p.is_complete());
        assert_eq!(p.coord_of(0), Some(Coord::new(0, 0)));
        assert_eq!(p.cluster_at(Coord::new(2, 2)), None, "old assignment fully replaced");
        p.check_consistency().unwrap();
    }

    #[test]
    fn set_coords_rejects_invalid_and_leaves_placement_untouched() {
        let mut p = Placement::new_unplaced(mesh3(), 2);
        p.place(0, Coord::new(1, 1)).unwrap();
        let before = p.clone();
        assert!(matches!(
            p.set_coords(&[Coord::new(0, 0), Coord::new(3, 0)]),
            Err(HwError::OutOfBounds { .. })
        ));
        assert!(matches!(
            p.set_coords(&[Coord::new(0, 0), Coord::new(0, 0)]),
            Err(HwError::CoreOccupied { occupant: 0, .. })
        ));
        assert_eq!(p, before, "failed bulk assignment must not mutate");
    }

    #[test]
    fn set_coords_respects_fault_mask() {
        use crate::FaultMap;
        let mut faults = FaultMap::new(mesh3());
        faults.kill_core(Coord::new(1, 1)).unwrap();
        let mut p = Placement::new_unplaced_masked(mesh3(), 2, &faults).unwrap();
        assert!(matches!(
            p.set_coords(&[Coord::new(0, 0), Coord::new(1, 1)]),
            Err(HwError::FaultyCore { coord }) if coord == Coord::new(1, 1)
        ));
        p.set_coords(&[Coord::new(0, 0), Coord::new(2, 2)]).unwrap();
        p.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "every cluster")]
    fn set_coords_panics_on_length_mismatch() {
        let mut p = Placement::new_unplaced(mesh3(), 3);
        let _ = p.set_coords(&[Coord::new(0, 0)]);
    }

    #[test]
    fn masked_cores_are_unplaceable() {
        use crate::FaultMap;
        let mut faults = FaultMap::new(mesh3());
        faults.kill_core(Coord::new(1, 1)).unwrap();
        let mut p = Placement::new_unplaced_masked(mesh3(), 4, &faults).unwrap();
        assert!(p.is_masked(Coord::new(1, 1)));
        assert_eq!(p.masked_count(), 1);
        assert_eq!(
            p.place(0, Coord::new(1, 1)),
            Err(HwError::FaultyCore { coord: Coord::new(1, 1) })
        );
        p.place(0, Coord::new(0, 0)).unwrap();
        // A swap may not move an occupant onto the dead core...
        assert_eq!(
            p.swap_cores(Coord::new(0, 0), Coord::new(1, 1)),
            Err(HwError::FaultyCore { coord: Coord::new(1, 1) })
        );
        // ...but swaps between healthy cores still work.
        p.swap_cores(Coord::new(0, 0), Coord::new(2, 2)).unwrap();
        assert_eq!(p.coord_of(0), Some(Coord::new(2, 2)));
        p.check_consistency().unwrap();
    }

    #[test]
    fn masked_constructor_enforces_healthy_capacity() {
        use crate::FaultMap;
        let mut faults = FaultMap::new(mesh3());
        faults.kill_core(Coord::new(0, 0)).unwrap();
        // 9 cores, 1 dead: 9 clusters no longer fit.
        assert!(matches!(
            Placement::new_unplaced_masked(mesh3(), 9, &faults),
            Err(HwError::InsufficientCapacity { clusters: 9, cores: 8 })
        ));
        assert!(Placement::new_unplaced_masked(mesh3(), 8, &faults).is_ok());
        // Mesh mismatch is rejected.
        let other = FaultMap::new(Mesh::new(2, 2).unwrap());
        assert!(matches!(
            Placement::new_unplaced_masked(mesh3(), 1, &other),
            Err(HwError::InvalidFaultSpec { .. })
        ));
    }

    #[test]
    fn unmasked_placement_reports_no_masks() {
        let p = Placement::new_unplaced(mesh3(), 2);
        assert!(!p.is_masked(Coord::new(0, 0)));
        assert_eq!(p.masked_count(), 0);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let p = Placement::new_unplaced(mesh3(), 2);
        assert!(!format!("{p}").is_empty());
        assert!(format!("{p:?}").contains("Placement"));
    }
}
