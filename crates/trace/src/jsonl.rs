//! JSON-lines sink: one deterministic JSON object per event.

use std::io::{self, Write};

use crate::{TraceEvent, TraceSink};

/// Streams events as JSONL to any [`Write`] target.
///
/// Field order is fixed by [`TraceEvent::render`]; with timing disabled
/// (`with_timing(false)`) two traces of the same deterministic run are
/// byte-identical, which CI uses for replay comparisons.
///
/// I/O errors are latched rather than panicking mid-pipeline: the first
/// error stops further writes and is surfaced by [`JsonlSink::finish`]
/// (or [`JsonlSink::take_error`]).
///
/// # Examples
///
/// ```
/// use snnmap_trace::{FdDoneEvent, JsonlSink, TraceEvent, TraceSink};
///
/// let mut sink = JsonlSink::new(Vec::new()).with_timing(false);
/// sink.record(&TraceEvent::FdDone(FdDoneEvent {
///     iterations: 1,
///     swaps: 0,
///     initial_energy: 0.0,
///     final_energy: 0.0,
///     converged: true,
///     stop: "converged".into(),
/// }));
/// let bytes = sink.finish()?;
/// assert_eq!(String::from_utf8(bytes)?.lines().count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    timing: bool,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `out`; timing fields are emitted by default.
    pub fn new(out: W) -> Self {
        JsonlSink { out, timing: true, lines: 0, error: None }
    }

    /// Enables or disables wall-clock/allocation fields (disable for
    /// byte-stable replays).
    pub fn with_timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Takes the latched I/O error, if any occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.render(self.timing);
        match self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n")) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParEvent, PhaseEvent};

    fn phase(name: &str) -> TraceEvent {
        TraceEvent::Phase(PhaseEvent {
            name: name.into(),
            wall_ns: 42,
            alloc_bytes: 0,
            allocs: 0,
        })
    }

    #[test]
    fn timing_off_is_byte_stable_across_replays() {
        let run = || {
            let mut sink = JsonlSink::new(Vec::new()).with_timing(false);
            sink.record(&phase("toposort"));
            sink.record(&TraceEvent::Par(ParEvent {
                scope: "fd".into(),
                calls: 3,
                items: 100,
                parallel_calls: 1,
                workers_spawned: 2,
                busy_ns: 5,
            }));
            sink.finish().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn io_errors_are_latched_not_panicked() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record(&phase("fd"));
        sink.record(&phase("fd"));
        assert_eq!(sink.lines(), 0);
        assert!(sink.finish().is_err());
    }
}
