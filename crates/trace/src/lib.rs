//! Zero-cost-when-disabled observability for the snnmap pipeline.
//!
//! The mapping pipeline (partition → topo sort → HSC init → FD sweeps →
//! validate/repair → NoC sim) reports its internals through a single
//! narrow interface, the [`TraceSink`] trait. Instrumented code is
//! generic over `S: TraceSink + ?Sized` and guards every expensive probe
//! (per-sweep energy recomputation, `Instant::now()`, allocation
//! snapshots) behind [`TraceSink::enabled`]; with the default
//! [`NoopSink`], `enabled()` is statically `false`, so monomorphization
//! deletes the instrumentation entirely — the hot loops compile to the
//! same code as before the trace layer existed.
//!
//! Three sinks cover the use cases:
//!
//! | Sink           | Destination      | Use                                   |
//! |----------------|------------------|---------------------------------------|
//! | [`NoopSink`]   | —                | default; zero overhead                |
//! | [`JsonlSink`]  | any [`std::io::Write`] | `snnmap map --trace-out run.jsonl` |
//! | [`MemorySink`] | `Vec<TraceEvent>` | bench aggregation, tests             |
//! | [`ProgressSink`] | shared [`Progress`] cell | live job status in `snnmap-serve` |
//!
//! Events render to JSONL with **deterministic field order** and a
//! versioned `schema` field ([`schema::VERSION`]); timing-derived fields
//! are optional so deterministic runs replay byte-identically.
//!
//! # Examples
//!
//! ```
//! use snnmap_trace::{time_phase, MemorySink, NoopSink, TraceEvent, TraceSink};
//!
//! fn work<S: TraceSink + ?Sized>(sink: &mut S) -> u32 {
//!     time_phase(sink, "square", || 7 * 7)
//! }
//!
//! assert_eq!(work(&mut NoopSink), 49); // no events, no timers
//! let mut mem = MemorySink::new();
//! assert_eq!(work(&mut mem), 49);
//! assert!(matches!(mem.events()[0], TraceEvent::Phase(_)));
//! ```

#![deny(unsafe_code)] // `alloc` is the single audited exception
#![warn(missing_docs, missing_debug_implementations)]

pub mod alloc;
mod digest;
mod event;
mod jsonl;
mod memory;
mod progress;

pub use alloc::{snapshot as alloc_snapshot, AllocSnapshot, CountingAlloc};
pub use digest::{sha256_hex, Sha256};
pub use event::{
    CheckpointEvent, FdConfigEvent, FdDoneEvent, FdSweepEvent, NocEvent, ObjectiveEvent, ParEvent,
    PhaseEvent, RepairEvent, ResumeEvent, ReweightEvent, RunEvent, TraceEvent,
};
pub use jsonl::JsonlSink;
pub use memory::MemorySink;
pub use progress::{Progress, ProgressSink, ProgressSnapshot};

use std::time::Instant;

/// Receiver for pipeline trace events.
///
/// Implementations decide what to do with each [`TraceEvent`]; the
/// pipeline decides *whether to gather one at all* by checking
/// [`TraceSink::enabled`] first, so disabled sinks cost nothing — not
/// even the event construction.
pub trait TraceSink {
    /// Whether events should be gathered at all. Defaults to `true`;
    /// [`NoopSink`] overrides it to a constant `false` that the
    /// optimizer propagates through monomorphized pipeline code.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. Must not panic on I/O problems (latch them
    /// and surface at the end of the run instead).
    fn record(&mut self, event: &TraceEvent);
}

/// The disabled sink: `enabled()` is statically `false` and `record` is
/// unreachable in practice.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: &TraceEvent) {
        (**self).record(event);
    }
}

/// Runs `f`, emitting a [`PhaseEvent`] span (wall time + allocation
/// delta) named `name` when the sink is enabled. With a disabled sink
/// this is exactly `f()` — no timers, no snapshots.
pub fn time_phase<S: TraceSink + ?Sized, T>(sink: &mut S, name: &str, f: impl FnOnce() -> T) -> T {
    if !sink.enabled() {
        return f();
    }
    let a0 = alloc::snapshot();
    let t0 = Instant::now();
    let result = f();
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let da = alloc::snapshot().since(a0);
    sink.record(&TraceEvent::Phase(PhaseEvent {
        name: name.to_owned(),
        wall_ns,
        alloc_bytes: da.bytes,
        allocs: da.allocs,
    }));
    result
}

/// The versioned JSONL schema: event names, their required fields, and
/// the timing-only fields a `--trace-timing off` stream omits.
pub mod schema {
    /// Schema version stamped into every `run` header line.
    ///
    /// v2 added the resilient-execution vocabulary: the `fd_done.stop`
    /// field and the `checkpoint` / `resume` / `repair` events.
    ///
    /// v3 added the multi-core telemetry: `fd_sweep` gained the
    /// `select_ns` / `swap_ns` / `rescore_ns` timing breakdown, `par`
    /// gained `items` (deterministic) and `busy_ns`, and
    /// `par.parallel_calls` / `par.workers_spawned` became timing-only —
    /// the runtime granularity tuner makes fan-out decisions
    /// run-dependent, so only workload-stable fields stay in the
    /// deterministic set.
    ///
    /// v4 added the objective family: `fd_config` gained `objective`,
    /// and the `objective` (per-sweep per-term potential breakdown) and
    /// `reweight` (sim-in-the-loop weight update) events joined the
    /// vocabulary. Both are deterministic — no timing-only fields.
    pub const VERSION: u64 = 4;

    /// Phase-name vocabulary used by the shipped pipeline. Custom phases
    /// are permitted (the field is free-form), but these are the names
    /// CI and the bench harness rely on.
    pub const PHASES: &[&str] = &[
        "partition",
        "toposort",
        "hsc_init",
        "curve_init",
        "random_init",
        "fd",
        "validate",
        "repair",
        "noc_sim",
    ];

    /// `(event name, required fields, timing-only fields)` for every
    /// event kind. Required fields appear in exactly this order in the
    /// rendered JSONL; timing-only fields follow them when timing is on.
    pub const EVENTS: &[(&str, &[&str], &[&str])] = &[
        (
            "run",
            &[
                "schema",
                "event",
                "tool",
                "clusters",
                "connections",
                "mesh",
                "threads_requested",
                "threads_resolved",
            ],
            &[],
        ),
        ("phase", &["event", "name"], &["wall_ns", "alloc_bytes", "allocs"]),
        (
            "fd_config",
            &[
                "event",
                "potential",
                "tension",
                "objective",
                "lambda",
                "max_iterations",
                "time_budget_ms",
                "threads",
                "masked",
            ],
            &[],
        ),
        (
            "fd_sweep",
            &["event", "sweep", "queue", "cutoff", "applied", "dirty", "carried", "energy"],
            &["wall_ns", "select_ns", "swap_ns", "rescore_ns"],
        ),
        (
            "fd_done",
            &[
                "event",
                "iterations",
                "swaps",
                "initial_energy",
                "final_energy",
                "converged",
                "stop",
            ],
            &[],
        ),
        ("checkpoint", &["event", "sweep", "swaps", "energy"], &[]),
        ("resume", &["event", "sweep", "swaps", "initial_energy"], &[]),
        (
            "repair",
            &["event", "evicted", "moved", "region_cores", "energy_before", "energy_after"],
            &[],
        ),
        (
            "noc",
            &[
                "event",
                "cycles",
                "injected",
                "delivered",
                "rejected",
                "traversals",
                "total_latency",
                "max_latency",
                "detour_hops",
            ],
            &[],
        ),
        (
            "objective",
            &["event", "sweep", "energy", "congestion", "latency", "composite"],
            &[],
        ),
        (
            "reweight",
            &["event", "sweep", "source", "max_heat", "hottest_row", "hottest_col"],
            &[],
        ),
        (
            "par",
            &["event", "scope", "calls", "items"],
            &["parallel_calls", "workers_spawned", "busy_ns"],
        ),
    ];

    /// Looks up `(required, timing-only)` field lists for an event name.
    pub fn fields(event: &str) -> Option<(&'static [&'static str], &'static [&'static str])> {
        EVENTS
            .iter()
            .find(|(name, _, _)| *name == event)
            .map(|(_, required, timing)| (*required, *timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_skips_the_span() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        let v = time_phase(&mut sink, "x", || 11);
        assert_eq!(v, 11);
    }

    #[test]
    fn dyn_sinks_work_through_the_blanket_impl() {
        let mut mem = MemorySink::new();
        {
            let dyn_sink: &mut dyn TraceSink = &mut mem;
            assert!(dyn_sink.enabled());
            let mut wrapped = dyn_sink;
            time_phase(&mut wrapped, "span", || ());
        }
        assert_eq!(mem.len(), 1);
        match &mem.events()[0] {
            TraceEvent::Phase(p) => assert_eq!(p.name, "span"),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn schema_covers_every_event_kind() {
        for name in [
            "run",
            "phase",
            "fd_config",
            "fd_sweep",
            "fd_done",
            "checkpoint",
            "resume",
            "repair",
            "noc",
            "objective",
            "reweight",
            "par",
        ] {
            let (required, _) = schema::fields(name).expect(name);
            assert!(required.contains(&"event"), "{name}");
        }
        assert!(schema::fields("nope").is_none());
    }

    #[test]
    fn rendered_events_match_their_schema_field_lists() {
        // Render one of each kind with timing on and check the field
        // order equals required ++ timing-only.
        let events = [
            TraceEvent::Run(RunEvent {
                tool: "t".into(),
                clusters: 1,
                connections: 1,
                mesh_rows: 1,
                mesh_cols: 1,
                threads_requested: 0,
                threads_resolved: 1,
            }),
            TraceEvent::Phase(PhaseEvent {
                name: "fd".into(),
                wall_ns: 1,
                alloc_bytes: 2,
                allocs: 3,
            }),
            TraceEvent::FdConfig(FdConfigEvent {
                potential: "p".into(),
                tension: "t".into(),
                objective: "energy".into(),
                lambda: 0.3,
                max_iterations: None,
                time_budget_ms: None,
                threads: 1,
                masked: false,
            }),
            TraceEvent::FdSweep(FdSweepEvent {
                sweep: 1,
                queue: 1,
                cutoff: 1,
                applied: 1,
                dirty: 1,
                carried: 1,
                energy: 0.0,
                wall_ns: 1,
                select_ns: 1,
                swap_ns: 1,
                rescore_ns: 1,
            }),
            TraceEvent::FdDone(FdDoneEvent {
                iterations: 1,
                swaps: 1,
                initial_energy: 0.0,
                final_energy: 0.0,
                converged: true,
                stop: "converged".into(),
            }),
            TraceEvent::Checkpoint(CheckpointEvent { sweep: 1, swaps: 2, energy: 0.5 }),
            TraceEvent::Resume(ResumeEvent { sweep: 1, swaps: 2, initial_energy: 0.5 }),
            TraceEvent::Repair(RepairEvent {
                evicted: 1,
                moved: 2,
                region_cores: 3,
                energy_before: 1.0,
                energy_after: 0.5,
            }),
            TraceEvent::Noc(NocEvent {
                cycles: 1,
                injected: 1,
                delivered: 1,
                rejected: 0,
                traversals: 1,
                total_latency: 1,
                max_latency: 1,
                detour_hops: 0,
            }),
            TraceEvent::Objective(ObjectiveEvent {
                sweep: 1,
                energy: 1.0,
                congestion: 0.5,
                latency: 0.25,
                composite: 1.75,
            }),
            TraceEvent::Reweight(ReweightEvent {
                sweep: 8,
                source: "noc-sim".into(),
                max_heat: 12,
                hottest_row: 3,
                hottest_col: 4,
            }),
            TraceEvent::Par(ParEvent {
                scope: "total".into(),
                calls: 1,
                items: 1,
                parallel_calls: 1,
                workers_spawned: 1,
                busy_ns: 1,
            }),
        ];
        for e in &events {
            let (required, timing) = schema::fields(e.name()).unwrap();
            let line = e.render(true);
            let mut keys = Vec::new();
            // Top-level keys of a flat object: every `"name":` at depth 1.
            let body = line.strip_prefix('{').unwrap().strip_suffix('}').unwrap();
            let mut rest = body;
            while let Some(start) = rest.find('"') {
                let after = &rest[start + 1..];
                let end = after.find('"').unwrap();
                keys.push(&after[..end]);
                let tail = &after[end + 1..];
                debug_assert!(tail.starts_with(':'));
                // Skip past the value to the next comma at depth 1 (all
                // values here are scalars, so the next `,` delimits).
                match tail.find(",\"") {
                    Some(comma) => rest = &tail[comma + 1..],
                    None => break,
                }
            }
            let expect: Vec<&str> = required.iter().chain(timing.iter()).copied().collect();
            assert_eq!(keys, expect, "event {}", e.name());
        }
    }
}
