//! The trace event vocabulary and its deterministic JSONL rendering.
//!
//! Every event renders to a single JSON object whose **field order is
//! fixed** by this module (see [`crate::schema`] for the authoritative
//! field lists). Timing-derived fields (`wall_ns`, allocation deltas) are
//! emitted only when the sink asks for them, so two traces of the same
//! deterministic run with timing off are byte-identical.

/// One pipeline run: the header line of every trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEvent {
    /// Which tool produced the trace (e.g. `map`, `bench_trace`).
    pub tool: String,
    /// Number of clusters in the PCN being mapped.
    pub clusters: u32,
    /// Number of (directed) cluster-to-cluster connections.
    pub connections: u64,
    /// Mesh rows.
    pub mesh_rows: u16,
    /// Mesh columns.
    pub mesh_cols: u16,
    /// Worker threads as requested by the caller (`0` = auto).
    pub threads_requested: usize,
    /// Worker threads after auto-resolution.
    pub threads_resolved: usize,
}

/// A completed pipeline phase (toposort, HSC init, FD, validate, …).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEvent {
    /// Phase name; see [`crate::schema::PHASES`] for the vocabulary.
    pub name: String,
    /// Wall-clock nanoseconds (timing field).
    pub wall_ns: u64,
    /// Heap bytes requested during the phase (timing field; `0` unless
    /// the [`crate::alloc::CountingAlloc`] global allocator is installed).
    pub alloc_bytes: u64,
    /// Heap allocation calls during the phase (timing field).
    pub allocs: u64,
}

/// The FD configuration actually used, emitted once before the sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct FdConfigEvent {
    /// Potential field (`Debug` rendering of `Potential`).
    pub potential: String,
    /// Tension evaluation mode (`Debug` rendering of `TensionMode`).
    pub tension: String,
    /// Objective label (`energy`, `congestion`, `composite`).
    pub objective: String,
    /// Queue fraction λ.
    pub lambda: f64,
    /// Iteration cap, if any.
    pub max_iterations: Option<u64>,
    /// Wall-clock budget in milliseconds, if any.
    pub time_budget_ms: Option<u64>,
    /// Resolved worker-thread count.
    pub threads: usize,
    /// Whether a fault map constrains the swap space.
    pub masked: bool,
}

/// Convergence telemetry for one FD sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FdSweepEvent {
    /// 1-based sweep number.
    pub sweep: u64,
    /// Positive-tension pairs in this sweep's queue.
    pub queue: u64,
    /// λ-selection cutoff: how many queued pairs were eligible to apply.
    pub cutoff: u64,
    /// Swaps actually applied this sweep.
    pub applied: u64,
    /// Dirty pairs re-scored after the swaps.
    pub dirty: u64,
    /// Still-positive pairs carried into the next sweep's queue.
    pub carried: u64,
    /// System energy after the sweep.
    pub energy: f64,
    /// Wall-clock nanoseconds for the sweep (timing field).
    pub wall_ns: u64,
    /// Nanoseconds spent in top-λ selection (timing field).
    pub select_ns: u64,
    /// Nanoseconds spent applying swaps (timing field).
    pub swap_ns: u64,
    /// Nanoseconds spent re-scoring and re-collecting the queue
    /// (timing field).
    pub rescore_ns: u64,
}

/// Terminal FD statistics (mirrors `FdStats`).
#[derive(Debug, Clone, PartialEq)]
pub struct FdDoneEvent {
    /// Sweeps executed.
    pub iterations: u64,
    /// Total swaps applied.
    pub swaps: u64,
    /// Energy before the first sweep.
    pub initial_energy: f64,
    /// Energy after the last sweep.
    pub final_energy: f64,
    /// Whether the positive-tension queue drained.
    pub converged: bool,
    /// Stop reason label (`converged`, `deadline_expired`,
    /// `sweep_cap_reached`, `cancelled`).
    pub stop: String,
}

/// A checkpoint snapshot was flushed (mirrors `FdCheckpoint` counters).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEvent {
    /// Sweeps completed at the snapshot.
    pub sweep: u64,
    /// Swaps applied at the snapshot.
    pub swaps: u64,
    /// System energy at the snapshot.
    pub energy: f64,
}

/// An FD run resumed from a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeEvent {
    /// Sweeps already completed before this invocation.
    pub sweep: u64,
    /// Swaps already applied before this invocation.
    pub swaps: u64,
    /// System energy of the original input placement.
    pub initial_energy: f64,
}

/// An incremental fault repair completed (mirrors `RepairReport`).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairEvent {
    /// Clusters evicted off newly faulty hardware.
    pub evicted: u64,
    /// Clusters whose coordinate changed overall.
    pub moved: u64,
    /// Cores in the active repair region.
    pub region_cores: u64,
    /// System energy before the repair.
    pub energy_before: f64,
    /// System energy after the repair.
    pub energy_after: f64,
}

/// NoC simulation counters (mirrors `NocStats`).
#[derive(Debug, Clone, PartialEq)]
pub struct NocEvent {
    /// Simulated cycles.
    pub cycles: u64,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Injections rejected.
    pub rejected: u64,
    /// Link traversals.
    pub traversals: u64,
    /// Sum of per-packet latencies.
    pub total_latency: u64,
    /// Worst per-packet latency.
    pub max_latency: u64,
    /// Extra hops taken to route around dead links/cores.
    pub detour_hops: u64,
}

/// Per-term potential breakdown of one FD sweep under a non-energy
/// objective (composite descent telemetry). Emitted only when the sink is
/// enabled and the objective has congestion/latency terms; the values are
/// recomputed from scratch serially, so the line is thread-count
/// invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveEvent {
    /// 1-based sweep number the breakdown follows.
    pub sweep: u64,
    /// Pure energy term `M_ec`-style potential.
    pub energy: f64,
    /// Weighted congestion term (λc · Σ per-router cost).
    pub congestion: f64,
    /// Weighted latency-tail term (λt · Σ per-edge squared distance).
    pub latency: f64,
    /// The composite total the descent is driving down.
    pub composite: f64,
}

/// A sim-in-the-loop reweight fired between sweep batches: router heat
/// (from a `NocSim` run or the objective's own congestion map) was folded
/// back into the congestion weight field.
#[derive(Debug, Clone, PartialEq)]
pub struct ReweightEvent {
    /// 1-based sweep number after which the reweight applied.
    pub sweep: u64,
    /// Heat source label (`noc-sim`, `self`).
    pub source: String,
    /// Hottest router's heat value (weights normalize against this).
    pub max_heat: u64,
    /// Hottest router's mesh row (first on ties).
    pub hottest_row: u64,
    /// Hottest router's mesh column (first on ties).
    pub hottest_col: u64,
}

/// Thread-pool utilization delta from `snnmap_core::par` counters.
///
/// `parallel_calls` and `workers_spawned` are **timing fields**: the
/// runtime granularity tuner moves the serial/parallel cutoff based on
/// measured throughput, so whether a given call fans out varies between
/// runs even though its result never does. With timing off the line
/// carries only the run-stable fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ParEvent {
    /// Which pipeline scope the delta covers (phase name or `total`).
    pub scope: String,
    /// Parallel-helper invocations.
    pub calls: u64,
    /// Items handed to the parallel helpers (deterministic: depends only
    /// on the workload, never on the thread count or tuner state).
    pub items: u64,
    /// Invocations that actually went parallel (≥ 2 workers; timing
    /// field — the granularity tuner makes this run-dependent).
    pub parallel_calls: u64,
    /// Worker threads spawned, excluding the calling thread (timing
    /// field).
    pub workers_spawned: u64,
    /// Nanoseconds spent inside tuned parallel helpers (timing field).
    pub busy_ns: u64,
}

/// A single trace record; one JSONL line per event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run header (always the first event of a stream).
    Run(RunEvent),
    /// Completed pipeline phase span.
    Phase(PhaseEvent),
    /// FD configuration.
    FdConfig(FdConfigEvent),
    /// FD per-sweep telemetry.
    FdSweep(FdSweepEvent),
    /// FD terminal statistics.
    FdDone(FdDoneEvent),
    /// Checkpoint snapshot flushed.
    Checkpoint(CheckpointEvent),
    /// Run resumed from a checkpoint.
    Resume(ResumeEvent),
    /// Incremental fault repair completed.
    Repair(RepairEvent),
    /// NoC simulation counters.
    Noc(NocEvent),
    /// Per-term objective breakdown of one sweep.
    Objective(ObjectiveEvent),
    /// Sim-in-the-loop reweight applied.
    Reweight(ReweightEvent),
    /// Thread-pool utilization delta.
    Par(ParEvent),
}

impl TraceEvent {
    /// The `event` field value identifying this record's kind.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Run(_) => "run",
            TraceEvent::Phase(_) => "phase",
            TraceEvent::FdConfig(_) => "fd_config",
            TraceEvent::FdSweep(_) => "fd_sweep",
            TraceEvent::FdDone(_) => "fd_done",
            TraceEvent::Checkpoint(_) => "checkpoint",
            TraceEvent::Resume(_) => "resume",
            TraceEvent::Repair(_) => "repair",
            TraceEvent::Noc(_) => "noc",
            TraceEvent::Objective(_) => "objective",
            TraceEvent::Reweight(_) => "reweight",
            TraceEvent::Par(_) => "par",
        }
    }

    /// Renders the event as one JSON object with the fixed field order.
    ///
    /// With `timing = false` the wall-clock / allocation fields are
    /// omitted entirely, making deterministic runs byte-stable across
    /// replays.
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_trace::{FdDoneEvent, TraceEvent};
    ///
    /// let e = TraceEvent::FdDone(FdDoneEvent {
    ///     iterations: 3,
    ///     swaps: 10,
    ///     initial_energy: 8.0,
    ///     final_energy: 2.5,
    ///     converged: true,
    ///     stop: "converged".into(),
    /// });
    /// assert_eq!(
    ///     e.render(false),
    ///     "{\"event\":\"fd_done\",\"iterations\":3,\"swaps\":10,\
    ///      \"initial_energy\":8,\"final_energy\":2.5,\"converged\":true,\
    ///      \"stop\":\"converged\"}"
    /// );
    /// ```
    pub fn render(&self, timing: bool) -> String {
        let mut w = JsonWriter::new();
        match self {
            TraceEvent::Run(e) => {
                w.field_u64("schema", crate::schema::VERSION);
                w.field_str("event", self.name());
                w.field_str("tool", &e.tool);
                w.field_u64("clusters", u64::from(e.clusters));
                w.field_u64("connections", e.connections);
                w.field_str("mesh", &format!("{}x{}", e.mesh_rows, e.mesh_cols));
                w.field_u64("threads_requested", e.threads_requested as u64);
                w.field_u64("threads_resolved", e.threads_resolved as u64);
            }
            TraceEvent::Phase(e) => {
                w.field_str("event", self.name());
                w.field_str("name", &e.name);
                if timing {
                    w.field_u64("wall_ns", e.wall_ns);
                    w.field_u64("alloc_bytes", e.alloc_bytes);
                    w.field_u64("allocs", e.allocs);
                }
            }
            TraceEvent::FdConfig(e) => {
                w.field_str("event", self.name());
                w.field_str("potential", &e.potential);
                w.field_str("tension", &e.tension);
                w.field_str("objective", &e.objective);
                w.field_f64("lambda", e.lambda);
                w.field_opt_u64("max_iterations", e.max_iterations);
                w.field_opt_u64("time_budget_ms", e.time_budget_ms);
                w.field_u64("threads", e.threads as u64);
                w.field_bool("masked", e.masked);
            }
            TraceEvent::FdSweep(e) => {
                w.field_str("event", self.name());
                w.field_u64("sweep", e.sweep);
                w.field_u64("queue", e.queue);
                w.field_u64("cutoff", e.cutoff);
                w.field_u64("applied", e.applied);
                w.field_u64("dirty", e.dirty);
                w.field_u64("carried", e.carried);
                w.field_f64("energy", e.energy);
                if timing {
                    w.field_u64("wall_ns", e.wall_ns);
                    w.field_u64("select_ns", e.select_ns);
                    w.field_u64("swap_ns", e.swap_ns);
                    w.field_u64("rescore_ns", e.rescore_ns);
                }
            }
            TraceEvent::FdDone(e) => {
                w.field_str("event", self.name());
                w.field_u64("iterations", e.iterations);
                w.field_u64("swaps", e.swaps);
                w.field_f64("initial_energy", e.initial_energy);
                w.field_f64("final_energy", e.final_energy);
                w.field_bool("converged", e.converged);
                w.field_str("stop", &e.stop);
            }
            TraceEvent::Checkpoint(e) => {
                w.field_str("event", self.name());
                w.field_u64("sweep", e.sweep);
                w.field_u64("swaps", e.swaps);
                w.field_f64("energy", e.energy);
            }
            TraceEvent::Resume(e) => {
                w.field_str("event", self.name());
                w.field_u64("sweep", e.sweep);
                w.field_u64("swaps", e.swaps);
                w.field_f64("initial_energy", e.initial_energy);
            }
            TraceEvent::Repair(e) => {
                w.field_str("event", self.name());
                w.field_u64("evicted", e.evicted);
                w.field_u64("moved", e.moved);
                w.field_u64("region_cores", e.region_cores);
                w.field_f64("energy_before", e.energy_before);
                w.field_f64("energy_after", e.energy_after);
            }
            TraceEvent::Noc(e) => {
                w.field_str("event", self.name());
                w.field_u64("cycles", e.cycles);
                w.field_u64("injected", e.injected);
                w.field_u64("delivered", e.delivered);
                w.field_u64("rejected", e.rejected);
                w.field_u64("traversals", e.traversals);
                w.field_u64("total_latency", e.total_latency);
                w.field_u64("max_latency", e.max_latency);
                w.field_u64("detour_hops", e.detour_hops);
            }
            TraceEvent::Objective(e) => {
                w.field_str("event", self.name());
                w.field_u64("sweep", e.sweep);
                w.field_f64("energy", e.energy);
                w.field_f64("congestion", e.congestion);
                w.field_f64("latency", e.latency);
                w.field_f64("composite", e.composite);
            }
            TraceEvent::Reweight(e) => {
                w.field_str("event", self.name());
                w.field_u64("sweep", e.sweep);
                w.field_str("source", &e.source);
                w.field_u64("max_heat", e.max_heat);
                w.field_u64("hottest_row", e.hottest_row);
                w.field_u64("hottest_col", e.hottest_col);
            }
            TraceEvent::Par(e) => {
                w.field_str("event", self.name());
                w.field_str("scope", &e.scope);
                w.field_u64("calls", e.calls);
                w.field_u64("items", e.items);
                if timing {
                    w.field_u64("parallel_calls", e.parallel_calls);
                    w.field_u64("workers_spawned", e.workers_spawned);
                    w.field_u64("busy_ns", e.busy_ns);
                }
            }
        }
        w.finish()
    }
}

/// Minimal append-only JSON object writer with caller-controlled field
/// order. This is deliberately not a general serializer: the schema is
/// closed, so a handful of typed appenders keeps the byte output under
/// direct control.
struct JsonWriter {
    buf: String,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter { buf: String::from("{") }
    }

    fn key(&mut self, name: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(name); // field names are trusted literals
        self.buf.push_str("\":");
    }

    fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
    }

    fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.buf.push_str(&v.to_string());
    }

    fn field_opt_u64(&mut self, name: &str, v: Option<u64>) {
        self.key(name);
        match v {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
    }

    fn field_bool(&mut self, name: &str, v: bool) {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        if v.is_finite() {
            // Rust's shortest-roundtrip `Display` is deterministic and
            // never uses exponent notation, so the output is valid JSON.
            self.buf.push_str(&v.to_string());
        } else {
            // JSON has no NaN/±inf; `null` keeps the line parseable.
            self.buf.push_str("null");
        }
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escapes `v` per JSON string rules into `out`.
fn escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_event_leads_with_schema_version() {
        let e = TraceEvent::Run(RunEvent {
            tool: "map".into(),
            clusters: 10,
            connections: 40,
            mesh_rows: 4,
            mesh_cols: 8,
            threads_requested: 0,
            threads_resolved: 4,
        });
        let line = e.render(true);
        let lead = format!("{{\"schema\":{},\"event\":\"run\"", crate::schema::VERSION);
        assert!(line.starts_with(&lead), "{line}");
        assert!(line.contains("\"mesh\":\"4x8\""), "{line}");
    }

    #[test]
    fn timing_fields_are_omitted_when_disabled() {
        let e = TraceEvent::Phase(PhaseEvent {
            name: "fd".into(),
            wall_ns: 123,
            alloc_bytes: 456,
            allocs: 7,
        });
        assert_eq!(e.render(false), "{\"event\":\"phase\",\"name\":\"fd\"}");
        assert_eq!(
            e.render(true),
            "{\"event\":\"phase\",\"name\":\"fd\",\"wall_ns\":123,\
             \"alloc_bytes\":456,\"allocs\":7}"
        );
    }

    #[test]
    fn sweep_rendering_is_deterministic_and_ordered() {
        let e = TraceEvent::FdSweep(FdSweepEvent {
            sweep: 2,
            queue: 100,
            cutoff: 30,
            applied: 12,
            dirty: 240,
            carried: 55,
            energy: 1.25,
            wall_ns: 999,
            select_ns: 11,
            swap_ns: 22,
            rescore_ns: 33,
        });
        let a = e.render(false);
        assert_eq!(
            a,
            "{\"event\":\"fd_sweep\",\"sweep\":2,\"queue\":100,\"cutoff\":30,\
             \"applied\":12,\"dirty\":240,\"carried\":55,\"energy\":1.25}"
        );
        assert_eq!(a, e.render(false), "replay must be byte-stable");
        assert_eq!(
            e.render(true),
            "{\"event\":\"fd_sweep\",\"sweep\":2,\"queue\":100,\"cutoff\":30,\
             \"applied\":12,\"dirty\":240,\"carried\":55,\"energy\":1.25,\
             \"wall_ns\":999,\"select_ns\":11,\"swap_ns\":22,\"rescore_ns\":33}"
        );
    }

    #[test]
    fn par_tuning_dependent_fields_are_timing_only() {
        let e = TraceEvent::Par(ParEvent {
            scope: "total".into(),
            calls: 9,
            items: 1234,
            parallel_calls: 4,
            workers_spawned: 12,
            busy_ns: 777,
        });
        assert_eq!(
            e.render(false),
            "{\"event\":\"par\",\"scope\":\"total\",\"calls\":9,\"items\":1234}"
        );
        assert_eq!(
            e.render(true),
            "{\"event\":\"par\",\"scope\":\"total\",\"calls\":9,\"items\":1234,\
             \"parallel_calls\":4,\"workers_spawned\":12,\"busy_ns\":777}"
        );
    }

    #[test]
    fn optional_and_non_finite_values_render_as_null() {
        let e = TraceEvent::FdConfig(FdConfigEvent {
            potential: "L2Squared".into(),
            tension: "Exact".into(),
            objective: "energy".into(),
            lambda: f64::NAN,
            max_iterations: None,
            time_budget_ms: Some(1500),
            threads: 2,
            masked: false,
        });
        let line = e.render(false);
        assert!(line.contains("\"lambda\":null"), "{line}");
        assert!(line.contains("\"max_iterations\":null"), "{line}");
        assert!(line.contains("\"time_budget_ms\":1500"), "{line}");
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::Par(ParEvent {
            scope: "a\"b\\c\nd".into(),
            calls: 1,
            items: 0,
            parallel_calls: 0,
            workers_spawned: 0,
            busy_ns: 0,
        });
        assert!(e.render(false).contains("\"scope\":\"a\\\"b\\\\c\\nd\""));
    }
}
