//! In-memory sink for programmatic aggregation (bench harness, tests).

use crate::{TraceEvent, TraceSink};

/// Collects every event into a `Vec` for later inspection.
///
/// # Examples
///
/// ```
/// use snnmap_trace::{FdSweepEvent, MemorySink, TraceEvent, TraceSink};
///
/// let mut sink = MemorySink::new();
/// sink.record(&TraceEvent::FdSweep(FdSweepEvent {
///     sweep: 1, queue: 5, cutoff: 2, applied: 2, dirty: 8, carried: 3,
///     energy: 1.0, wall_ns: 0, select_ns: 0, swap_ns: 0, rescore_ns: 0,
/// }));
/// assert_eq!(sink.events().len(), 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The recorded events in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, yielding the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}
