//! A counting global allocator for per-phase allocation telemetry.
//!
//! Library crates in this workspace forbid `unsafe`; this module is the
//! one audited exception (a `GlobalAlloc` impl cannot be written without
//! it). The counter is passive: binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: snnmap_trace::CountingAlloc = snnmap_trace::CountingAlloc::new();
//! ```
//!
//! and phase spans then report heap-bytes/allocation-call deltas. When no
//! binary installs it, [`snapshot`] stays at zero and phase events simply
//! report `alloc_bytes: 0` — tracing continues to work, minus the
//! allocation columns.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Forwarding allocator that counts allocation calls and requested bytes.
///
/// Deallocations are deliberately not subtracted: the telemetry question
/// is "how much allocator traffic did this phase generate", not "what is
/// the live heap size", and a monotone counter makes deltas meaningful
/// even when another thread frees concurrently.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for use in `#[global_allocator]` statics.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Monotone allocation counters at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Total heap bytes requested so far.
    pub bytes: u64,
    /// Total allocation calls so far.
    pub allocs: u64,
}

impl AllocSnapshot {
    /// The counter delta from `earlier` to `self`.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            bytes: self.bytes.wrapping_sub(earlier.bytes),
            allocs: self.allocs.wrapping_sub(earlier.allocs),
        }
    }
}

/// Reads the current counters (all zero unless [`CountingAlloc`] is the
/// process's global allocator).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot { bytes: BYTES.load(Relaxed), allocs: ALLOCS.load(Relaxed) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_wrapping_and_monotone_friendly() {
        let a = AllocSnapshot { bytes: 100, allocs: 3 };
        let b = AllocSnapshot { bytes: 250, allocs: 7 };
        assert_eq!(b.since(a), AllocSnapshot { bytes: 150, allocs: 4 });
        assert_eq!(a.since(a), AllocSnapshot::default());
    }
}
