//! Live run progress shared across threads.
//!
//! A mapping service needs to answer "how far along is this job?" while
//! the Force-Directed engine is mid-run on another thread. The engine
//! already narrates its life through [`TraceSink`] events;
//! [`ProgressSink`] is the sink that folds that stream into a lock-free
//! [`Progress`] cell any number of observers can snapshot concurrently.
//!
//! # Examples
//!
//! ```
//! use snnmap_trace::{FdSweepEvent, Progress, ProgressSink, TraceEvent, TraceSink};
//! use std::sync::Arc;
//!
//! let progress = Arc::new(Progress::new());
//! let mut sink = ProgressSink::new(Arc::clone(&progress));
//! sink.record(&TraceEvent::FdSweep(FdSweepEvent {
//!     sweep: 3, queue: 10, cutoff: 3, applied: 2, dirty: 4, carried: 1,
//!     energy: 123.5, wall_ns: 0, select_ns: 0, swap_ns: 0, rescore_ns: 0,
//! }));
//! let snap = progress.snapshot();
//! assert_eq!(snap.sweeps, 3);
//! assert_eq!(snap.swaps, 2);
//! assert_eq!(snap.energy, Some(123.5));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{TraceEvent, TraceSink};

/// Shared progress cell: written by a [`ProgressSink`] on the worker
/// thread, snapshotted by observers (HTTP status handlers, progress
/// bars) on any other thread. All fields are relaxed atomics — each
/// snapshot field is individually coherent, which is all a progress
/// display needs.
#[derive(Debug)]
pub struct Progress {
    sweeps: AtomicU64,
    swaps: AtomicU64,
    /// Last observed energy as [`f64::to_bits`]; NaN bits mean "none yet".
    energy_bits: AtomicU64,
}

/// One observation of a [`Progress`] cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    /// Sweeps completed so far (cumulative across resume).
    pub sweeps: u64,
    /// Swaps applied so far (cumulative across resume).
    pub swaps: u64,
    /// Energy after the last completed sweep, if any sweep has run.
    pub energy: Option<f64>,
}

impl Progress {
    /// A fresh cell: zero sweeps/swaps, no energy yet.
    pub fn new() -> Self {
        Self {
            sweeps: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            energy_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Reads the current progress.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let bits = self.energy_bits.load(Ordering::Relaxed);
        let energy = f64::from_bits(bits);
        ProgressSnapshot {
            sweeps: self.sweeps.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            energy: (!energy.is_nan()).then_some(energy),
        }
    }
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`TraceSink`] that keeps a shared [`Progress`] cell current.
///
/// Folds `fd_sweep` / `resume` / `fd_done` events into the cell and
/// ignores everything else. Because `enabled()` is `true`, the engine
/// pays the per-sweep energy probe — that is the price of live energy
/// reporting, and it never changes the placement (tracing is
/// observation-only by construction).
#[derive(Debug)]
pub struct ProgressSink {
    progress: Arc<Progress>,
}

impl ProgressSink {
    /// Wraps a shared progress cell.
    pub fn new(progress: Arc<Progress>) -> Self {
        Self { progress }
    }

    /// The cell this sink updates.
    pub fn progress(&self) -> &Arc<Progress> {
        &self.progress
    }
}

impl TraceSink for ProgressSink {
    fn record(&mut self, event: &TraceEvent) {
        let p = &*self.progress;
        match event {
            TraceEvent::FdSweep(s) => {
                p.sweeps.store(s.sweep, Ordering::Relaxed);
                p.swaps.fetch_add(s.applied, Ordering::Relaxed);
                p.energy_bits.store(s.energy.to_bits(), Ordering::Relaxed);
            }
            // A resumed run starts from the checkpoint's cumulative
            // counters; later sweeps continue from there.
            TraceEvent::Resume(r) => {
                p.sweeps.store(r.sweep, Ordering::Relaxed);
                p.swaps.store(r.swaps, Ordering::Relaxed);
                p.energy_bits.store(r.initial_energy.to_bits(), Ordering::Relaxed);
            }
            TraceEvent::FdDone(d) => {
                p.sweeps.store(d.iterations, Ordering::Relaxed);
                p.swaps.store(d.swaps, Ordering::Relaxed);
                p.energy_bits.store(d.final_energy.to_bits(), Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FdDoneEvent, FdSweepEvent, ResumeEvent};

    fn sweep(n: u64, applied: u64, energy: f64) -> TraceEvent {
        TraceEvent::FdSweep(FdSweepEvent {
            sweep: n,
            queue: 10,
            cutoff: 5,
            applied,
            dirty: 0,
            carried: 0,
            energy,
            wall_ns: 0,
            select_ns: 0,
            swap_ns: 0,
            rescore_ns: 0,
        })
    }

    #[test]
    fn fresh_cell_reports_nothing_observed() {
        let p = Progress::default();
        assert_eq!(p.snapshot(), ProgressSnapshot { sweeps: 0, swaps: 0, energy: None });
    }

    #[test]
    fn folds_the_sweep_stream() {
        let progress = Arc::new(Progress::new());
        let mut sink = ProgressSink::new(Arc::clone(&progress));
        assert!(sink.enabled());
        sink.record(&sweep(1, 4, 90.0));
        sink.record(&sweep(2, 3, 80.5));
        let snap = sink.progress().snapshot();
        assert_eq!(snap.sweeps, 2);
        assert_eq!(snap.swaps, 7);
        assert_eq!(snap.energy, Some(80.5));
        sink.record(&TraceEvent::FdDone(FdDoneEvent {
            iterations: 3,
            swaps: 9,
            initial_energy: 100.0,
            final_energy: 77.25,
            converged: true,
            stop: "converged".into(),
        }));
        let snap = progress.snapshot();
        assert_eq!(snap.sweeps, 3);
        assert_eq!(snap.swaps, 9);
        assert_eq!(snap.energy, Some(77.25));
    }

    #[test]
    fn resume_restores_cumulative_counters() {
        let progress = Arc::new(Progress::new());
        let mut sink = ProgressSink::new(Arc::clone(&progress));
        sink.record(&TraceEvent::Resume(ResumeEvent {
            sweep: 17,
            swaps: 112,
            initial_energy: 55.5,
        }));
        let snap = progress.snapshot();
        assert_eq!(snap.sweeps, 17);
        assert_eq!(snap.swaps, 112);
        assert_eq!(snap.energy, Some(55.5));
        // The next sweep continues the cumulative swap count.
        sink.record(&sweep(18, 2, 54.0));
        assert_eq!(progress.snapshot().swaps, 114);
    }
}
