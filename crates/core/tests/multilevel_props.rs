//! Property tests for the multilevel pipeline.
//!
//! Two guarantees are property-tested here, per ISSUE 7:
//!
//! 1. **Coarsen/uncoarsen round-trip**: at every level of the hierarchy,
//!    expanding each coarse cluster back through `parent_of` recovers the
//!    finer level's cluster multiset exactly (every fine cluster appears
//!    in exactly one coarse cluster), and the graph's totals — neurons,
//!    synapses, and edge weight (inter + intra traffic) — are preserved.
//! 2. **Determinism**: the full multilevel pipeline produces an identical
//!    placement and identical FD statistics for `threads = 1, 2, 4`.

use proptest::prelude::*;
use snnmap_core::{coarsen, CoarsenConfig, Mapper, MultilevelConfig};
use snnmap_hw::Mesh;
use snnmap_model::{generators::random_pcn, Pcn};

fn conservation_at_every_level(pcn: &Pcn, cfg: &CoarsenConfig) -> Result<(), TestCaseError> {
    let levels = coarsen(pcn, cfg).expect("valid config");
    let mut fine: &Pcn = pcn;
    for (k, level) in levels.iter().enumerate() {
        let fine_n = fine.num_clusters();
        let coarse_n = level.pcn.num_clusters();
        prop_assert!(coarse_n < fine_n, "level {} must shrink the graph", k);
        prop_assert_eq!(level.parent_of.len(), fine_n as usize, "level {}", k);

        // Round-trip of the cluster multiset: every fine cluster lands in
        // exactly one coarse cluster, and every coarse cluster is hit.
        let mut children_per_coarse = vec![0u32; coarse_n as usize];
        let mut neurons = vec![0u64; coarse_n as usize];
        let mut synapses = vec![0u64; coarse_n as usize];
        for (f, &p) in level.parent_of.iter().enumerate() {
            prop_assert!(p < coarse_n, "level {}: parent id out of range", k);
            children_per_coarse[p as usize] += 1;
            neurons[p as usize] += u64::from(fine.neurons_in(f as u32));
            synapses[p as usize] += fine.synapses_in(f as u32);
        }
        let expanded: u32 = children_per_coarse.iter().sum();
        prop_assert_eq!(expanded, fine_n, "level {}: round-trip lost clusters", k);
        for (g, &count) in children_per_coarse.iter().enumerate() {
            prop_assert!(
                (1..=2).contains(&count),
                "level {}: coarse {} groups {} clusters (matching pairs at most 2)",
                k,
                g,
                count
            );
            prop_assert_eq!(
                u64::from(level.pcn.neurons_in(g as u32)),
                neurons[g],
                "level {}: coarse {} neuron sum",
                k,
                g
            );
            prop_assert_eq!(
                level.pcn.synapses_in(g as u32),
                synapses[g],
                "level {}: coarse {} synapse sum",
                k,
                g
            );
        }
        prop_assert_eq!(level.pcn.total_neurons(), fine.total_neurons(), "level {}", k);
        prop_assert_eq!(level.pcn.total_synapses(), fine.total_synapses(), "level {}", k);

        // Total edge weight is conserved: inter-cluster traffic either
        // stays on a coarse edge or moves into intra_traffic.
        let fine_total = fine.total_traffic() + fine.intra_traffic();
        let coarse_total = level.pcn.total_traffic() + level.pcn.intra_traffic();
        let tol = 1e-3 * fine_total.abs().max(1.0);
        prop_assert!(
            (fine_total - coarse_total).abs() <= tol,
            "level {}: traffic {} vs {}",
            k,
            fine_total,
            coarse_total
        );
        fine = &level.pcn;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn coarsen_round_trip_preserves_multiset_and_weight(
        n in 40u32..400,
        degree in 2.0f64..8.0,
        seed in 0u64..1000,
        target in 4u32..64,
    ) {
        let pcn = random_pcn(n, degree, seed).expect("generator accepts these sizes");
        let cfg = CoarsenConfig { target_clusters: target, ..CoarsenConfig::default() };
        conservation_at_every_level(&pcn, &cfg)?;
    }

    #[test]
    fn multilevel_placement_is_thread_count_independent(
        n in 150u32..400,
        seed in 0u64..500,
    ) {
        let pcn = random_pcn(n, 5.0, seed).expect("generator accepts these sizes");
        let mesh = Mesh::square_for(u64::from(n) + 8).expect("small mesh");
        let cfg = MultilevelConfig {
            coarsen: CoarsenConfig { target_clusters: 32, ..CoarsenConfig::default() },
            ..MultilevelConfig::default()
        };
        let reference = Mapper::builder()
            .multilevel(cfg.clone())
            .threads(1)
            .build()
            .map(&pcn, mesh)
            .expect("mapping succeeds");
        for threads in [2usize, 4] {
            let out = Mapper::builder()
                .multilevel(cfg.clone())
                .threads(threads)
                .build()
                .map(&pcn, mesh)
                .expect("mapping succeeds");
            prop_assert_eq!(
                &out.placement,
                &reference.placement,
                "threads={} diverged",
                threads
            );
            let (a, b) = (out.fd_stats.unwrap(), reference.fd_stats.as_ref().unwrap());
            prop_assert_eq!(a.swaps, b.swaps, "threads={}", threads);
            prop_assert_eq!(a.iterations, b.iterations, "threads={}", threads);
            prop_assert_eq!(
                a.final_energy.to_bits(),
                b.final_energy.to_bits(),
                "threads={}",
                threads
            );
        }
    }
}
