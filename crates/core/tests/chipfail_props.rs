//! Whole-chip-loss property tests: on random multi-chip boards with
//! random per-core capacity vectors, killing a random chip under a live
//! board-aware placement and running the incremental repair must
//!
//! * never leave a cluster on the dead chip, on any dead core, or over
//!   any surviving core's capacity — the only violation a repaired
//!   placement may carry is `Unplaced`, and exactly for the clusters the
//!   typed [`DegradedPlacement`] lists;
//! * be **thread-count invariant**: the repaired placement, the repair
//!   report, and the degraded outcome are identical for
//!   `threads = 1, 2, 4` (the serve daemon and every CLI invocation may
//!   run with different parallelism yet must agree byte-for-byte);
//! * degrade deterministically: repeating the same repair on the same
//!   inputs reproduces the same typed shortfall, never an error or a
//!   panic.

use proptest::prelude::*;
use snnmap_core::{validate_board, Mapper, RunBudget, Violation};
use snnmap_hw::{Board, CoreConstraints, FaultMap, Placement};
use snnmap_model::{Pcn, PcnBuilder};

const THREADS: [usize; 3] = [1, 2, 4];

/// The serve daemon's fixed online-repair knobs (`REPAIR_RADIUS`,
/// `REPAIR_SWEEPS` in `snnmap-serve`): the properties hold for any
/// values, but testing the deployed ones pins the deployed behaviour.
const REPAIR_RADIUS: u16 = 2;
const REPAIR_SWEEPS: u64 = 16;

/// A random board (2–9 chips of 4–16 cores each), a PCN whose every
/// cluster fits one core, and a chip to kill. Dependent values (cluster
/// sizes bounded by the sampled capacities, edge endpoints bounded by
/// the cluster count) come off the proptest RNG directly, the same
/// reproducible-shrinking idiom as `metric_props`.
fn board_workload() -> impl Strategy<Value = (Board, Pcn, u32)> {
    ((1u16..=3, 2u16..=3, 2u16..=4, 2u16..=4), (4u32..=16, 64u64..=1024)).prop_perturb(
        |((gr, gc, cr, cc), (npc, spc)), mut rng| {
            let board = Board::uniform(
                gr,
                gc,
                cr,
                cc,
                CoreConstraints::new(npc, spc).expect("nonzero caps"),
            )
            .expect("board dims fit u16");
            let cores = board.mesh().len() as u32;
            // 30–85% core fill: the healthy map always fits, chip loss
            // sometimes does not — both repair outcomes get exercised.
            let fill = 30 + rng.next_u32() % 56;
            let clusters = (cores * fill / 100).max(2);
            let mut b = PcnBuilder::new();
            for _ in 0..clusters {
                let n = 1 + rng.next_u32() % npc;
                let s = 1 + rng.next_u64() % spc;
                b.add_cluster(n, s);
            }
            let num_edges = 1 + (rng.next_u32() as usize) % (clusters as usize * 2);
            for _ in 0..num_edges {
                let from = rng.next_u32() % clusters;
                let to = rng.next_u32() % clusters;
                let w = 0.1 + (rng.next_u32() % 800) as f32 / 100.0;
                b.add_edge(from, to, w).expect("endpoints in range");
            }
            let chip = rng.next_u32() % board.num_chips();
            (board, b.build().expect("PCN builds"), chip)
        },
    )
}

/// Runs map → kill-chip → repair at one thread count.
fn map_and_repair(
    board: &Board,
    pcn: &Pcn,
    chip: u32,
    threads: usize,
) -> (Placement, snnmap_core::RepairReport, FaultMap) {
    let mapper = Mapper::builder().threads(threads).board(board.clone()).build();
    let healthy = mapper.map(pcn, board.mesh()).expect("healthy board map").placement;
    let previous = FaultMap::new(board.mesh());
    let mut current = previous.clone();
    current.kill_chip(board, chip).expect("chip on board");
    let mut repaired = healthy;
    let report = mapper
        .repair_incremental(
            pcn,
            &mut repaired,
            &previous,
            &current,
            REPAIR_RADIUS,
            RunBudget { max_sweeps: Some(REPAIR_SWEEPS), ..RunBudget::default() },
        )
        .expect("repair returns Ok even when degraded");
    (repaired, report, current)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any whole-chip loss, the repaired placement carries no
    /// dead-chip, dead-core, or capacity violation — only the typed
    /// degraded report's clusters may be unplaced, and all of them are.
    #[test]
    fn repair_never_violates_capacity_or_lands_on_dead_chips(
        (board, pcn, chip) in board_workload(),
    ) {
        let (repaired, report, faults) = map_and_repair(&board, &pcn, chip, 1);
        let validation = validate_board(&pcn, &repaired, Some(&faults), &board).unwrap();
        let expected_unplaced: Vec<u32> =
            report.degraded.as_ref().map(|d| d.unplaced.clone()).unwrap_or_default();
        let mut unplaced = Vec::new();
        for v in validation.violations() {
            match *v {
                Violation::Unplaced { cluster } => unplaced.push(cluster),
                ref other => prop_assert!(
                    false,
                    "repaired placement still violates the board: {other} (chip {chip} of {})",
                    board
                ),
            }
        }
        prop_assert_eq!(
            unplaced, expected_unplaced,
            "validator and degraded report disagree on who is unplaced"
        );
        if report.degraded.is_none() {
            prop_assert!(validation.is_ok());
        }
    }

    /// The whole map → kill → repair pipeline is identical at 1, 2 and
    /// 4 threads: same placement, same moves, same degraded outcome.
    #[test]
    fn chip_repair_is_thread_count_invariant(
        (board, pcn, chip) in board_workload(),
    ) {
        let (ref_placement, ref_report, _) = map_and_repair(&board, &pcn, chip, THREADS[0]);
        for &threads in &THREADS[1..] {
            let (placement, report, _) = map_and_repair(&board, &pcn, chip, threads);
            prop_assert!(
                placement == ref_placement,
                "threads={} repaired placement diverged from threads={}",
                threads, THREADS[0]
            );
            prop_assert_eq!(
                &report.evicted, &ref_report.evicted,
                "eviction moves diverged at threads={}", threads
            );
            prop_assert_eq!(report.moved, ref_report.moved);
            prop_assert_eq!(report.region_cores, ref_report.region_cores);
            prop_assert_eq!(
                &report.degraded, &ref_report.degraded,
                "degraded outcome diverged at threads={}", threads
            );
        }
    }

    /// Degraded mode is deterministic data, never a crash: repeating the
    /// identical repair reproduces the identical typed report, and its
    /// shortfall accounting matches the PCN's own totals.
    #[test]
    fn degraded_outcome_is_deterministic_and_accounts_for_demand(
        (board, pcn, chip) in board_workload(),
    ) {
        let (first_placement, first, _) = map_and_repair(&board, &pcn, chip, 1);
        let (second_placement, second, _) = map_and_repair(&board, &pcn, chip, 1);
        prop_assert!(first_placement == second_placement, "repair is not reproducible");
        prop_assert_eq!(&first.degraded, &second.degraded);
        if let Some(d) = &first.degraded {
            prop_assert!(!d.unplaced.is_empty());
            prop_assert!(d.unplaced.windows(2).all(|w| w[0] < w[1]), "unplaced not sorted");
            let (n, s) = d.unplaced.iter().fold((0u64, 0u64), |(n, s), &c| {
                (n + u64::from(pcn.neurons_in(c)), s + pcn.synapses_in(c))
            });
            prop_assert_eq!(d.demand_neurons, n);
            prop_assert_eq!(d.demand_synapses, s);
        }
    }
}
