//! Property tests on the Force-Directed engine's convergence contract.

use proptest::prelude::*;
use snnmap_core::{
    force_directed, hsc_placement, random_placement, toposort, FdConfig, Potential,
};
use snnmap_hw::{CostModel, Mesh};
use snnmap_metrics::energy;
use snnmap_model::generators::random_pcn;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FD is idempotent: re-running on a converged placement performs no
    /// further swaps (the converged state has no positive tension).
    #[test]
    fn fd_is_idempotent(seed in 0u64..500, lambda_pct in 1u32..10) {
        let pcn = random_pcn(36, 4.0, seed).unwrap();
        let mesh = Mesh::new(6, 6).unwrap();
        let cfg = FdConfig { lambda: lambda_pct as f64 / 10.0, ..FdConfig::default() };
        let mut p = random_placement(&pcn, mesh, seed).unwrap();
        let first = force_directed(&pcn, &mut p, &cfg).unwrap();
        prop_assert!(first.converged);
        let second = force_directed(&pcn, &mut p, &cfg).unwrap();
        prop_assert_eq!(second.swaps, 0, "second run must find nothing to do");
        prop_assert_eq!(second.iterations, 0);
    }

    /// The HSC+FD pipeline never loses to HSC alone, under any potential,
    /// measured by that potential's own objective *and* by M_ec when
    /// using the energy-model potential.
    #[test]
    fn pipeline_dominates_initialization(seed in 0u64..500) {
        let cost = CostModel::paper_target();
        let pcn = random_pcn(49, 4.0, seed).unwrap();
        let mesh = Mesh::new(7, 7).unwrap();
        let init = hsc_placement(&pcn, mesh).unwrap();
        let e_init = energy(&pcn, &init, cost).unwrap();
        let mut p = init.clone();
        force_directed(
            &pcn,
            &mut p,
            &FdConfig { potential: Potential::energy_model(cost), ..FdConfig::default() },
        )
        .unwrap();
        let e_fd = energy(&pcn, &p, cost).unwrap();
        prop_assert!(e_fd <= e_init + 1e-9, "{} > {}", e_fd, e_init);
    }

    /// FD statistics are internally consistent: energy delta equals the
    /// initial minus final report, and zero swaps implies equal energies.
    #[test]
    fn fd_stats_consistent(seed in 0u64..500) {
        let pcn = random_pcn(25, 3.0, seed).unwrap();
        let mesh = Mesh::new(5, 5).unwrap();
        let mut p = random_placement(&pcn, mesh, seed ^ 1).unwrap();
        let stats = force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        prop_assert!(stats.final_energy <= stats.initial_energy + 1e-9);
        if stats.swaps == 0 {
            prop_assert!((stats.final_energy - stats.initial_energy).abs() < 1e-9);
        }
    }

    /// Toposort respects every edge of a DAG (layered construction).
    #[test]
    fn toposort_respects_random_dags(
        edges in prop::collection::vec((0u32..30, 0u32..30), 1..80)
    ) {
        // Orient every pair forward to guarantee a DAG.
        let mut b = snnmap_model::PcnBuilder::new();
        for _ in 0..30 {
            b.add_cluster(1, 1);
        }
        for (a, t) in edges {
            if a != t {
                b.add_edge(a.min(t), a.max(t), 1.0).unwrap();
            }
        }
        let pcn = b.build().unwrap();
        let order = toposort(&pcn);
        let pos: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for (f, t, _) in pcn.iter_edges() {
            prop_assert!(pos[&f] < pos[&t], "edge {}->{} violated", f, t);
        }
    }
}
