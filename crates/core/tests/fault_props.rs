//! Property tests for fault-aware placement and Force-Directed
//! refinement: on any mesh up to 32×32 with up to 10% injected faults,
//! placement either completes while touching zero faulty cores or fails
//! with the typed [`CoreError::InsufficientCores`], and FD preserves
//! injectivity, occupancy consistency, and fault avoidance while never
//! increasing energy.

use proptest::prelude::*;
use snnmap_core::{
    force_directed_masked, hsc_placement_masked, random_placement_masked, CoreError, FdConfig,
};
use snnmap_hw::{FaultInjector, FaultMap, FaultPattern, Mesh, Placement};
use snnmap_model::generators::random_pcn;
use snnmap_model::Pcn;

fn inject(mesh: Mesh, rate: f64, seed: u64) -> FaultMap {
    let pattern = FaultPattern::Uniform { core_rate: rate, link_rate: 0.0 };
    FaultInjector::new(seed).inject(mesh, &pattern).expect("valid rate")
}

/// Asserts the outcome contract shared by every masked placement entry
/// point: complete, injective, fault-avoiding — or the typed
/// insufficiency error with accurate counts.
fn check_outcome(
    result: Result<Placement, CoreError>,
    pcn: &Pcn,
    mesh: Mesh,
    fm: &FaultMap,
) -> Result<(), TestCaseError> {
    let n = pcn.num_clusters();
    let healthy = mesh.len() - fm.num_dead_cores() as usize;
    match result {
        Ok(p) => {
            prop_assert!(n as usize <= healthy, "placement succeeded without room");
            prop_assert_eq!(p.placed_count(), n);
            prop_assert!(p.check_consistency().is_ok(), "{:?}", p.check_consistency());
            for (_, coord) in p.iter_placed() {
                prop_assert!(!fm.is_dead(coord), "cluster placed on dead core {coord}");
            }
        }
        Err(CoreError::InsufficientCores { clusters, healthy: h, total }) => {
            prop_assert!(n as usize > healthy, "spurious insufficiency error");
            prop_assert_eq!(clusters, n);
            prop_assert_eq!(h, healthy);
            prop_assert_eq!(total, mesh.len());
        }
        Err(e) => prop_assert!(false, "unexpected error: {e}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Masked Hilbert and random placements on meshes up to 32×32 with up
    /// to 10% dead cores: either every cluster lands on a distinct
    /// healthy core, or the typed insufficiency error reports the exact
    /// shortfall.
    #[test]
    fn masked_placement_avoids_faults_or_reports_insufficiency(
        rows in 2u16..=32,
        cols in 2u16..=32,
        rate in 0.0f64..0.10,
        load in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let mesh = Mesh::new(rows, cols).unwrap();
        let fm = inject(mesh, rate, seed);
        let n = ((mesh.len() as f64 * load).ceil() as u32).max(1);
        let pcn = random_pcn(n, (n - 1).min(2) as f64, seed).unwrap();
        check_outcome(hsc_placement_masked(&pcn, mesh, &fm), &pcn, mesh, &fm)?;
        check_outcome(random_placement_masked(&pcn, mesh, seed, &fm), &pcn, mesh, &fm)?;
    }

    /// The masked random placement is a pure function of its seed.
    #[test]
    fn masked_random_placement_is_deterministic_per_seed(
        side in 3u16..=16,
        rate in 0.0f64..0.10,
        seed in 0u64..1000,
    ) {
        let mesh = Mesh::new(side, side).unwrap();
        let fm = inject(mesh, rate, seed);
        let healthy = mesh.len() - fm.num_dead_cores() as usize;
        let n = (healthy as u32 / 2).max(1);
        let pcn = random_pcn(n, 1.0, seed).unwrap();
        let a = random_placement_masked(&pcn, mesh, seed, &fm).unwrap();
        let b = random_placement_masked(&pcn, mesh, seed, &fm).unwrap();
        for c in 0..n {
            prop_assert_eq!(a.coord_of(c), b.coord_of(c));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Force-Directed refinement under a fault mask keeps the placement
    /// injective and consistent, never moves a cluster onto a dead core,
    /// and never increases system energy.
    #[test]
    fn fd_swaps_preserve_invariants_under_fault_masks(
        side in 4u16..=10,
        rate in 0.0f64..0.10,
        seed in 0u64..500,
    ) {
        let mesh = Mesh::new(side, side).unwrap();
        let fm = inject(mesh, rate, seed);
        let healthy = mesh.len() - fm.num_dead_cores() as usize;
        let n = ((healthy * 3 / 4) as u32).max(4);
        let pcn = random_pcn(n, 2.0, seed).unwrap();
        let mut p = hsc_placement_masked(&pcn, mesh, &fm).unwrap();
        let config = FdConfig { max_iterations: Some(25), ..FdConfig::default() };
        let stats = force_directed_masked(&pcn, &mut p, &config, &fm).unwrap();
        prop_assert!(
            stats.final_energy <= stats.initial_energy + 1e-9,
            "energy rose: {} -> {}",
            stats.initial_energy,
            stats.final_energy
        );
        prop_assert_eq!(p.placed_count(), n);
        prop_assert!(p.check_consistency().is_ok(), "{:?}", p.check_consistency());
        for (_, coord) in p.iter_placed() {
            prop_assert!(!fm.is_dead(coord), "FD moved a cluster onto dead core {coord}");
        }
    }
}
