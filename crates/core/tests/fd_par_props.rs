//! Determinism property tests for the parallel Force-Directed engine:
//! on random PCNs over meshes up to 64×64 — including the fault-masked
//! path — `force_directed` must produce an **identical placement and
//! identical [`FdStats`]** for `threads = 1, 2, 4, 8`. Parallelism may
//! only change wall-clock time, never a single coordinate or statistic
//! (energies are compared via their bit patterns, not a tolerance).
//!
//! The whole suite runs against whichever coordinate scalar the build
//! selected: the default f64 SoA layout, or f32 under
//! `--features f32-coords`. Thread-count invariance must hold in both
//! builds — the f32 build is *self*-consistent across threads even
//! though its squared-potential energies round differently than f64's
//! (so cross-build placement digests legitimately diverge; DESIGN.md
//! §1c records which).

use proptest::prelude::*;
use snnmap_core::{
    force_directed, force_directed_masked, force_directed_traced,
    hsc_placement_masked_threaded, hsc_placement_threaded, FdConfig, FdStats,
    IncrementalCongestion, Objective, Potential,
};
use snnmap_hw::{CostModel, FaultInjector, FaultMap, FaultPattern, Mesh};
use snnmap_model::generators::random_pcn;
use snnmap_trace::JsonlSink;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Bitwise comparison of two stats records: `PartialEq` on the floats
/// would already fail on any rounding difference, but comparing bits also
/// distinguishes `-0.0` from `0.0` and documents the guarantee we make.
fn assert_stats_bits_equal(a: &FdStats, b: &FdStats, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.iterations, b.iterations, "iterations diverged: {}", ctx);
    prop_assert_eq!(a.swaps, b.swaps, "swaps diverged: {}", ctx);
    prop_assert_eq!(
        a.initial_energy.to_bits(),
        b.initial_energy.to_bits(),
        "initial energy bits diverged: {}",
        ctx
    );
    prop_assert_eq!(
        a.final_energy.to_bits(),
        b.final_energy.to_bits(),
        "final energy bits diverged: {}",
        ctx
    );
    prop_assert_eq!(a.converged, b.converged, "convergence flag diverged: {}", ctx);
    Ok(())
}

fn potential_from(idx: u8) -> Potential {
    match idx % 4 {
        0 => Potential::L2Squared,
        1 => Potential::L1,
        2 => Potential::L1Squared,
        _ => Potential::energy_model(CostModel::paper_target()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-free path: HSC init + capped FD agree across thread counts
    /// on meshes from 8×8 to 64×64.
    #[test]
    fn fd_is_thread_count_invariant(
        side_idx in 0usize..4,
        fill_pct in 60u32..=100,
        pot_idx in 0u8..4,
        seed in 0u64..1000,
    ) {
        let side = [8u16, 16, 32, 64][side_idx];
        let cores = side as u32 * side as u32;
        let clusters = (cores * fill_pct / 100).max(4);
        let pcn = random_pcn(clusters, 4.0, seed).unwrap();
        let mesh = Mesh::new(side, side).unwrap();
        // Larger meshes get a sweep cap so the suite stays fast; the cap
        // cannot hide divergence (every sweep is compared end-state).
        let cap = if side >= 32 { Some(12) } else { None };

        let init = hsc_placement_threaded(&pcn, mesh, 1).unwrap();
        let mut reference = None;
        for threads in THREADS {
            prop_assert_eq!(
                &hsc_placement_threaded(&pcn, mesh, threads).unwrap(),
                &init,
                "initial placement diverged at threads={}",
                threads
            );
            let cfg = FdConfig {
                potential: potential_from(pot_idx),
                max_iterations: cap,
                threads,
                ..FdConfig::default()
            };
            let mut p = init.clone();
            let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
            match &reference {
                None => reference = Some((p, stats)),
                Some((rp, rs)) => {
                    prop_assert_eq!(&p, rp, "placement diverged at threads={}", threads);
                    assert_stats_bits_equal(&stats, rs, &format!("threads={threads}"))?;
                }
            }
        }
    }

    /// Fault-masked path: dead cores constrain both the compacted Hilbert
    /// init and the FD swap moves; the thread count still changes nothing.
    #[test]
    fn masked_fd_is_thread_count_invariant(
        side_idx in 0usize..3,
        rate_pct in 1u32..=8,
        seed in 0u64..1000,
    ) {
        let side = [16u16, 32, 64][side_idx];
        let mesh = Mesh::new(side, side).unwrap();
        let pattern = FaultPattern::Uniform {
            core_rate: rate_pct as f64 / 100.0,
            link_rate: 0.0,
        };
        let fm: FaultMap = FaultInjector::new(seed).inject(mesh, &pattern).unwrap();
        let healthy = mesh.len() - fm.num_dead_cores() as usize;
        // Leave a little slack so the placement always fits.
        let clusters = (healthy as u32 * 9 / 10).max(4);
        let pcn = random_pcn(clusters, 4.0, seed ^ 0xA5A5).unwrap();
        let cap = if side >= 32 { Some(10) } else { None };

        let init = hsc_placement_masked_threaded(&pcn, mesh, &fm, 1).unwrap();
        let mut reference = None;
        for threads in THREADS {
            prop_assert_eq!(
                &hsc_placement_masked_threaded(&pcn, mesh, &fm, threads).unwrap(),
                &init,
                "masked initial placement diverged at threads={}",
                threads
            );
            let cfg = FdConfig { max_iterations: cap, threads, ..FdConfig::default() };
            let mut p = init.clone();
            let stats = force_directed_masked(&pcn, &mut p, &cfg, &fm).unwrap();
            for (_, coord) in p.iter_placed() {
                prop_assert!(!fm.is_dead(coord), "swap onto dead core {}", coord);
            }
            match &reference {
                None => reference = Some((p, stats)),
                Some((rp, rs)) => {
                    prop_assert_eq!(&p, rp, "masked placement diverged at threads={}", threads);
                    assert_stats_bits_equal(&stats, rs, &format!("masked threads={threads}"))?;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The delta-maintained congestion map must bit-equal a from-scratch
    /// rebuild after *any* sequence of swap moves — the invariant that
    /// lets the engine pay O(edges-touched) instead of O(network) per
    /// swap. The fixed-point cells make "bit-equal" meaningful: no
    /// tolerance, `i64` equality.
    #[test]
    fn incremental_congestion_bit_equals_a_rebuild_after_random_swaps(
        clusters in 4u32..=48,
        moves in proptest::collection::vec((0u32..48, 0u32..48), 1..40),
        seed in 0u64..1000,
    ) {
        let pcn = random_pcn(clusters, 4.0, seed).unwrap();
        let (rows, cols) = (8u16, 8u16);
        let mut coords: Vec<(u16, u16)> =
            (0..clusters).map(|c| ((c as u16) / cols, (c as u16) % cols)).collect();
        let mut inc = IncrementalCongestion::build(&pcn, &coords, rows, cols);
        // The full directed edge list, enumerated once (the same edges
        // `build` folds in).
        let edges: Vec<(u32, u32, f64)> = (0..clusters)
            .flat_map(|s| pcn.out_edges(s).map(move |(t, w)| (s, t, f64::from(w))))
            .collect();
        for &(i, j) in &moves {
            let (a, b) = (i % clusters, j % clusters);
            if a == b {
                continue;
            }
            // A swap move, maintained as deltas: peel every edge that
            // touches a moved endpoint, move, re-add at the new coords.
            for &(s, t, w) in &edges {
                if s == a || s == b || t == a || t == b {
                    inc.remove_edge(coords[s as usize], coords[t as usize], w);
                }
            }
            coords.swap(a as usize, b as usize);
            for &(s, t, w) in &edges {
                if s == a || s == b || t == a || t == b {
                    inc.add_edge(coords[s as usize], coords[t as usize], w);
                }
            }
        }
        let rebuilt = IncrementalCongestion::build(&pcn, &coords, rows, cols);
        prop_assert_eq!(inc.map(), rebuilt.map(), "delta map diverged from rebuild");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Composite refinement keeps both halves of the objective contract:
    /// the per-sweep objective breakdown (and the final placement/stats)
    /// is byte-identical across thread counts, and the composite total
    /// never rises sweep over sweep — Exact tension applies only swaps
    /// whose recomputed composite delta is positive.
    #[test]
    fn composite_fd_is_thread_invariant_and_descends_monotonically(
        fill_pct in 50u32..=95,
        lc_idx in 0usize..4,
        lt_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let mesh = Mesh::new(12, 12).unwrap();
        let clusters = (144 * fill_pct / 100).max(8);
        let pcn = random_pcn(clusters, 4.0, seed).unwrap();
        let objective = Objective::Composite {
            lambda_c: [0.5, 1.0, 2.0, 4.0][lc_idx],
            lambda_t: [0.0, 0.1, 0.5][lt_idx],
        };
        let init = hsc_placement_threaded(&pcn, mesh, 1).unwrap();
        let mut reference = None;
        for threads in THREADS {
            let cfg = FdConfig {
                objective,
                max_iterations: Some(10),
                threads,
                ..FdConfig::default()
            };
            let mut p = init.clone();
            let mut sink = JsonlSink::new(Vec::new()).with_timing(false);
            let stats = force_directed_traced(&pcn, &mut p, &cfg, &mut sink).unwrap();
            let trace = String::from_utf8(sink.finish().unwrap()).unwrap();
            // The raw JSON tokens of the per-sweep composite totals:
            // compared as *bytes* across threads, parsed for descent.
            let series: Vec<String> = trace
                .lines()
                .filter(|l| l.contains("\"event\":\"objective\""))
                .map(|l| {
                    l.split("\"composite\":")
                        .nth(1)
                        .expect("objective event carries a composite field")
                        .split([',', '}'])
                        .next()
                        .unwrap()
                        .to_string()
                })
                .collect();
            prop_assert_eq!(
                series.len() as u64,
                stats.iterations,
                "one objective event per sweep (threads={})",
                threads
            );
            let mut prev = f64::INFINITY;
            for (i, tok) in series.iter().enumerate() {
                let v: f64 = tok.parse().expect("composite is a finite number");
                // Tiny slack for re-summation noise: the composite is
                // re-accumulated from blocks each sweep, while descent
                // is guaranteed on the exact per-swap deltas.
                prop_assert!(
                    v <= prev + prev.abs().max(1.0) * 1e-9,
                    "sweep {}: composite rose {} -> {} (threads={})",
                    i + 1,
                    prev,
                    v,
                    threads
                );
                prev = v;
            }
            match &reference {
                None => reference = Some((p, stats, series)),
                Some((rp, rs, rseries)) => {
                    prop_assert_eq!(&p, rp, "placement diverged at threads={}", threads);
                    assert_stats_bits_equal(&stats, rs, &format!("composite threads={threads}"))?;
                    prop_assert_eq!(
                        &series,
                        rseries,
                        "objective breakdown bytes diverged at threads={}",
                        threads
                    );
                }
            }
        }
    }
}

/// Sim-in-the-loop self-reweighting (no external hook): the engine folds
/// its own congestion heat into the weight field every 3 sweeps. The
/// reweight boundary is serial by design, so the thread count must still
/// change nothing — placement and stats bits included.
#[test]
fn hookless_reweighting_is_thread_count_invariant() {
    let pcn = random_pcn(180, 4.0, 13).unwrap();
    let mesh = Mesh::new(16, 16).unwrap();
    let init = hsc_placement_threaded(&pcn, mesh, 1).unwrap();
    let mut reference = None;
    for threads in THREADS {
        let cfg = FdConfig {
            objective: Objective::Congestion { lambda_c: 2.0 },
            reweight_every: Some(3),
            max_iterations: Some(12),
            threads,
            ..FdConfig::default()
        };
        let mut p = init.clone();
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        match &reference {
            None => reference = Some((p, stats)),
            Some((rp, rs)) => {
                assert_eq!(&p, rp, "placement diverged at threads={threads}");
                assert_eq!(stats.iterations, rs.iterations, "threads={threads}");
                assert_eq!(stats.swaps, rs.swaps, "threads={threads}");
                assert_eq!(
                    stats.final_energy.to_bits(),
                    rs.final_energy.to_bits(),
                    "energy bits diverged at threads={threads}"
                );
            }
        }
    }
}

/// Every potential kernel, one fixed mid-size workload, all thread
/// counts: a deterministic sweep over the monomorphized kernel set so a
/// regression in any single kernel's SoA hot path (f64 or f32 build)
/// fails by name rather than only under proptest sampling.
#[test]
fn every_kernel_is_thread_count_invariant() {
    let pcn = random_pcn(200, 4.0, 11).unwrap();
    let mesh = Mesh::new(16, 16).unwrap();
    let init = hsc_placement_threaded(&pcn, mesh, 1).unwrap();
    for potential in [
        Potential::L1,
        Potential::L1Squared,
        Potential::L2Squared,
        Potential::energy_model(CostModel::paper_target()),
    ] {
        let mut reference = None;
        for threads in THREADS {
            let cfg = FdConfig {
                potential,
                max_iterations: Some(15),
                threads,
                ..FdConfig::default()
            };
            let mut p = init.clone();
            let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
            match &reference {
                None => reference = Some((p, stats)),
                Some((rp, rs)) => {
                    assert_eq!(&p, rp, "{potential:?}: placement diverged at threads={threads}");
                    assert_eq!(stats.swaps, rs.swaps, "{potential:?} threads={threads}");
                    assert_eq!(
                        stats.final_energy.to_bits(),
                        rs.final_energy.to_bits(),
                        "{potential:?}: energy bits diverged at threads={threads}"
                    );
                }
            }
        }
    }
}

/// One deterministic full-convergence run (no caps): the strongest form
/// of the guarantee on a mid-size mesh, exercised every test run rather
/// than under proptest shrinking.
#[test]
fn full_convergence_is_thread_count_invariant() {
    let pcn = random_pcn(240, 4.0, 7).unwrap();
    let mesh = Mesh::new(16, 16).unwrap();
    let init = hsc_placement_threaded(&pcn, mesh, 1).unwrap();
    let mut reference = None;
    for threads in THREADS {
        let cfg = FdConfig { threads, ..FdConfig::default() };
        let mut p = init.clone();
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        assert!(stats.converged, "threads={threads} failed to converge");
        match &reference {
            None => reference = Some((p, stats)),
            Some((rp, rs)) => {
                assert_eq!(&p, rp, "placement diverged at threads={threads}");
                assert_eq!(stats.iterations, rs.iterations);
                assert_eq!(stats.swaps, rs.swaps);
                assert_eq!(stats.final_energy.to_bits(), rs.final_energy.to_bits());
            }
        }
    }
}
