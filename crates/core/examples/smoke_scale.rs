use std::time::Instant;

use snnmap_hw::CoreConstraints;
use snnmap_model::generators::{table3_suite};
use snnmap_model::PartitionPolicy;

fn main() {
    for b in table3_suite() {
        if b.row.name.starts_with("DNN_4B") || b.row.name.starts_with("DNN_268M") || b.row.name.starts_with("CNN_268M") {
            continue; // big ones later
        }
        let t = Instant::now();
        let g = b.layer_graph(0);
        let pcn = g
            .partition_analytic(CoreConstraints::new(4096, u64::MAX).unwrap(), PartitionPolicy::table3())
            .unwrap();
        println!(
            "{:<16} clusters {:>8} (paper {:>8})  conns {:>9} (paper {:>9})  neurons {:>12}  syn {:>15}  [{:?}]",
            b.row.name,
            pcn.num_clusters(),
            b.row.clusters,
            pcn.num_connections(),
            b.row.connections,
            g.num_neurons(),
            g.num_synapses(),
            t.elapsed()
        );
    }
}
