//! Initial placement along space-filling curves (§4.2).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snnmap_curves::{Gilbert, Hilbert, SpaceFillingCurve};
use snnmap_hw::{Mesh, Placement};
use snnmap_model::Pcn;

use crate::{toposort, CoreError};

/// Places a topologically sorted cluster sequence along a curve's
/// traversal: the `i`-th cluster of `order` lands on the `i`-th mesh
/// coordinate the curve visits (eq. 16–17).
///
/// When the PCN has fewer clusters than the mesh has cores, the tail of
/// the traversal stays empty — matching the paper's non-full systems
/// (e.g. 251 clusters on a 16×16 mesh).
///
/// # Errors
///
/// [`CoreError::MeshTooSmall`] if `order` outnumbers the cores;
/// [`CoreError::Curve`] if the curve rejects the mesh.
///
/// # Examples
///
/// ```
/// use snnmap_core::sequence_placement;
/// use snnmap_curves::ZigZag;
/// use snnmap_hw::{Coord, Mesh};
///
/// let order = vec![2, 0, 1];
/// let p = sequence_placement(&order, &ZigZag, Mesh::new(2, 2)?)?;
/// assert_eq!(p.coord_of(2), Some(Coord::new(0, 0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sequence_placement(
    order: &[u32],
    curve: &dyn SpaceFillingCurve,
    mesh: Mesh,
) -> Result<Placement, CoreError> {
    if order.len() > mesh.len() {
        return Err(CoreError::MeshTooSmall { clusters: order.len() as u32, cores: mesh.len() });
    }
    let traversal = curve.traversal(mesh)?;
    let mut p = Placement::new_unplaced(mesh, order.len() as u32);
    for (i, &c) in order.iter().enumerate() {
        p.place(c, traversal[i])?;
    }
    Ok(p)
}

/// The paper's initial placement `P_init = Hilbert ∘ Seq` (§4.2.3):
/// topologically sorts the PCN (Algorithm 2) and lays the sequence along
/// a Hilbert curve.
///
/// On `2^k` square meshes the classic [`Hilbert`] curve is used; on any
/// other rectangle the generalized [`Gilbert`] curve (Appendix A) takes
/// over, exactly as the paper prescribes for arbitrary system sizes.
///
/// # Errors
///
/// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores.
///
/// # Examples
///
/// ```
/// use snnmap_core::hsc_placement;
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(200, 4.0, 3)?;
/// let p = hsc_placement(&pcn, Mesh::new(15, 15)?)?; // non-pow2 is fine
/// assert!(p.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn hsc_placement(pcn: &Pcn, mesh: Mesh) -> Result<Placement, CoreError> {
    let order = toposort(pcn);
    let pow2_square =
        mesh.rows() == mesh.cols() && (mesh.rows() as u32).is_power_of_two();
    if pow2_square {
        sequence_placement(&order, &Hilbert, mesh)
    } else {
        sequence_placement(&order, &Gilbert, mesh)
    }
}

/// The baseline: clusters shuffled uniformly over the cores (§5.1.3,
/// "randomly mapping"). Deterministic per seed.
///
/// # Errors
///
/// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores.
pub fn random_placement(pcn: &Pcn, mesh: Mesh, seed: u64) -> Result<Placement, CoreError> {
    let n = pcn.num_clusters();
    if n as usize > mesh.len() {
        return Err(CoreError::MeshTooSmall { clusters: n, cores: mesh.len() });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cores: Vec<usize> = (0..mesh.len()).collect();
    cores.shuffle(&mut rng);
    let mut p = Placement::new_unplaced(mesh, n);
    for c in 0..n {
        p.place(c, mesh.coord_of_index(cores[c as usize]))?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::CostModel;
    use snnmap_metrics::energy;
    use snnmap_model::generators::random_pcn;
    use snnmap_model::PcnBuilder;

    fn chain_pcn(n: u32) -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..n {
            b.add_cluster(1, 1);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_on_hilbert_is_all_unit_hops() {
        // A chain in topological order follows the curve, so every
        // connection spans exactly one hop — the ideal placement.
        let pcn = chain_pcn(16);
        let p = hsc_placement(&pcn, Mesh::new(4, 4).unwrap()).unwrap();
        for (f, t, _) in pcn.iter_edges() {
            assert_eq!(p.distance(f, t).unwrap(), 1);
        }
    }

    #[test]
    fn partial_mesh_leaves_tail_empty() {
        let pcn = chain_pcn(5);
        let p = hsc_placement(&pcn, Mesh::new(3, 3).unwrap()).unwrap();
        assert!(p.is_complete());
        assert_eq!(p.placed_count(), 5);
        p.check_consistency().unwrap();
    }

    #[test]
    fn non_pow2_meshes_use_gilbert() {
        let pcn = chain_pcn(35);
        let p = hsc_placement(&pcn, Mesh::new(5, 7).unwrap()).unwrap();
        assert!(p.is_complete());
        for (f, t, _) in pcn.iter_edges() {
            assert_eq!(p.distance(f, t).unwrap(), 1);
        }
    }

    #[test]
    fn too_small_mesh_errors() {
        let pcn = chain_pcn(10);
        assert!(matches!(
            hsc_placement(&pcn, Mesh::new(3, 3).unwrap()),
            Err(CoreError::MeshTooSmall { clusters: 10, cores: 9 })
        ));
        assert!(matches!(
            random_placement(&pcn, Mesh::new(3, 3).unwrap(), 0),
            Err(CoreError::MeshTooSmall { .. })
        ));
    }

    #[test]
    fn random_placement_is_seeded_and_valid() {
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let a = random_placement(&pcn, mesh, 7).unwrap();
        let b = random_placement(&pcn, mesh, 7).unwrap();
        let c = random_placement(&pcn, mesh, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        a.check_consistency().unwrap();
    }

    #[test]
    fn hsc_beats_random_on_energy() {
        // The core quantitative claim of §4.2 in miniature.
        let pcn = random_pcn(256, 4.0, 5).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let cm = CostModel::paper_target();
        let hsc = energy(&pcn, &hsc_placement(&pcn, mesh).unwrap(), cm).unwrap();
        let rnd = energy(&pcn, &random_placement(&pcn, mesh, 3).unwrap(), cm).unwrap();
        assert!(hsc < rnd, "hsc {hsc} should beat random {rnd}");
    }

    #[test]
    fn sequence_placement_respects_order() {
        let order = vec![3, 1, 4, 0, 2];
        let mesh = Mesh::new(3, 3).unwrap();
        let p = sequence_placement(&order, &Hilbert, Mesh::new(4, 4).unwrap()).unwrap();
        assert_eq!(p.coord_of(3), Some(snnmap_hw::Coord::new(0, 0)));
        let _ = mesh;
    }
}
