//! Initial placement along space-filling curves (§4.2).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snnmap_curves::{masked_traversal, Gilbert, Hilbert, SpaceFillingCurve};
use snnmap_hw::{Board, Coord, FaultMap, Mesh, Placement};
use snnmap_model::Pcn;

use crate::{par, toposort, CoreError};

/// Checks that `n` clusters fit on the healthy cores of `mesh` under an
/// optional fault map, producing the most specific error available.
pub(crate) fn check_capacity(
    n: u32,
    mesh: Mesh,
    faults: Option<&FaultMap>,
) -> Result<(), CoreError> {
    if n as usize > mesh.len() {
        return Err(CoreError::MeshTooSmall { clusters: n, cores: mesh.len() });
    }
    if let Some(fm) = faults {
        if fm.mesh() != mesh {
            return Err(CoreError::Hw(snnmap_hw::HwError::InvalidFaultSpec {
                message: format!("fault map covers {} but placement targets {mesh}", fm.mesh()),
            }));
        }
        if n as usize > fm.healthy_cores() {
            return Err(CoreError::InsufficientCores {
                clusters: n,
                healthy: fm.healthy_cores(),
                total: mesh.len(),
            });
        }
    }
    Ok(())
}

/// Builds an unplaced placement, masked when a fault map is supplied.
fn fresh_placement(
    mesh: Mesh,
    n: u32,
    faults: Option<&FaultMap>,
) -> Result<Placement, CoreError> {
    match faults {
        Some(fm) => Ok(Placement::new_unplaced_masked(mesh, n, fm)?),
        None => Ok(Placement::new_unplaced(mesh, n)),
    }
}

/// Places a topologically sorted cluster sequence along a curve's
/// traversal: the `i`-th cluster of `order` lands on the `i`-th mesh
/// coordinate the curve visits (eq. 16–17).
///
/// When the PCN has fewer clusters than the mesh has cores, the tail of
/// the traversal stays empty — matching the paper's non-full systems
/// (e.g. 251 clusters on a 16×16 mesh).
///
/// # Errors
///
/// [`CoreError::MeshTooSmall`] if `order` outnumbers the cores;
/// [`CoreError::Curve`] if the curve rejects the mesh.
///
/// # Examples
///
/// ```
/// use snnmap_core::sequence_placement;
/// use snnmap_curves::ZigZag;
/// use snnmap_hw::{Coord, Mesh};
///
/// let order = vec![2, 0, 1];
/// let p = sequence_placement(&order, &ZigZag, Mesh::new(2, 2)?)?;
/// assert_eq!(p.coord_of(2), Some(Coord::new(0, 0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sequence_placement(
    order: &[u32],
    curve: &dyn SpaceFillingCurve,
    mesh: Mesh,
) -> Result<Placement, CoreError> {
    sequence_placement_impl(order, curve, mesh, None)
}

/// Fault-aware [`sequence_placement`]: the curve traversal is *compacted*
/// over the healthy cores, so the `i`-th cluster lands on the `i`-th
/// *surviving* core the curve visits. Dead cores are skipped rather than
/// left as holes in the sequence, preserving as much curve locality as the
/// fault pattern allows.
///
/// # Errors
///
/// [`CoreError::InsufficientCores`] when the survivors cannot hold the
/// sequence; otherwise as [`sequence_placement`].
pub fn sequence_placement_masked(
    order: &[u32],
    curve: &dyn SpaceFillingCurve,
    mesh: Mesh,
    faults: &FaultMap,
) -> Result<Placement, CoreError> {
    sequence_placement_impl(order, curve, mesh, Some(faults))
}

fn sequence_placement_impl(
    order: &[u32],
    curve: &dyn SpaceFillingCurve,
    mesh: Mesh,
    faults: Option<&FaultMap>,
) -> Result<Placement, CoreError> {
    check_capacity(order.len() as u32, mesh, faults)?;
    let traversal = match faults {
        Some(fm) => masked_traversal(curve, mesh, |c| !fm.is_dead(c))?,
        None => curve.traversal(mesh)?,
    };
    place_along(order, &traversal, mesh, faults)
}

/// Lays `order[i]` on `traversal[i]`.
fn place_along(
    order: &[u32],
    traversal: &[Coord],
    mesh: Mesh,
    faults: Option<&FaultMap>,
) -> Result<Placement, CoreError> {
    let mut p = fresh_placement(mesh, order.len() as u32, faults)?;
    for (i, &c) in order.iter().enumerate() {
        p.place(c, traversal[i])?;
    }
    Ok(p)
}

/// Builds the classic Hilbert traversal of a `2^k` square mesh across up
/// to `threads` workers, using the closed-form [`Hilbert::d2xy`] per
/// index. Identical to `Hilbert.traversal(mesh)` for every thread count
/// (each element is a pure function of its index); a fault mask is then
/// applied in curve order, matching [`masked_traversal`].
fn hilbert_traversal_par(
    mesh: Mesh,
    faults: Option<&FaultMap>,
    threads: usize,
) -> Vec<Coord> {
    let side = mesh.rows() as u32;
    debug_assert!(mesh.rows() == mesh.cols() && side.is_power_of_two());
    let mut traversal = vec![Coord::new(0, 0); mesh.len()];
    par::par_init(threads, &mut traversal, |d| {
        let (x, y) = Hilbert::d2xy(side, d as u64);
        Coord::new(x as u16, y as u16)
    });
    match faults {
        Some(fm) => traversal.into_iter().filter(|&c| !fm.is_dead(c)).collect(),
        None => traversal,
    }
}

/// The paper's initial placement `P_init = Hilbert ∘ Seq` (§4.2.3):
/// topologically sorts the PCN (Algorithm 2) and lays the sequence along
/// a Hilbert curve.
///
/// On `2^k` square meshes the classic [`Hilbert`] curve is used; on any
/// other rectangle the generalized [`Gilbert`] curve (Appendix A) takes
/// over, exactly as the paper prescribes for arbitrary system sizes.
///
/// # Errors
///
/// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores.
///
/// # Examples
///
/// ```
/// use snnmap_core::hsc_placement;
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(200, 4.0, 3)?;
/// let p = hsc_placement(&pcn, Mesh::new(15, 15)?)?; // non-pow2 is fine
/// assert!(p.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn hsc_placement(pcn: &Pcn, mesh: Mesh) -> Result<Placement, CoreError> {
    hsc_placement_impl(pcn, mesh, None, 1)
}

/// [`hsc_placement`] with the Hilbert traversal built across up to
/// `threads` workers (`0` = auto, see [`par::resolve_threads`]).
///
/// The traversal is an element-wise pure function of the curve index
/// ([`Hilbert::d2xy`]), so the resulting placement is **bit-identical for
/// every thread count** — parallelism only changes the wall-clock time of
/// the initial-placement phase on million-core meshes. Non-`2^k`-square
/// meshes fall back to the serial generalized [`Gilbert`] construction,
/// whose recursive structure is inherently sequential.
///
/// # Errors
///
/// As [`hsc_placement`].
pub fn hsc_placement_threaded(
    pcn: &Pcn,
    mesh: Mesh,
    threads: usize,
) -> Result<Placement, CoreError> {
    hsc_placement_impl(pcn, mesh, None, par::resolve_threads(threads))
}

/// Fault-aware [`hsc_placement`]: same curve choice, but the traversal is
/// compacted over healthy cores (see [`sequence_placement_masked`]).
///
/// # Errors
///
/// [`CoreError::InsufficientCores`] when the PCN outnumbers the healthy
/// cores; otherwise as [`hsc_placement`].
pub fn hsc_placement_masked(
    pcn: &Pcn,
    mesh: Mesh,
    faults: &FaultMap,
) -> Result<Placement, CoreError> {
    hsc_placement_impl(pcn, mesh, Some(faults), 1)
}

/// [`hsc_placement_masked`] with a parallel Hilbert traversal; see
/// [`hsc_placement_threaded`] for the threading semantics (the fault mask
/// is applied in curve order after the parallel build, so the compaction
/// matches the serial path exactly).
///
/// # Errors
///
/// As [`hsc_placement_masked`].
pub fn hsc_placement_masked_threaded(
    pcn: &Pcn,
    mesh: Mesh,
    faults: &FaultMap,
    threads: usize,
) -> Result<Placement, CoreError> {
    hsc_placement_impl(pcn, mesh, Some(faults), par::resolve_threads(threads))
}

fn hsc_placement_impl(
    pcn: &Pcn,
    mesh: Mesh,
    faults: Option<&FaultMap>,
    threads: usize,
) -> Result<Placement, CoreError> {
    let order = toposort(pcn);
    hsc_sequence_impl(&order, mesh, faults, threads)
}

/// The curve-layout half of [`hsc_placement_impl`], taking an
/// already-toposorted order — lets traced callers time the topo sort and
/// the HSC layout as separate phases.
pub(crate) fn hsc_sequence_impl(
    order: &[u32],
    mesh: Mesh,
    faults: Option<&FaultMap>,
    threads: usize,
) -> Result<Placement, CoreError> {
    let pow2_square =
        mesh.rows() == mesh.cols() && (mesh.rows() as u32).is_power_of_two();
    if !pow2_square {
        return sequence_placement_impl(order, &Gilbert, mesh, faults);
    }
    if threads <= 1 {
        return sequence_placement_impl(order, &Hilbert, mesh, faults);
    }
    check_capacity(order.len() as u32, mesh, faults)?;
    let traversal = hilbert_traversal_par(mesh, faults, threads);
    place_along(order, &traversal, mesh, faults)
}

/// Capacity-aware HSC initial placement onto a multi-chip [`Board`]:
/// clusters walk the Hilbert/Gilbert traversal in topological order and
/// each lands on the first not-yet-used core (from a monotone cursor)
/// whose [`snnmap_hw::CoreConstraints`] admit it; cores too small for a
/// cluster are skipped and remain available for later, smaller clusters
/// (one wrap-around pass over the skipped prefix). On a uniform board
/// whose cores admit every cluster — the common case when the PCN was
/// partitioned under the same constraints — nothing is ever skipped and
/// the result is byte-identical to [`hsc_placement`].
///
/// The traversal build is threaded exactly like
/// [`hsc_placement_threaded`] (bit-identical for every thread count);
/// the greedy fit itself is a cheap serial pass.
///
/// # Errors
///
/// [`CoreError::InsufficientCapacity`] when some cluster fits on no
/// remaining healthy core; otherwise as [`hsc_placement_masked`].
///
/// # Examples
///
/// ```
/// use snnmap_core::hsc_placement_board;
/// use snnmap_hw::presets;
/// use snnmap_model::generators::random_pcn;
///
/// // 2x2 chips of 8x8 cores; random_pcn's small clusters fit anywhere.
/// let board = snnmap_hw::Board::parse("2x2/8x8")?;
/// let pcn = random_pcn(200, 4.0, 3)?;
/// let p = hsc_placement_board(&pcn, &board, None, 1)?;
/// assert!(p.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn hsc_placement_board(
    pcn: &Pcn,
    board: &Board,
    faults: Option<&FaultMap>,
    threads: usize,
) -> Result<Placement, CoreError> {
    let order = toposort(pcn);
    hsc_board_sequence_impl(pcn, &order, board, faults, par::resolve_threads(threads))
}

/// The greedy-fit half of [`hsc_placement_board`], taking an
/// already-toposorted order.
pub(crate) fn hsc_board_sequence_impl(
    pcn: &Pcn,
    order: &[u32],
    board: &Board,
    faults: Option<&FaultMap>,
    threads: usize,
) -> Result<Placement, CoreError> {
    let mesh = board.mesh();
    check_capacity(order.len() as u32, mesh, faults)?;
    let pow2_square =
        mesh.rows() == mesh.cols() && (mesh.rows() as u32).is_power_of_two();
    let traversal: Vec<Coord> = if pow2_square && threads > 1 {
        hilbert_traversal_par(mesh, faults, threads)
    } else {
        let curve: &dyn SpaceFillingCurve =
            if pow2_square { &Hilbert } else { &Gilbert };
        match faults {
            Some(fm) => masked_traversal(curve, mesh, |c| !fm.is_dead(c))?,
            None => curve.traversal(mesh)?,
        }
    };
    let mut p = fresh_placement(mesh, order.len() as u32, faults)?;
    let mut used = vec![false; traversal.len()];
    let mut cursor = 0usize;
    for &c in order {
        let neurons = pcn.neurons_in(c);
        let synapses = pcn.synapses_in(c);
        let fits = |i: usize| !used[i] && board.admits(traversal[i], neurons, synapses);
        let slot = (cursor..traversal.len())
            .find(|&i| fits(i))
            .or_else(|| (0..cursor).find(|&i| fits(i)))
            .ok_or(CoreError::InsufficientCapacity { cluster: c, neurons, synapses })?;
        used[slot] = true;
        p.place(c, traversal[slot])?;
        if slot >= cursor {
            cursor = slot + 1;
        }
    }
    Ok(p)
}

/// The baseline: clusters shuffled uniformly over the cores (§5.1.3,
/// "randomly mapping"). Deterministic per seed.
///
/// # Errors
///
/// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores.
pub fn random_placement(pcn: &Pcn, mesh: Mesh, seed: u64) -> Result<Placement, CoreError> {
    random_placement_impl(pcn, mesh, seed, None)
}

/// Fault-aware [`random_placement`]: clusters shuffled uniformly over the
/// *healthy* cores only. Deterministic per seed.
///
/// # Errors
///
/// [`CoreError::InsufficientCores`] when the PCN outnumbers the healthy
/// cores; otherwise as [`random_placement`].
pub fn random_placement_masked(
    pcn: &Pcn,
    mesh: Mesh,
    seed: u64,
    faults: &FaultMap,
) -> Result<Placement, CoreError> {
    random_placement_impl(pcn, mesh, seed, Some(faults))
}

fn random_placement_impl(
    pcn: &Pcn,
    mesh: Mesh,
    seed: u64,
    faults: Option<&FaultMap>,
) -> Result<Placement, CoreError> {
    let n = pcn.num_clusters();
    check_capacity(n, mesh, faults)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cores: Vec<Coord> = match faults {
        Some(fm) => fm.healthy_iter().collect(),
        None => mesh.iter().collect(),
    };
    cores.shuffle(&mut rng);
    let mut p = fresh_placement(mesh, n, faults)?;
    for c in 0..n {
        p.place(c, cores[c as usize])?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::CostModel;
    use snnmap_metrics::energy;
    use snnmap_model::generators::random_pcn;
    use snnmap_model::PcnBuilder;

    fn chain_pcn(n: u32) -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..n {
            b.add_cluster(1, 1);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_on_hilbert_is_all_unit_hops() {
        // A chain in topological order follows the curve, so every
        // connection spans exactly one hop — the ideal placement.
        let pcn = chain_pcn(16);
        let p = hsc_placement(&pcn, Mesh::new(4, 4).unwrap()).unwrap();
        for (f, t, _) in pcn.iter_edges() {
            assert_eq!(p.distance(f, t).unwrap(), 1);
        }
    }

    #[test]
    fn partial_mesh_leaves_tail_empty() {
        let pcn = chain_pcn(5);
        let p = hsc_placement(&pcn, Mesh::new(3, 3).unwrap()).unwrap();
        assert!(p.is_complete());
        assert_eq!(p.placed_count(), 5);
        p.check_consistency().unwrap();
    }

    #[test]
    fn non_pow2_meshes_use_gilbert() {
        let pcn = chain_pcn(35);
        let p = hsc_placement(&pcn, Mesh::new(5, 7).unwrap()).unwrap();
        assert!(p.is_complete());
        for (f, t, _) in pcn.iter_edges() {
            assert_eq!(p.distance(f, t).unwrap(), 1);
        }
    }

    #[test]
    fn too_small_mesh_errors() {
        let pcn = chain_pcn(10);
        assert!(matches!(
            hsc_placement(&pcn, Mesh::new(3, 3).unwrap()),
            Err(CoreError::MeshTooSmall { clusters: 10, cores: 9 })
        ));
        assert!(matches!(
            random_placement(&pcn, Mesh::new(3, 3).unwrap(), 0),
            Err(CoreError::MeshTooSmall { .. })
        ));
    }

    #[test]
    fn random_placement_is_seeded_and_valid() {
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let a = random_placement(&pcn, mesh, 7).unwrap();
        let b = random_placement(&pcn, mesh, 7).unwrap();
        let c = random_placement(&pcn, mesh, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        a.check_consistency().unwrap();
    }

    #[test]
    fn hsc_beats_random_on_energy() {
        // The core quantitative claim of §4.2 in miniature.
        let pcn = random_pcn(256, 4.0, 5).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let cm = CostModel::paper_target();
        let hsc = energy(&pcn, &hsc_placement(&pcn, mesh).unwrap(), cm).unwrap();
        let rnd = energy(&pcn, &random_placement(&pcn, mesh, 3).unwrap(), cm).unwrap();
        assert!(hsc < rnd, "hsc {hsc} should beat random {rnd}");
    }

    #[test]
    fn masked_hsc_avoids_dead_cores_and_compacts() {
        let pcn = chain_pcn(14);
        let mesh = Mesh::new(4, 4).unwrap();
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(snnmap_hw::Coord::new(0, 0)).unwrap();
        fm.kill_core(snnmap_hw::Coord::new(2, 2)).unwrap();
        let p = hsc_placement_masked(&pcn, mesh, &fm).unwrap();
        assert!(p.is_complete());
        p.check_consistency().unwrap();
        for c in 0..14u32 {
            assert!(!fm.is_dead(p.coord_of(c).unwrap()));
        }
    }

    #[test]
    fn masked_placement_reports_insufficient_cores() {
        let pcn = chain_pcn(9);
        let mesh = Mesh::new(3, 3).unwrap();
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(snnmap_hw::Coord::new(1, 1)).unwrap();
        assert!(matches!(
            hsc_placement_masked(&pcn, mesh, &fm),
            Err(CoreError::InsufficientCores { clusters: 9, healthy: 8, total: 9 })
        ));
        assert!(matches!(
            random_placement_masked(&pcn, mesh, 0, &fm),
            Err(CoreError::InsufficientCores { .. })
        ));
    }

    #[test]
    fn masked_random_is_seeded_and_fault_avoiding() {
        let pcn = random_pcn(40, 4.0, 2).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut fm = FaultMap::new(mesh);
        for x in 0..4u16 {
            fm.kill_core(snnmap_hw::Coord::new(x, x)).unwrap();
        }
        let a = random_placement_masked(&pcn, mesh, 11, &fm).unwrap();
        let b = random_placement_masked(&pcn, mesh, 11, &fm).unwrap();
        assert_eq!(a, b);
        a.check_consistency().unwrap();
        for c in 0..40u32 {
            assert!(!fm.is_dead(a.coord_of(c).unwrap()));
        }
    }

    #[test]
    fn masked_placement_rejects_mismatched_mesh() {
        let pcn = chain_pcn(4);
        let fm = FaultMap::new(Mesh::new(2, 2).unwrap());
        assert!(matches!(
            hsc_placement_masked(&pcn, Mesh::new(3, 3).unwrap(), &fm),
            Err(CoreError::Hw(snnmap_hw::HwError::InvalidFaultSpec { .. }))
        ));
    }

    #[test]
    fn threaded_hsc_is_identical_for_every_thread_count() {
        // 64x64 = 4096 cores clears the par_init granularity throttle, so
        // threads = 2.. genuinely split the traversal across workers.
        let pcn = random_pcn(4000, 4.0, 9).unwrap();
        let mesh = Mesh::new(64, 64).unwrap();
        let serial = hsc_placement(&pcn, mesh).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = hsc_placement_threaded(&pcn, mesh, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_masked_hsc_matches_serial_compaction() {
        let pcn = random_pcn(4000, 4.0, 9).unwrap();
        let mesh = Mesh::new(64, 64).unwrap();
        let mut fm = FaultMap::new(mesh);
        for i in 0..60u16 {
            fm.kill_core(Coord::new(i, (i * 7) % 64)).unwrap();
        }
        let serial = hsc_placement_masked(&pcn, mesh, &fm).unwrap();
        for threads in [2, 4, 8] {
            let par = hsc_placement_masked_threaded(&pcn, mesh, &fm, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_hsc_falls_back_to_gilbert_on_non_pow2() {
        let pcn = random_pcn(3000, 4.0, 2).unwrap();
        let mesh = Mesh::new(60, 60).unwrap();
        let serial = hsc_placement(&pcn, mesh).unwrap();
        assert_eq!(hsc_placement_threaded(&pcn, mesh, 4).unwrap(), serial);
    }

    #[test]
    fn sequence_placement_respects_order() {
        let order = vec![3, 1, 4, 0, 2];
        let mesh = Mesh::new(3, 3).unwrap();
        let p = sequence_placement(&order, &Hilbert, Mesh::new(4, 4).unwrap()).unwrap();
        assert_eq!(p.coord_of(3), Some(snnmap_hw::Coord::new(0, 0)));
        let _ = mesh;
    }
}
