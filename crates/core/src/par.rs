//! Scoped-thread data-parallel helpers.
//!
//! The build environment has no access to crates.io, so instead of rayon
//! this module provides the four primitives the mapping pipeline needs,
//! built on [`std::thread::scope`]:
//!
//! * [`par_init`] — fill a slice element-wise from a pure index function;
//! * [`par_update`] — mutate a slice element-wise in place;
//! * [`par_flat_map`] — map an index range through a collector and
//!   concatenate the per-chunk results in index order;
//! * [`par_block_sum`] — reduce an index range to an `f64` in *fixed-size
//!   blocks* whose partial sums are combined in block order.
//!
//! All of them produce **bit-identical results for every thread count**:
//! work is split into contiguous index ranges processed left to right,
//! per-element computations are pure, and every merge happens in
//! deterministic index (or block) order. Floating-point reductions never
//! depend on how many workers ran — [`par_block_sum`] fixes the block
//! boundaries independently of the thread count, so the rounding of each
//! partial sum is reproducible. This is what lets the Force-Directed
//! engine guarantee byte-identical placements for `threads = 1, 2, 4, …`.
//!
//! Threads are spawned per call (scoped, borrowing the caller's data) and
//! joined before returning; small inputs fall back to the serial path so
//! the spawn cost is only paid where it can be amortized. The serial
//! cutoff is a fixed floor ([`MIN_ITEMS_PER_THREAD`] items per extra
//! worker) for the plain helpers, or a *measured* one for the `*_tuned`
//! variants: a [`Tuner`] turns observed items/µs throughput into the
//! smallest batch that still amortizes a spawn, so expensive per-item
//! work fans out sooner and cheap scans don't drown in spawn overhead.
//! Tuning only ever moves the serial/parallel cutoff — the *results* are
//! thread-count independent by construction, so feedback from noisy
//! clocks cannot perturb a single output bit.
//!
//! **Panic isolation**: every chunk body runs under
//! [`std::panic::catch_unwind`], so a panicking closure surfaces as a
//! typed [`WorkerPanic`] from the `try_*` variants ([`try_par_init`],
//! [`try_par_flat_map`], [`try_par_block_sum`]) instead of aborting the
//! process mid-scope. The panic-free wrappers re-raise the panic with the
//! original message for callers that treat a poisoned chunk as a bug.

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// Work below this many items per *extra* worker is done serially: a
/// thread spawn costs tens of microseconds, which only pays for itself on
/// chunks of at least a few thousand cheap items. This is the fixed
/// fallback floor; the `*_tuned` helper variants replace it with a
/// [`Tuner`]'s measured one.
const MIN_ITEMS_PER_THREAD: usize = 2048;

/// Assumed cost of spawning and joining one scoped worker, in
/// microseconds. Deliberately conservative (glibc + Linux measure
/// 10–25 µs); the tuner uses it as a unit of overhead to amortize, not
/// as a precise model.
const SPAWN_COST_US: f64 = 30.0;

/// A worker's chunk must be worth this many spawn costs before fanning
/// out: ~4× keeps the spawn overhead under ~25% of the parallel phase
/// even when the throughput estimate is off by a factor of two.
const SPAWN_AMORTIZE: f64 = 4.0;

/// Clamp bounds of the tuned per-worker work floor. The lower bound
/// stops a noisy slow sample from parallelizing trivial scans; the upper
/// stops a fast-scan sample from serializing genuinely large jobs.
const MIN_GRAIN: usize = 64;
const MAX_GRAIN: usize = 65_536;

/// Process-wide utilization counters: every helper invocation bumps
/// `CALLS` and adds its domain size to `ITEMS`; invocations that
/// actually fan out bump `PARALLEL_CALLS` and add their extra workers to
/// `WORKERS`; `BUSY_NS` accumulates wall time spent inside helpers.
/// Relaxed atomics: the counters feed telemetry deltas, never
/// synchronization, and a few increments per helper call are noise next
/// to a thread spawn.
static CALLS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_CALLS: AtomicU64 = AtomicU64::new(0);
static WORKERS: AtomicU64 = AtomicU64::new(0);
static ITEMS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// A worker closure panicked inside a parallel helper.
///
/// Carries the panic message (when the payload was a string, which
/// `panic!` produces) so callers can surface *why* the chunk was
/// poisoned. Returned by the `try_*` helper variants; the panic-free
/// wrappers re-raise it instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    message: String,
}

impl WorkerPanic {
    fn from_payload(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker panicked with a non-string payload".to_owned()
        };
        WorkerPanic { message }
    }

    /// The panic message of the poisoned chunk.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel worker panicked: {}", self.message)
    }
}

impl Error for WorkerPanic {}

/// Test-only fault injection for the panic-isolation path.
///
/// Not part of the public API surface (hidden from docs); always compiled
/// so integration tests and downstream crates' tests can arm it without a
/// feature flag. Disarmed it costs one relaxed atomic load per *spawned*
/// worker chunk — the serial fallback never injects, so recovery paths
/// that deliberately run serially (e.g. the checkpoint flush after a
/// worker panic) cannot re-trigger it.
#[doc(hidden)]
pub mod hooks {
    use std::sync::atomic::{AtomicI64, Ordering::Relaxed};
    use std::sync::{Mutex, MutexGuard};

    /// Remaining spawned-worker chunks before one panics; negative means
    /// disarmed.
    static COUNTDOWN: AtomicI64 = AtomicI64::new(i64::MIN);

    /// Serializes tests that arm the hook: the countdown is process-wide,
    /// so concurrently running tests would otherwise steal each other's
    /// injection. Hold the guard across arm → assert → disarm.
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    /// Takes the armed-hook test lock (poison-tolerant: a previous test
    /// failing while armed must not cascade).
    pub fn exclusive() -> MutexGuard<'static, ()> {
        EXCLUSIVE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The message the injected panic carries.
    pub const INJECTED_PANIC: &str = "injected worker panic (test hook)";

    /// Arms the hook: the `(skip + 1)`-th spawned worker chunk from now
    /// panics with [`INJECTED_PANIC`].
    pub fn fail_after(skip: u64) {
        COUNTDOWN.store(i64::try_from(skip).unwrap_or(i64::MAX), Relaxed);
    }

    /// Disarms the hook.
    pub fn disarm() {
        COUNTDOWN.store(i64::MIN, Relaxed);
    }

    #[inline]
    pub(crate) fn maybe_inject() {
        // The load screens the common (disarmed) case; near zero, exactly
        // one thread observes the 0 → -1 transition and panics.
        if COUNTDOWN.load(Relaxed) >= 0 && COUNTDOWN.fetch_sub(1, Relaxed) == 0 {
            panic!("{}", INJECTED_PANIC);
        }
    }
}

/// Cumulative thread-pool utilization counters (see [`counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParCounters {
    /// Parallel-helper invocations ([`par_init`], [`par_update`],
    /// [`par_flat_map`], [`par_block_sum`] and their tuned variants),
    /// including ones that ran serially.
    pub calls: u64,
    /// Invocations that fanned out to at least one extra worker.
    pub parallel_calls: u64,
    /// Worker threads spawned in total (the calling thread, which always
    /// processes the first chunk, is not counted).
    pub workers_spawned: u64,
    /// Total items across all helper invocations (the domain size `n`,
    /// not the output size). `items / calls` is the mean batch a helper
    /// saw; together with `workers_spawned` it says whether fan-outs
    /// carried real work.
    pub items: u64,
    /// Wall nanoseconds spent inside the *tuned* helper variants (the
    /// plain helpers don't read the clock, keeping them zero-overhead).
    /// `items / busy_ns` is the measured throughput the granularity
    /// tuner steers by.
    pub busy_ns: u64,
}

impl ParCounters {
    /// The counter delta from `earlier` to `self`.
    pub fn since(self, earlier: ParCounters) -> ParCounters {
        ParCounters {
            calls: self.calls.wrapping_sub(earlier.calls),
            parallel_calls: self.parallel_calls.wrapping_sub(earlier.parallel_calls),
            workers_spawned: self.workers_spawned.wrapping_sub(earlier.workers_spawned),
            items: self.items.wrapping_sub(earlier.items),
            busy_ns: self.busy_ns.wrapping_sub(earlier.busy_ns),
        }
    }
}

/// Reads the process-wide utilization counters. Trace consumers snapshot
/// before and after a pipeline scope and report the
/// [`ParCounters::since`] delta.
///
/// # Examples
///
/// ```
/// use snnmap_core::par::{counters, par_flat_map};
///
/// let before = counters();
/// let v = par_flat_map(2, 10_000, |i, out| out.push(i));
/// assert_eq!(v.len(), 10_000);
/// let delta = counters().since(before);
/// assert_eq!(delta.calls, 1);
/// ```
pub fn counters() -> ParCounters {
    ParCounters {
        calls: CALLS.load(Relaxed),
        parallel_calls: PARALLEL_CALLS.load(Relaxed),
        workers_spawned: WORKERS.load(Relaxed),
        items: ITEMS.load(Relaxed),
        busy_ns: BUSY_NS.load(Relaxed),
    }
}

/// Why an `SNNMAP_THREADS` value was rejected (see
/// [`parse_env_threads`]). The variants exist so each malformed shape is
/// testable — and reported — distinctly instead of collapsing into a
/// silent auto-detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadsParseError {
    /// Empty (or whitespace-only) value.
    Empty,
    /// Not a base-10 integer at all.
    NotANumber,
    /// Parsed, but zero — thread count `0` only means *auto* as an API
    /// argument, never as an explicit override.
    Zero,
    /// A number too large for `usize`.
    Overflow,
}

impl fmt::Display for ThreadsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadsParseError::Empty => "empty value",
            ThreadsParseError::NotANumber => "not a number",
            ThreadsParseError::Zero => "must be at least 1",
            ThreadsParseError::Overflow => "exceeds the machine word size",
        })
    }
}

impl Error for ThreadsParseError {}

/// Parses an `SNNMAP_THREADS`-style value into a positive worker count.
///
/// Pure (no environment access), so every malformed shape has a unit
/// test that cannot race other tests' environment mutations.
///
/// # Errors
///
/// One [`ThreadsParseError`] variant per malformed shape.
pub fn parse_env_threads(value: &str) -> Result<usize, ThreadsParseError> {
    let v = value.trim();
    if v.is_empty() {
        return Err(ThreadsParseError::Empty);
    }
    match v.parse::<usize>() {
        Ok(0) => Err(ThreadsParseError::Zero),
        Ok(n) => Ok(n),
        Err(_) => {
            // Distinguish "a number, just too big" from garbage: all
            // digits (an optional `+` allowed by usize::from_str) can
            // only have failed on overflow.
            let digits = v.strip_prefix('+').unwrap_or(v);
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                Err(ThreadsParseError::Overflow)
            } else {
                Err(ThreadsParseError::NotANumber)
            }
        }
    }
}

/// Resolves a requested worker count to an effective one.
///
/// `0` means *auto*: the `SNNMAP_THREADS` environment variable if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable). Any positive
/// request is honoured as-is.
///
/// A **malformed** `SNNMAP_THREADS` (garbage, `0`, overflow — see
/// [`parse_env_threads`]) is *not* silently ignored: the first
/// resolution that hits one prints a warning to stderr (once per
/// process), then falls back to auto-detection. Callers that need a hard
/// failure instead (the CLI's explicit `--threads 0`) validate before
/// calling this.
///
/// # Examples
///
/// ```
/// use snnmap_core::par::resolve_threads;
///
/// assert_eq!(resolve_threads(3), 3);
/// assert!(resolve_threads(0) >= 1); // auto-detected
/// ```
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("SNNMAP_THREADS") {
        match parse_env_threads(&v) {
            Ok(n) => return n,
            Err(e) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid SNNMAP_THREADS={v:?} ({e}); \
                         falling back to auto-detected parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Caps `threads` so every worker has at least [`MIN_ITEMS_PER_THREAD`]
/// items, and never exceeds the item count.
#[inline]
fn effective_threads(threads: usize, items: usize) -> usize {
    effective_threads_with(threads, items, MIN_ITEMS_PER_THREAD)
}

/// [`effective_threads`] with an explicit per-worker work floor (what a
/// [`Tuner`] supplies).
#[inline]
fn effective_threads_with(threads: usize, items: usize, min_items: usize) -> usize {
    let by_work = items / min_items.max(1);
    threads.min(by_work.max(1)).max(1)
}

/// Measured-throughput granularity feedback for the `*_tuned` helpers.
///
/// The fixed [`MIN_ITEMS_PER_THREAD`] floor assumes "a few thousand
/// cheap items" amortize a spawn — right for copy-like scans, badly
/// wrong in both directions for the FD engine, whose tension re-scores
/// cost ~100 ns/item (fan out far earlier) while its queue collects cost
/// ~5 ns/item (fan out far later). A `Tuner` replaces the assumption
/// with measurement: each observed invocation updates an exponentially
/// weighted per-worker throughput estimate (items/µs), and the work
/// floor becomes "enough items to amortize [`SPAWN_COST_US`]
/// [`SPAWN_AMORTIZE`] times at that rate", clamped to
/// [`MIN_GRAIN`]`..=`[`MAX_GRAIN`].
///
/// One tuner per call-site *family* (one per distinct per-item cost),
/// owned by the run that uses it — state never leaks across runs, so the
/// first call of every run sees the same default floor and fault-
/// injection tests keep their deterministic spawn schedule. Tuning moves
/// only the serial/parallel cutoff; results stay bit-identical for every
/// thread count by the helpers' determinism guarantee, so clock noise
/// cannot perturb outputs.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use snnmap_core::par::Tuner;
///
/// let mut t = Tuner::new();
/// // 10k items in 1 ms on one worker = 10 items/µs -> floor 1200.
/// t.observe(10_000, 1, Duration::from_millis(1));
/// assert_eq!(t.min_items(), 1200);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Tuner {
    /// EWMA per-worker throughput, items per microsecond. `0.0` until
    /// the first usable sample.
    rate: f64,
    samples: u32,
}

impl Tuner {
    /// A tuner with no samples: [`Tuner::min_items`] starts at the fixed
    /// [`MIN_ITEMS_PER_THREAD`] default.
    pub fn new() -> Self {
        Tuner::default()
    }

    /// Current work floor per extra worker: the batch that amortizes one
    /// spawn [`SPAWN_AMORTIZE`]× at the measured throughput, or the
    /// fixed default before any sample.
    pub fn min_items(&self) -> usize {
        if self.samples == 0 {
            return MIN_ITEMS_PER_THREAD;
        }
        ((self.rate * SPAWN_COST_US * SPAWN_AMORTIZE) as usize).clamp(MIN_GRAIN, MAX_GRAIN)
    }

    /// Feeds back one invocation: `items` processed by `workers` chunks
    /// in `elapsed`. Zero-item or unmeasurably fast (sub-tick) calls are
    /// discarded — a coarse clock must not fake an infinite rate.
    pub fn observe(&mut self, items: usize, workers: usize, elapsed: Duration) {
        let us = elapsed.as_secs_f64() * 1e6;
        if items == 0 || us <= 0.0 {
            return;
        }
        let rate = items as f64 / (us * workers.max(1) as f64);
        // EWMA with α = 0.3: a few sweeps converge, one outlier doesn't
        // whipsaw the floor.
        self.rate = if self.samples == 0 { rate } else { 0.7 * self.rate + 0.3 * rate };
        self.samples = self.samples.saturating_add(1);
    }
}

/// Fills `out[i] = f(base_of_chunk + i)` across up to `threads` workers.
///
/// The slice is split into contiguous chunks, one per worker; chunk `0`
/// runs on the calling thread so a worker is only spawned when there is a
/// second chunk. Because `f` is pure per index and every element is
/// written exactly once, the result is identical for any thread count.
///
/// # Panics
///
/// Re-raises a panic from `f` (see [`try_par_init`] for the typed-error
/// variant).
pub fn par_init<T, F>(threads: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if let Err(p) = try_par_init(threads, out, f) {
        panic!("{p}");
    }
}

/// [`par_init`] with panic isolation: a panicking `f` poisons only its
/// chunk and surfaces as [`WorkerPanic`]. On error the slice may be
/// partially (re)written — callers discard it.
///
/// # Errors
///
/// [`WorkerPanic`] when any chunk's `f` panicked (the first in chunk
/// order wins).
pub fn try_par_init<T, F>(threads: usize, out: &mut [T], f: F) -> Result<(), WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    CALLS.fetch_add(1, Relaxed);
    ITEMS.fetch_add(out.len() as u64, Relaxed);
    par_init_inner(effective_threads(threads, out.len()), out, f)
}

/// [`try_par_init`] without the work-granularity throttle: the caller has
/// already decided how many workers the job deserves (e.g.
/// [`par_block_sum`], whose few slots each carry a whole block of work).
fn par_init_inner<T, F>(threads: usize, out: &mut [T], f: F) -> Result<(), WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = out.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(i);
            }
        }))
        .map_err(|p| WorkerPanic::from_payload(&*p));
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    PARALLEL_CALLS.fetch_add(1, Relaxed);
    std::thread::scope(|s| {
        let mut chunks = out.chunks_mut(chunk);
        let first = chunks.next();
        let mut handles = Vec::with_capacity(threads - 1);
        for (k, part) in chunks.enumerate() {
            let base = (k + 1) * chunk;
            WORKERS.fetch_add(1, Relaxed);
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    hooks::maybe_inject();
                    for (j, slot) in part.iter_mut().enumerate() {
                        *slot = f(base + j);
                    }
                }))
            }));
        }
        // First error in chunk order wins, so the reported panic is the
        // same for every interleaving.
        let mut result: Result<(), WorkerPanic> = Ok(());
        if let Some(part) = first {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                for (j, slot) in part.iter_mut().enumerate() {
                    *slot = f(j);
                }
            })) {
                result = Err(WorkerPanic::from_payload(&*p));
            }
        }
        for h in handles {
            // The outer join error covers a panic that escaped the catch
            // (impossible for unwinding panics, but stay total).
            if let Err(p) = h.join().and_then(|r| r) {
                if result.is_ok() {
                    result = Err(WorkerPanic::from_payload(&*p));
                }
            }
        }
        result
    })
}

/// Applies `f(i, &mut data[i])` to every element in place across up to
/// `threads` workers.
///
/// The in-place sibling of [`par_init`] for when most elements keep
/// their value (the FD engine's score-table refresh recomputes stale
/// slots and leaves the rest untouched): `f` sees the previous value and
/// may skip the write entirely. `f` must be pure per index and must not
/// read *other* slots — each element is visited exactly once by exactly
/// one worker, so under that contract the result is identical for any
/// thread count.
///
/// # Panics
///
/// Re-raises a panic from `f` (see [`try_par_update`] for the
/// typed-error variant).
pub fn par_update<T, F>(threads: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if let Err(p) = try_par_update(threads, data, f) {
        panic!("{p}");
    }
}

/// [`par_update`] with panic isolation: a panicking `f` poisons only its
/// chunk and surfaces as [`WorkerPanic`]. On error the slice may be
/// partially updated — callers discard it.
///
/// # Errors
///
/// [`WorkerPanic`] when any chunk's `f` panicked (the first in chunk
/// order wins).
pub fn try_par_update<T, F>(threads: usize, data: &mut [T], f: F) -> Result<(), WorkerPanic>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    CALLS.fetch_add(1, Relaxed);
    ITEMS.fetch_add(data.len() as u64, Relaxed);
    par_update_inner(effective_threads(threads, data.len()), data, f)
}

/// [`try_par_update`] with the worker count already decided.
fn par_update_inner<T, F>(threads: usize, data: &mut [T], f: F) -> Result<(), WorkerPanic>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = data.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            for (i, slot) in data.iter_mut().enumerate() {
                f(i, slot);
            }
        }))
        .map_err(|p| WorkerPanic::from_payload(&*p));
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    PARALLEL_CALLS.fetch_add(1, Relaxed);
    std::thread::scope(|s| {
        let mut chunks = data.chunks_mut(chunk);
        let first = chunks.next();
        let mut handles = Vec::with_capacity(threads - 1);
        for (k, part) in chunks.enumerate() {
            let base = (k + 1) * chunk;
            WORKERS.fetch_add(1, Relaxed);
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    hooks::maybe_inject();
                    for (j, slot) in part.iter_mut().enumerate() {
                        f(base + j, slot);
                    }
                }))
            }));
        }
        let mut result: Result<(), WorkerPanic> = Ok(());
        if let Some(part) = first {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                for (j, slot) in part.iter_mut().enumerate() {
                    f(j, slot);
                }
            })) {
                result = Err(WorkerPanic::from_payload(&*p));
            }
        }
        for h in handles {
            if let Err(p) = h.join().and_then(|r| r) {
                if result.is_ok() {
                    result = Err(WorkerPanic::from_payload(&*p));
                }
            }
        }
        result
    })
}

/// [`try_par_update`] with a [`Tuner`] deciding the serial/parallel
/// cutoff and learning from the call's measured throughput.
///
/// # Errors
///
/// As [`try_par_update`].
pub fn try_par_update_tuned<T, F>(
    threads: usize,
    tuner: &mut Tuner,
    data: &mut [T],
    f: F,
) -> Result<(), WorkerPanic>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    CALLS.fetch_add(1, Relaxed);
    let n = data.len();
    ITEMS.fetch_add(n as u64, Relaxed);
    let workers = effective_threads_with(threads, n, tuner.min_items());
    let t0 = Instant::now();
    let result = par_update_inner(workers, data, f);
    let elapsed = t0.elapsed();
    BUSY_NS.fetch_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX), Relaxed);
    if result.is_ok() {
        tuner.observe(n, workers, elapsed);
    }
    result
}

/// Runs `f(i, &mut results)` for every `i in 0..n` and returns the
/// concatenation of the per-chunk result vectors **in chunk (= index)
/// order**.
///
/// `f` may push zero or more items per index (filtering maps use this),
/// so the output length is data-dependent; the *order* of surviving items
/// always matches what the serial loop would produce, independent of the
/// thread count.
///
/// # Panics
///
/// Re-raises a panic from `f` (see [`try_par_flat_map`] for the
/// typed-error variant).
pub fn par_flat_map<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &mut Vec<R>) + Sync,
{
    try_par_flat_map(threads, n, f).unwrap_or_else(|p| panic!("{p}"))
}

/// [`par_flat_map`] with panic isolation: a panicking `f` poisons only
/// its chunk and surfaces as [`WorkerPanic`].
///
/// # Errors
///
/// [`WorkerPanic`] when any chunk's `f` panicked (the first in chunk
/// order wins).
pub fn try_par_flat_map<R, F>(threads: usize, n: usize, f: F) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize, &mut Vec<R>) + Sync,
{
    CALLS.fetch_add(1, Relaxed);
    ITEMS.fetch_add(n as u64, Relaxed);
    par_flat_map_inner(effective_threads(threads, n), n, f)
}

/// [`try_par_flat_map`] with a [`Tuner`] deciding the serial/parallel
/// cutoff and learning from the call's measured throughput (the domain
/// size `n`, not the output length, is what's measured).
///
/// # Errors
///
/// As [`try_par_flat_map`].
pub fn try_par_flat_map_tuned<R, F>(
    threads: usize,
    tuner: &mut Tuner,
    n: usize,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize, &mut Vec<R>) + Sync,
{
    CALLS.fetch_add(1, Relaxed);
    ITEMS.fetch_add(n as u64, Relaxed);
    let workers = effective_threads_with(threads, n, tuner.min_items());
    let t0 = Instant::now();
    let result = par_flat_map_inner(workers, n, f);
    let elapsed = t0.elapsed();
    BUSY_NS.fetch_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX), Relaxed);
    if result.is_ok() {
        tuner.observe(n, workers, elapsed);
    }
    result
}

/// [`try_par_flat_map`] with the worker count already decided.
fn par_flat_map_inner<R, F>(threads: usize, n: usize, f: F) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(usize, &mut Vec<R>) + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            let mut out = Vec::new();
            for i in 0..n {
                f(i, &mut out);
            }
            out
        }))
        .map_err(|p| WorkerPanic::from_payload(&*p));
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    PARALLEL_CALLS.fetch_add(1, Relaxed);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1);
        for k in 1..threads {
            let lo = k * chunk;
            let hi = ((k + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            WORKERS.fetch_add(1, Relaxed);
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    hooks::maybe_inject();
                    let mut v = Vec::new();
                    for i in lo..hi {
                        f(i, &mut v);
                    }
                    v
                }))
            }));
        }
        let mut result: Result<(), WorkerPanic> = Ok(());
        match catch_unwind(AssertUnwindSafe(|| {
            let mut v = Vec::new();
            for i in 0..chunk.min(n) {
                f(i, &mut v);
            }
            v
        })) {
            Ok(v) => parts.push(v),
            Err(p) => result = Err(WorkerPanic::from_payload(&*p)),
        }
        for h in handles {
            match h.join().and_then(|r| r) {
                Ok(v) => parts.push(v),
                Err(p) => {
                    if result.is_ok() {
                        result = Err(WorkerPanic::from_payload(&*p));
                    }
                }
            }
        }
        result
    })?;
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    Ok(out)
}

/// Sums `f(lo..hi)` over fixed-size blocks of `block` indices, combining
/// the per-block partial sums **in block order**.
///
/// Block boundaries depend only on `n` and `block` — never on the thread
/// count — so every partial sum (and therefore the total, including its
/// floating-point rounding) is bit-identical for any `threads`. Blocks
/// are distributed over workers via [`par_init`].
///
/// # Panics
///
/// Panics on `block == 0` (a caller bug), and re-raises a panic from `f`
/// (see [`try_par_block_sum`] for the typed-error variant).
pub fn par_block_sum<F>(threads: usize, n: usize, block: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    try_par_block_sum(threads, n, block, f).unwrap_or_else(|p| panic!("{p}"))
}

/// [`par_block_sum`] with panic isolation: a panicking `f` poisons only
/// its chunk and surfaces as [`WorkerPanic`].
///
/// # Panics
///
/// Panics on `block == 0` (a caller bug, not a worker fault).
///
/// # Errors
///
/// [`WorkerPanic`] when any block's `f` panicked.
pub fn try_par_block_sum<F>(
    threads: usize,
    n: usize,
    block: usize,
    f: F,
) -> Result<f64, WorkerPanic>
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    assert!(block > 0, "block size must be positive");
    CALLS.fetch_add(1, Relaxed);
    ITEMS.fetch_add(n as u64, Relaxed);
    if n == 0 {
        return Ok(0.0);
    }
    let blocks = n.div_ceil(block);
    if blocks == 1 {
        return catch_unwind(AssertUnwindSafe(|| f(0..n)))
            .map_err(|p| WorkerPanic::from_payload(&*p));
    }
    let mut partial = vec![0.0f64; blocks];
    // Granularity is decided on the underlying item count (each slot is a
    // whole block of work), not on the handful of partial-sum slots.
    par_init_inner(effective_threads(threads, n), &mut partial, |b| {
        let lo = b * block;
        let hi = (lo + block).min(n);
        f(lo..hi)
    })?;
    Ok(partial.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honours_explicit_request() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn env_threads_parse_accepts_positive_integers() {
        assert_eq!(parse_env_threads("4"), Ok(4));
        assert_eq!(parse_env_threads(" 16 "), Ok(16));
        assert_eq!(parse_env_threads("1"), Ok(1));
    }

    #[test]
    fn env_threads_parse_rejects_garbage() {
        assert_eq!(parse_env_threads("four"), Err(ThreadsParseError::NotANumber));
        assert_eq!(parse_env_threads("2x"), Err(ThreadsParseError::NotANumber));
        assert_eq!(parse_env_threads("3.5"), Err(ThreadsParseError::NotANumber));
        assert_eq!(parse_env_threads("-2"), Err(ThreadsParseError::NotANumber));
    }

    #[test]
    fn env_threads_parse_rejects_zero() {
        assert_eq!(parse_env_threads("0"), Err(ThreadsParseError::Zero));
        assert_eq!(parse_env_threads(" 0 "), Err(ThreadsParseError::Zero));
        assert_eq!(parse_env_threads("+0"), Err(ThreadsParseError::Zero));
    }

    #[test]
    fn env_threads_parse_rejects_overflow() {
        // 2^64 and far beyond: digits-only, so the failure is overflow,
        // not garbage.
        assert_eq!(
            parse_env_threads("18446744073709551616"),
            Err(ThreadsParseError::Overflow)
        );
        assert_eq!(
            parse_env_threads("999999999999999999999999999"),
            Err(ThreadsParseError::Overflow)
        );
    }

    #[test]
    fn env_threads_parse_rejects_empty() {
        assert_eq!(parse_env_threads(""), Err(ThreadsParseError::Empty));
        assert_eq!(parse_env_threads("   "), Err(ThreadsParseError::Empty));
    }

    #[test]
    fn tuner_starts_at_the_fixed_default() {
        assert_eq!(Tuner::new().min_items(), MIN_ITEMS_PER_THREAD);
    }

    #[test]
    fn tuner_floor_tracks_measured_throughput() {
        // Expensive items (1 item/µs) -> tiny batches amortize a spawn.
        let mut slow = Tuner::new();
        slow.observe(1_000, 1, Duration::from_millis(1));
        assert_eq!(slow.min_items(), 120);

        // Cheap items (1000 items/µs) -> the floor grows, clamped.
        let mut fast = Tuner::new();
        fast.observe(1_000_000, 1, Duration::from_millis(1));
        assert_eq!(fast.min_items(), MAX_GRAIN);

        // Parallel samples are normalized per worker: the same wall time
        // across 4 workers means a quarter of the per-core rate, so the
        // raw floor (120 / 4 = 30) lands below MIN_GRAIN and clamps.
        let mut par4 = Tuner::new();
        par4.observe(1_000, 4, Duration::from_millis(1));
        assert_eq!(par4.min_items(), MIN_GRAIN);
    }

    #[test]
    fn tuner_clamps_and_discards_degenerate_samples() {
        let mut t = Tuner::new();
        t.observe(0, 1, Duration::from_millis(1));
        t.observe(100, 1, Duration::ZERO);
        assert_eq!(t.min_items(), MIN_ITEMS_PER_THREAD, "degenerate samples must not count");
        // Absurdly slow items still leave a usable (clamped) floor.
        t.observe(1, 1, Duration::from_secs(1));
        assert_eq!(t.min_items(), MIN_GRAIN);
    }

    #[test]
    fn par_update_matches_serial_for_every_thread_count() {
        let n = 10_000;
        let f = |i: usize, slot: &mut u64| {
            if i % 3 == 0 {
                *slot = (i as u64).wrapping_mul(0x9e3779b9);
            }
        };
        let mut expect = vec![7u64; n];
        par_update(1, &mut expect, f);
        for threads in [2, 3, 4, 8, 17] {
            let mut got = vec![7u64; n];
            par_update(threads, &mut got, f);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_update_panic_is_a_typed_error() {
        let n = 4 * MIN_ITEMS_PER_THREAD;
        let mut data = vec![0u8; n];
        let err = try_par_update(4, &mut data, |i, _slot| {
            if i == n - 1 {
                panic!("updater dies at {i}");
            }
        })
        .unwrap_err();
        assert!(err.message().contains("updater dies"), "{err}");
    }

    #[test]
    fn tuned_variants_agree_with_untuned_and_learn() {
        let n = 50_000;
        let mut tuner = Tuner::new();
        let expect = par_flat_map(1, n, |i, out| {
            if i % 7 == 0 {
                out.push(i as u64);
            }
        });
        for threads in [1, 2, 4] {
            let got = try_par_flat_map_tuned(threads, &mut tuner, n, |i, out| {
                if i % 7 == 0 {
                    out.push(i as u64);
                }
            })
            .unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
        assert!(tuner.samples > 0, "tuned calls must feed the tuner");

        let mut tuner = Tuner::new();
        let mut expect = vec![0u64; n];
        par_update(1, &mut expect, |i, s| *s = i as u64 ^ 0xabcd);
        for threads in [2, 8] {
            let mut got = vec![0u64; n];
            try_par_update_tuned(threads, &mut tuner, &mut got, |i, s| *s = i as u64 ^ 0xabcd)
                .unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn counters_track_items_and_busy_time() {
        let before = counters();
        let mut tuner = Tuner::new();
        let mut data = vec![0u32; 5_000];
        try_par_update_tuned(2, &mut tuner, &mut data, |i, s| *s = i as u32).unwrap();
        let d = counters().since(before);
        assert!(d.calls >= 1, "{d:?}");
        assert!(d.items >= 5_000, "{d:?}");
        assert!(d.busy_ns > 0, "{d:?}");
    }

    #[test]
    fn par_init_matches_serial_for_every_thread_count() {
        let n = 10_000;
        let mut expect = vec![0u64; n];
        par_init(1, &mut expect, |i| (i as u64).wrapping_mul(0x9e3779b9));
        for threads in [2, 3, 4, 8, 17] {
            let mut got = vec![0u64; n];
            par_init(threads, &mut got, |i| (i as u64).wrapping_mul(0x9e3779b9));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_flat_map_preserves_order_and_filtering() {
        let n = 9_999;
        let f = |i: usize, out: &mut Vec<usize>| {
            if i % 3 == 0 {
                out.push(i * 2);
            }
        };
        let expect = par_flat_map(1, n, f);
        assert_eq!(expect.len(), n.div_ceil(3));
        for threads in [2, 4, 5, 16] {
            assert_eq!(par_flat_map(threads, n, f), expect, "threads={threads}");
        }
    }

    #[test]
    fn par_block_sum_is_bitwise_thread_independent() {
        // Sums of many different magnitudes expose any reassociation.
        let n = 50_000;
        let weight = |i: usize| ((i % 97) as f64).exp2() * 1e-7;
        let f = |r: std::ops::Range<usize>| r.map(weight).sum::<f64>();
        let expect = par_block_sum(1, n, 1024, f);
        for threads in [2, 3, 4, 8] {
            let got = par_block_sum(threads, n, 1024, f);
            assert_eq!(got.to_bits(), expect.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_block_sum_handles_degenerate_sizes() {
        assert_eq!(par_block_sum(4, 0, 16, |_| 1.0), 0.0);
        assert_eq!(par_block_sum(4, 5, 16, |r| r.len() as f64), 5.0);
        assert_eq!(par_block_sum(1, 33, 16, |r| r.len() as f64), 33.0);
    }

    #[test]
    fn counters_observe_parallel_fanout() {
        // Other tests run concurrently in this process, so deltas are
        // lower bounds, never exact counts.
        let before = counters();
        let mut out = vec![0u64; 3 * MIN_ITEMS_PER_THREAD];
        par_init(3, &mut out, |i| i as u64);
        let d = counters().since(before);
        assert!(d.calls >= 1, "{d:?}");
        assert!(d.parallel_calls >= 1, "{d:?}");
        assert!(d.workers_spawned >= 2, "{d:?}");

        // A serial-path call bumps only `calls`.
        let before = counters();
        let mut small = vec![0u64; 4];
        par_init(1, &mut small, |i| i as u64);
        assert!(counters().since(before).calls >= 1);
    }

    #[test]
    fn small_inputs_run_serially_but_correctly() {
        let mut out = vec![0usize; 10];
        par_init(8, &mut out, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        let v = par_flat_map(8, 10, |i, out| out.push(i));
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_closure_is_a_typed_error_not_an_abort() {
        // Serial path: caught on the calling thread.
        let err = try_par_flat_map(1, 10, |i, _out: &mut Vec<u32>| {
            if i == 3 {
                panic!("poisoned at {i}");
            }
        })
        .unwrap_err();
        assert!(err.message().contains("poisoned at 3"), "{err}");
        assert!(err.to_string().contains("parallel worker panicked"));

        // Parallel path: caught in a spawned worker, scope still joins.
        let n = 4 * MIN_ITEMS_PER_THREAD;
        let err = try_par_flat_map(4, n, |i, _out: &mut Vec<u32>| {
            if i == n - 1 {
                panic!("last chunk dies");
            }
        })
        .unwrap_err();
        assert!(err.message().contains("last chunk dies"), "{err}");

        let mut out = vec![0u8; n];
        let err = try_par_init(4, &mut out, |i| {
            if i == 0 {
                panic!("first chunk dies");
            }
            1
        })
        .unwrap_err();
        assert!(err.message().contains("first chunk dies"), "{err}");

        let err = try_par_block_sum(4, n, 512, |r| {
            if r.start == 0 {
                panic!("block zero dies");
            }
            0.0
        })
        .unwrap_err();
        assert!(err.message().contains("block zero dies"), "{err}");
    }

    #[test]
    fn first_chunk_error_wins_deterministically() {
        // Every index panics; the reported message must always be the
        // calling thread's chunk (chunk 0), regardless of scheduling.
        let n = 4 * MIN_ITEMS_PER_THREAD;
        for _ in 0..8 {
            let err =
                try_par_flat_map(4, n, |i, _out: &mut Vec<u32>| panic!("chunk of {i}"))
                    .unwrap_err();
            assert_eq!(err.message(), "chunk of 0");
        }
    }

    #[test]
    fn injection_hook_fires_once_in_a_spawned_worker() {
        let _guard = hooks::exclusive();
        let n = 4 * MIN_ITEMS_PER_THREAD;
        hooks::fail_after(0);
        let err = try_par_flat_map(4, n, |i, out: &mut Vec<usize>| out.push(i)).unwrap_err();
        hooks::disarm();
        assert_eq!(err.message(), hooks::INJECTED_PANIC);
        // Disarmed, the same call succeeds and the serial path is immune
        // even while armed.
        let v = try_par_flat_map(4, n, |i, out: &mut Vec<usize>| out.push(i)).unwrap();
        assert_eq!(v.len(), n);
        hooks::fail_after(0);
        let v = try_par_flat_map(1, 64, |i, out: &mut Vec<usize>| out.push(i)).unwrap();
        hooks::disarm();
        assert_eq!(v.len(), 64);
    }
}
