//! Scoped-thread data-parallel helpers.
//!
//! The build environment has no access to crates.io, so instead of rayon
//! this module provides the three primitives the mapping pipeline needs,
//! built on [`std::thread::scope`]:
//!
//! * [`par_init`] — fill a slice element-wise from a pure index function;
//! * [`par_flat_map`] — map an index range through a collector and
//!   concatenate the per-chunk results in index order;
//! * [`par_block_sum`] — reduce an index range to an `f64` in *fixed-size
//!   blocks* whose partial sums are combined in block order.
//!
//! All three produce **bit-identical results for every thread count**:
//! work is split into contiguous index ranges processed left to right,
//! per-element computations are pure, and every merge happens in
//! deterministic index (or block) order. Floating-point reductions never
//! depend on how many workers ran — [`par_block_sum`] fixes the block
//! boundaries independently of the thread count, so the rounding of each
//! partial sum is reproducible. This is what lets the Force-Directed
//! engine guarantee byte-identical placements for `threads = 1, 2, 4, …`.
//!
//! Threads are spawned per call (scoped, borrowing the caller's data) and
//! joined before returning; small inputs fall back to the serial path so
//! the spawn cost is only paid where it can be amortized.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Work below this many items per *extra* worker is done serially: a
/// thread spawn costs tens of microseconds, which only pays for itself on
/// chunks of at least a few thousand cheap items.
const MIN_ITEMS_PER_THREAD: usize = 2048;

/// Process-wide utilization counters: every helper invocation bumps
/// `CALLS`; invocations that actually fan out bump `PARALLEL_CALLS` and
/// add their extra workers to `WORKERS`. Relaxed atomics: the counters
/// feed telemetry deltas, never synchronization, and two increments per
/// helper call are noise next to a thread spawn.
static CALLS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_CALLS: AtomicU64 = AtomicU64::new(0);
static WORKERS: AtomicU64 = AtomicU64::new(0);

/// Cumulative thread-pool utilization counters (see [`counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParCounters {
    /// Parallel-helper invocations ([`par_init`], [`par_flat_map`],
    /// [`par_block_sum`]), including ones that ran serially.
    pub calls: u64,
    /// Invocations that fanned out to at least one extra worker.
    pub parallel_calls: u64,
    /// Worker threads spawned in total (the calling thread, which always
    /// processes the first chunk, is not counted).
    pub workers_spawned: u64,
}

impl ParCounters {
    /// The counter delta from `earlier` to `self`.
    pub fn since(self, earlier: ParCounters) -> ParCounters {
        ParCounters {
            calls: self.calls.wrapping_sub(earlier.calls),
            parallel_calls: self.parallel_calls.wrapping_sub(earlier.parallel_calls),
            workers_spawned: self.workers_spawned.wrapping_sub(earlier.workers_spawned),
        }
    }
}

/// Reads the process-wide utilization counters. Trace consumers snapshot
/// before and after a pipeline scope and report the
/// [`ParCounters::since`] delta.
///
/// # Examples
///
/// ```
/// use snnmap_core::par::{counters, par_flat_map};
///
/// let before = counters();
/// let v = par_flat_map(2, 10_000, |i, out| out.push(i));
/// assert_eq!(v.len(), 10_000);
/// let delta = counters().since(before);
/// assert_eq!(delta.calls, 1);
/// ```
pub fn counters() -> ParCounters {
    ParCounters {
        calls: CALLS.load(Relaxed),
        parallel_calls: PARALLEL_CALLS.load(Relaxed),
        workers_spawned: WORKERS.load(Relaxed),
    }
}

/// Resolves a requested worker count to an effective one.
///
/// `0` means *auto*: the `SNNMAP_THREADS` environment variable if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable). Any positive
/// request is honoured as-is.
///
/// # Examples
///
/// ```
/// use snnmap_core::par::resolve_threads;
///
/// assert_eq!(resolve_threads(3), 3);
/// assert!(resolve_threads(0) >= 1); // auto-detected
/// ```
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("SNNMAP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Caps `threads` so every worker has at least [`MIN_ITEMS_PER_THREAD`]
/// items, and never exceeds the item count.
#[inline]
fn effective_threads(threads: usize, items: usize) -> usize {
    let by_work = items / MIN_ITEMS_PER_THREAD;
    threads.min(by_work.max(1)).max(1)
}

/// Fills `out[i] = f(base_of_chunk + i)` across up to `threads` workers.
///
/// The slice is split into contiguous chunks, one per worker; chunk `0`
/// runs on the calling thread so a worker is only spawned when there is a
/// second chunk. Because `f` is pure per index and every element is
/// written exactly once, the result is identical for any thread count.
pub fn par_init<T, F>(threads: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    CALLS.fetch_add(1, Relaxed);
    par_init_inner(effective_threads(threads, out.len()), out, f);
}

/// [`par_init`] without the work-granularity throttle: the caller has
/// already decided how many workers the job deserves (e.g.
/// [`par_block_sum`], whose few slots each carry a whole block of work).
fn par_init_inner<T, F>(threads: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = out.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    PARALLEL_CALLS.fetch_add(1, Relaxed);
    std::thread::scope(|s| {
        let mut chunks = out.chunks_mut(chunk);
        let first = chunks.next();
        for (k, part) in chunks.enumerate() {
            let base = (k + 1) * chunk;
            WORKERS.fetch_add(1, Relaxed);
            s.spawn(move || {
                for (j, slot) in part.iter_mut().enumerate() {
                    *slot = f(base + j);
                }
            });
        }
        if let Some(part) = first {
            for (j, slot) in part.iter_mut().enumerate() {
                *slot = f(j);
            }
        }
    });
}

/// Runs `f(i, &mut results)` for every `i in 0..n` and returns the
/// concatenation of the per-chunk result vectors **in chunk (= index)
/// order**.
///
/// `f` may push zero or more items per index (filtering maps use this),
/// so the output length is data-dependent; the *order* of surviving items
/// always matches what the serial loop would produce, independent of the
/// thread count.
pub fn par_flat_map<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &mut Vec<R>) + Sync,
{
    CALLS.fetch_add(1, Relaxed);
    let threads = effective_threads(threads, n);
    if threads == 1 {
        let mut out = Vec::new();
        for i in 0..n {
            f(i, &mut out);
        }
        return out;
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    PARALLEL_CALLS.fetch_add(1, Relaxed);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1);
        for k in 1..threads {
            let lo = k * chunk;
            let hi = ((k + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            WORKERS.fetch_add(1, Relaxed);
            handles.push(s.spawn(move || {
                let mut v = Vec::new();
                for i in lo..hi {
                    f(i, &mut v);
                }
                v
            }));
        }
        let mut first = Vec::new();
        for i in 0..chunk.min(n) {
            f(i, &mut first);
        }
        parts.push(first);
        for h in handles {
            // A worker can only panic if `f` panicked; propagate it.
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Sums `f(lo..hi)` over fixed-size blocks of `block` indices, combining
/// the per-block partial sums **in block order**.
///
/// Block boundaries depend only on `n` and `block` — never on the thread
/// count — so every partial sum (and therefore the total, including its
/// floating-point rounding) is bit-identical for any `threads`. Blocks
/// are distributed over workers via [`par_init`].
pub fn par_block_sum<F>(threads: usize, n: usize, block: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    assert!(block > 0, "block size must be positive");
    CALLS.fetch_add(1, Relaxed);
    if n == 0 {
        return 0.0;
    }
    let blocks = n.div_ceil(block);
    if blocks == 1 {
        return f(0..n);
    }
    let mut partial = vec![0.0f64; blocks];
    // Granularity is decided on the underlying item count (each slot is a
    // whole block of work), not on the handful of partial-sum slots.
    par_init_inner(effective_threads(threads, n), &mut partial, |b| {
        let lo = b * block;
        let hi = (lo + block).min(n);
        f(lo..hi)
    });
    partial.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honours_explicit_request() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn par_init_matches_serial_for_every_thread_count() {
        let n = 10_000;
        let mut expect = vec![0u64; n];
        par_init(1, &mut expect, |i| (i as u64).wrapping_mul(0x9e3779b9));
        for threads in [2, 3, 4, 8, 17] {
            let mut got = vec![0u64; n];
            par_init(threads, &mut got, |i| (i as u64).wrapping_mul(0x9e3779b9));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_flat_map_preserves_order_and_filtering() {
        let n = 9_999;
        let f = |i: usize, out: &mut Vec<usize>| {
            if i % 3 == 0 {
                out.push(i * 2);
            }
        };
        let expect = par_flat_map(1, n, f);
        assert_eq!(expect.len(), n.div_ceil(3));
        for threads in [2, 4, 5, 16] {
            assert_eq!(par_flat_map(threads, n, f), expect, "threads={threads}");
        }
    }

    #[test]
    fn par_block_sum_is_bitwise_thread_independent() {
        // Sums of many different magnitudes expose any reassociation.
        let n = 50_000;
        let weight = |i: usize| ((i % 97) as f64).exp2() * 1e-7;
        let f = |r: std::ops::Range<usize>| r.map(weight).sum::<f64>();
        let expect = par_block_sum(1, n, 1024, f);
        for threads in [2, 3, 4, 8] {
            let got = par_block_sum(threads, n, 1024, f);
            assert_eq!(got.to_bits(), expect.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_block_sum_handles_degenerate_sizes() {
        assert_eq!(par_block_sum(4, 0, 16, |_| 1.0), 0.0);
        assert_eq!(par_block_sum(4, 5, 16, |r| r.len() as f64), 5.0);
        assert_eq!(par_block_sum(1, 33, 16, |r| r.len() as f64), 33.0);
    }

    #[test]
    fn counters_observe_parallel_fanout() {
        // Other tests run concurrently in this process, so deltas are
        // lower bounds, never exact counts.
        let before = counters();
        let mut out = vec![0u64; 3 * MIN_ITEMS_PER_THREAD];
        par_init(3, &mut out, |i| i as u64);
        let d = counters().since(before);
        assert!(d.calls >= 1, "{d:?}");
        assert!(d.parallel_calls >= 1, "{d:?}");
        assert!(d.workers_spawned >= 2, "{d:?}");

        // A serial-path call bumps only `calls`.
        let before = counters();
        let mut small = vec![0u64; 4];
        par_init(1, &mut small, |i| i as u64);
        assert!(counters().since(before).calls >= 1);
    }

    #[test]
    fn small_inputs_run_serially_but_correctly() {
        let mut out = vec![0usize; 10];
        par_init(8, &mut out, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        let v = par_flat_map(8, 10, |i, out| out.push(i));
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }
}
