//! The paper's mapping approach: Hilbert space-filling-curve initial
//! placement plus Force-Directed refinement.
//!
//! §4 of *Mapping Very Large Scale Spiking Neuron Network to Neuromorphic
//! Hardware* (ASPLOS '23) maps a Partitioned Cluster Network onto a
//! 2D-mesh system in two steps, both implemented here:
//!
//! 1. **Initial placement** ([`hsc_placement`]): topologically sort the
//!    PCN (Algorithm 2, non-DAG tolerant — [`toposort`]) and lay the
//!    resulting 1D sequence onto the mesh along a Hilbert space-filling
//!    curve (eq. 17, `P_init = Hilbert ∘ Seq`).
//! 2. **Force-Directed refinement** ([`force_directed`]): treat cluster
//!    connections as tension forces and greedily swap adjacent
//!    positive-tension pairs, highest tension first, a λ-fraction of the
//!    queue per sweep (Algorithm 3). The system's total potential energy
//!    decreases monotonically (eq. 31), which guarantees convergence; with
//!    the energy-model potential (eq. 25) that energy *is* the paper's
//!    `M_ec` metric (eq. 26).
//!
//! The [`Mapper`] type packages both steps behind a builder API.
//!
//! **Fault-aware mapping**: every phase has a `_masked` variant taking a
//! [`snnmap_hw::FaultMap`] (or configure [`MapperBuilder::fault_map`]) so
//! placement and refinement avoid dead cores; [`validate`] and [`repair`]
//! check and patch an existing placement after the hardware degrades.
//!
//! # Examples
//!
//! ```
//! use snnmap_core::{Mapper, Potential};
//! use snnmap_hw::Mesh;
//! use snnmap_model::generators::random_pcn;
//!
//! let pcn = random_pcn(60, 4.0, 1)?;
//! let mesh = Mesh::square_for(60)?; // 8x8
//! let outcome = Mapper::builder().potential(Potential::L2Squared).build().map(&pcn, mesh)?;
//! assert!(outcome.placement.is_complete());
//! let stats = outcome.fd_stats.expect("FD runs by default");
//! assert!(stats.final_energy <= stats.initial_energy);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod coarsen;
mod error;
mod fd;
mod hsc;
mod mapper;
mod multilevel;
mod objective;
pub mod par;
mod toposort;
mod validate;

pub use coarsen::{coarsen, CoarseLevel, CoarsenConfig};
pub use error::CoreError;
pub use fd::{
    force_directed, force_directed_budgeted, force_directed_masked,
    force_directed_masked_traced, force_directed_traced, CheckpointWriter, CoordF, FdCheckpoint,
    FdConfig, FdResume, FdRunOpts, FdStats, Potential, RunBudget, StopReason, TensionMode,
};
pub use hsc::{
    hsc_placement, hsc_placement_board, hsc_placement_masked, hsc_placement_masked_threaded,
    hsc_placement_threaded, random_placement, random_placement_masked, sequence_placement,
    sequence_placement_masked,
};
pub use mapper::{InitialPlacement, MapOutcome, Mapper, MapperBuilder, RepairReport};
pub use multilevel::MultilevelConfig;
pub use objective::{
    IncrementalCongestion, Objective, ReweightOutcome, SweepReweighter, CONGESTION_SCALE,
    INTERCHIP_WEIGHT, REWEIGHT_GAIN,
};
pub use toposort::toposort;
pub use validate::{
    repair, repair_board, validate, validate_board, DegradedPlacement, RepairMove,
    RepairOutcome, ValidationReport, Violation,
};
