//! Placement validation and repair against hardware faults and per-core
//! capacity limits.
//!
//! Mapping pipelines produce placements; deployed systems develop faults.
//! [`validate`] checks a placement against a [`FaultMap`] and the paper's
//! `CON_npc`/`CON_spc` capacity constraints (§3.2), reporting every
//! [`Violation`]; [`repair`] greedily relocates clusters stranded on dead
//! cores (and places stragglers) onto the nearest healthy free core, so a
//! previously good placement survives a fault-map update without a full
//! re-mapping run.

use std::fmt;

use snnmap_hw::{Board, ChipId, Coord, CoreConstraints, FaultMap, HwError, Placement};
use snnmap_model::Pcn;

use crate::CoreError;

/// One way a placement can violate the hardware's ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The cluster has no core at all.
    Unplaced {
        /// The unplaced cluster.
        cluster: u32,
    },
    /// The cluster sits on a core the fault map marks dead.
    OnDeadCore {
        /// The stranded cluster.
        cluster: u32,
        /// The dead core it occupies.
        coord: Coord,
    },
    /// The cluster exceeds the per-core neuron or synapse capacity.
    CapacityExceeded {
        /// The oversized cluster.
        cluster: u32,
        /// The core it occupies.
        coord: Coord,
        /// Its neuron count.
        neurons: u32,
        /// Its synapse count.
        synapses: u64,
    },
    /// The cluster sits on a core of a chip the fault map marks entirely
    /// dead (whole-chip loss — reported instead of the per-core
    /// [`Violation::OnDeadCore`] so callers can tell chip loss apart).
    OnDeadChip {
        /// The stranded cluster.
        cluster: u32,
        /// The dead core it occupies.
        coord: Coord,
        /// The dead chip that core belongs to.
        chip: ChipId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unplaced { cluster } => write!(f, "cluster {cluster} is unplaced"),
            Violation::OnDeadCore { cluster, coord } => {
                write!(f, "cluster {cluster} occupies dead core {coord}")
            }
            Violation::CapacityExceeded { cluster, coord, neurons, synapses } => write!(
                f,
                "cluster {cluster} at {coord} exceeds core capacity \
                 ({neurons} neurons, {synapses} synapses)"
            ),
            Violation::OnDeadChip { cluster, coord, chip } => {
                write!(f, "cluster {cluster} occupies core {coord} of dead chip {chip}")
            }
        }
    }
}

/// The outcome of [`validate`]: every violation found, in cluster order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    violations: Vec<Violation>,
}

impl ValidationReport {
    /// `true` when the placement is fully consistent with the hardware.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, ordered by cluster id.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "placement valid");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Checks `placement` against an optional fault map and optional per-core
/// capacity constraints.
///
/// Injectivity and grid/position agreement are structural invariants of
/// [`Placement`] itself; this function checks the *external* ground truth:
/// completeness, dead cores, and `CON_npc`/`CON_spc`.
///
/// # Errors
///
/// [`CoreError::ClusterCountMismatch`] when `pcn` and `placement` disagree
/// on the cluster count; [`HwError::InvalidFaultSpec`] (wrapped) when the
/// fault map covers a different mesh.
pub fn validate(
    pcn: &Pcn,
    placement: &Placement,
    faults: Option<&FaultMap>,
    constraints: Option<&CoreConstraints>,
) -> Result<ValidationReport, CoreError> {
    check_compatible(pcn, placement, faults)?;
    let mut violations = Vec::new();
    for c in 0..placement.len() {
        let Some(coord) = placement.coord_of(c) else {
            violations.push(Violation::Unplaced { cluster: c });
            continue;
        };
        if let Some(fm) = faults {
            if fm.is_dead(coord) {
                violations.push(Violation::OnDeadCore { cluster: c, coord });
            }
        }
        if let Some(con) = constraints {
            let neurons = pcn.neurons_in(c);
            let synapses = pcn.synapses_in(c);
            if !con.admits(neurons, synapses) {
                violations.push(Violation::CapacityExceeded { cluster: c, coord, neurons, synapses });
            }
        }
    }
    Ok(ValidationReport { violations })
}

/// Checks `placement` against a multi-chip [`Board`]: completeness, the
/// per-core capacity vectors ([`Board::constraints_at`]), dead cores and
/// chip liveness. A cluster stranded on a core of an *entirely* dead chip
/// is reported as [`Violation::OnDeadChip`]; a dead core on an otherwise
/// live chip stays [`Violation::OnDeadCore`].
///
/// # Errors
///
/// As [`validate`], plus [`CoreError::InvalidRunOpts`] when the board
/// covers a different mesh than the placement.
pub fn validate_board(
    pcn: &Pcn,
    placement: &Placement,
    faults: Option<&FaultMap>,
    board: &Board,
) -> Result<ValidationReport, CoreError> {
    check_compatible(pcn, placement, faults)?;
    if board.mesh() != placement.mesh() {
        return Err(CoreError::InvalidRunOpts {
            message: format!(
                "board covers {} but placement targets {}",
                board.mesh(),
                placement.mesh()
            ),
        });
    }
    let dead_chips = match faults {
        Some(fm) => fm.dead_chips(board),
        None => Vec::new(),
    };
    let mut violations = Vec::new();
    for c in 0..placement.len() {
        let Some(coord) = placement.coord_of(c) else {
            violations.push(Violation::Unplaced { cluster: c });
            continue;
        };
        if let Some(fm) = faults {
            if fm.is_dead(coord) {
                let chip = board.chip_of(coord);
                if dead_chips.binary_search(&chip).is_ok() {
                    violations.push(Violation::OnDeadChip { cluster: c, coord, chip });
                } else {
                    violations.push(Violation::OnDeadCore { cluster: c, coord });
                }
            }
        }
        let neurons = pcn.neurons_in(c);
        let synapses = pcn.synapses_in(c);
        if !board.admits(coord, neurons, synapses) {
            violations.push(Violation::CapacityExceeded { cluster: c, coord, neurons, synapses });
        }
    }
    Ok(ValidationReport { violations })
}

/// One relocation performed by [`repair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairMove {
    /// The relocated cluster.
    pub cluster: u32,
    /// Where it was (`None` if it was unplaced).
    pub from: Option<Coord>,
    /// The healthy free core it now occupies.
    pub to: Coord,
}

/// The outcome of [`repair`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairOutcome {
    /// Relocations performed, in cluster order.
    pub moved: Vec<RepairMove>,
    /// Violations relocation cannot fix (capacity overruns: all cores are
    /// homogeneous, so no destination would admit the cluster either).
    pub unrepaired: Vec<Violation>,
}

/// Greedily repairs a placement in place: clusters on dead cores move to
/// the nearest healthy free core (ties broken row-major, so repair is
/// deterministic), unplaced clusters are placed next to their
/// heaviest-traffic placed neighbour. Capacity violations are reported
/// back unrepaired — relocation cannot shrink a cluster.
///
/// Repair is **transactional** (the moves are staged on a scratch copy
/// and committed only on success, so an error leaves `placement`
/// untouched) and **idempotent**: repairing an already-repaired placement
/// performs no moves.
///
/// # Errors
///
/// As [`validate`], plus [`CoreError::InsufficientCores`] when a stranded
/// cluster has no healthy free core left to move to. The placement is
/// unchanged when an error is returned.
pub fn repair(
    pcn: &Pcn,
    placement: &mut Placement,
    faults: Option<&FaultMap>,
    constraints: Option<&CoreConstraints>,
) -> Result<RepairOutcome, CoreError> {
    let report = validate(pcn, placement, faults, constraints)?;
    let mut staged = placement.clone();
    let mut outcome = RepairOutcome::default();
    for v in report.violations() {
        match *v {
            // [`validate`] never reports OnDeadChip (that takes a board),
            // but treat it like any dead core if a caller feeds one in.
            Violation::OnDeadCore { cluster, coord }
            | Violation::OnDeadChip { cluster, coord, .. } => {
                let to = relocate(&mut staged, faults, cluster, coord)?;
                outcome.moved.push(RepairMove { cluster, from: Some(coord), to });
            }
            Violation::Unplaced { cluster } => {
                let anchor = anchor_for(pcn, &staged, cluster);
                let to = nearest_free_healthy(&staged, faults, anchor).ok_or_else(|| {
                    insufficient(&staged, faults)
                })?;
                staged.place(cluster, to)?;
                outcome.moved.push(RepairMove { cluster, from: None, to });
            }
            Violation::CapacityExceeded { .. } => outcome.unrepaired.push(*v),
        }
    }
    *placement = staged;
    Ok(outcome)
}

/// The typed degraded-mode outcome of [`repair_board`]: the board
/// genuinely cannot absorb the surviving load, so the listed clusters
/// were left unplaced rather than failing the whole repair. The demand
/// and spare totals quantify the capacity shortfall: what the unplaced
/// clusters need versus what the free healthy cores can still hold.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegradedPlacement {
    /// Clusters left unplaced, in ascending cluster order.
    pub unplaced: Vec<u32>,
    /// Total neuron demand of the unplaced clusters.
    pub demand_neurons: u64,
    /// Total synapse demand of the unplaced clusters.
    pub demand_synapses: u64,
    /// Total neuron capacity of the remaining free healthy cores.
    pub spare_neurons: u64,
    /// Total synapse capacity of the remaining free healthy cores.
    pub spare_synapses: u64,
}

impl fmt::Display for DegradedPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cluster(s) unplaced: demand {} neurons / {} synapses, \
             spare {} neurons / {} synapses",
            self.unplaced.len(),
            self.demand_neurons,
            self.demand_synapses,
            self.spare_neurons,
            self.spare_synapses
        )
    }
}

/// Capacity-aware [`repair`] against a multi-chip [`Board`]: clusters
/// stranded on dead cores or chips (or overloading a core) relocate to
/// the nearest free healthy core **that admits them** (Manhattan
/// distance, then row-major index — fully deterministic), and unplaced
/// clusters are placed next to their heaviest-traffic neighbour the same
/// way.
///
/// Unlike [`repair`], running out of room is not an error: a cluster no
/// remaining core can admit is left (or becomes) unplaced and recorded
/// in the returned [`DegradedPlacement`], so whole-chip loss on a board
/// without enough spare capacity degrades gracefully instead of killing
/// the caller. The staged moves are still transactional — a typed error
/// leaves `placement` untouched — and the degraded outcome commits the
/// placeable subset.
///
/// # Errors
///
/// As [`validate_board`].
pub fn repair_board(
    pcn: &Pcn,
    placement: &mut Placement,
    faults: Option<&FaultMap>,
    board: &Board,
) -> Result<(RepairOutcome, Option<DegradedPlacement>), CoreError> {
    let report = validate_board(pcn, placement, faults, board)?;
    let mut staged = placement.clone();
    let mut outcome = RepairOutcome::default();
    let mut unplaced: Vec<u32> = Vec::new();
    // A cluster can carry several violations at once (e.g. dead core and
    // capacity overrun); one relocation fixes them all, so handle each
    // cluster exactly once.
    let mut handled = vec![false; placement.len() as usize];
    for v in report.violations() {
        let cluster = match *v {
            Violation::Unplaced { cluster }
            | Violation::OnDeadCore { cluster, .. }
            | Violation::OnDeadChip { cluster, .. }
            | Violation::CapacityExceeded { cluster, .. } => cluster,
        };
        if std::mem::replace(&mut handled[cluster as usize], true) {
            continue;
        }
        match *v {
            Violation::OnDeadCore { cluster, coord }
            | Violation::OnDeadChip { cluster, coord, .. }
            | Violation::CapacityExceeded { cluster, coord, .. } => {
                let neurons = pcn.neurons_in(cluster);
                let synapses = pcn.synapses_in(cluster);
                match nearest_free_admitting(&staged, faults, board, coord, neurons, synapses)
                {
                    Some(to) => {
                        staged.unplace(cluster)?;
                        staged.place(cluster, to)?;
                        outcome.moved.push(RepairMove { cluster, from: Some(coord), to });
                    }
                    None => {
                        staged.unplace(cluster)?;
                        unplaced.push(cluster);
                        outcome.unrepaired.push(*v);
                    }
                }
            }
            Violation::Unplaced { cluster } => {
                let anchor = anchor_for(pcn, &staged, cluster);
                let neurons = pcn.neurons_in(cluster);
                let synapses = pcn.synapses_in(cluster);
                match nearest_free_admitting(&staged, faults, board, anchor, neurons, synapses)
                {
                    Some(to) => {
                        staged.place(cluster, to)?;
                        outcome.moved.push(RepairMove { cluster, from: None, to });
                    }
                    None => {
                        unplaced.push(cluster);
                        outcome.unrepaired.push(*v);
                    }
                }
            }
        }
    }
    let degraded = if unplaced.is_empty() {
        None
    } else {
        unplaced.sort_unstable();
        let (demand_neurons, demand_synapses) = unplaced.iter().fold((0u64, 0u64), |(n, s), &c| {
            (n + u64::from(pcn.neurons_in(c)), s + pcn.synapses_in(c))
        });
        let (spare_neurons, spare_synapses) = board
            .mesh()
            .iter()
            .filter(|&c| {
                staged.cluster_at(c).is_none()
                    && !staged.is_masked(c)
                    && faults.map_or(true, |fm| !fm.is_dead(c))
            })
            .fold((0u64, 0u64), |(n, s), c| {
                let con = board.constraints_at(c);
                (n + u64::from(con.neurons_per_core), s + con.synapses_per_core)
            });
        Some(DegradedPlacement {
            unplaced,
            demand_neurons,
            demand_synapses,
            spare_neurons,
            spare_synapses,
        })
    };
    *placement = staged;
    Ok((outcome, degraded))
}

/// The free healthy core nearest to `anchor` whose capacity vector
/// admits the cluster (Manhattan distance, then row-major index).
fn nearest_free_admitting(
    placement: &Placement,
    faults: Option<&FaultMap>,
    board: &Board,
    anchor: Coord,
    neurons: u32,
    synapses: u64,
) -> Option<Coord> {
    let mesh = placement.mesh();
    mesh.iter()
        .filter(|&c| {
            placement.cluster_at(c).is_none()
                && !placement.is_masked(c)
                && faults.map_or(true, |fm| !fm.is_dead(c))
                && board.admits(c, neurons, synapses)
        })
        .min_by_key(|&c| (c.manhattan(anchor), mesh.index_of(c)))
}

fn check_compatible(
    pcn: &Pcn,
    placement: &Placement,
    faults: Option<&FaultMap>,
) -> Result<(), CoreError> {
    if pcn.num_clusters() != placement.len() {
        return Err(CoreError::ClusterCountMismatch {
            pcn: pcn.num_clusters(),
            placement: placement.len(),
        });
    }
    if let Some(fm) = faults {
        if fm.mesh() != placement.mesh() {
            return Err(CoreError::Hw(HwError::InvalidFaultSpec {
                message: format!(
                    "fault map covers {} but placement targets {}",
                    fm.mesh(),
                    placement.mesh()
                ),
            }));
        }
    }
    Ok(())
}

/// Moves `cluster` off the dead core `coord` to the nearest healthy free
/// core.
fn relocate(
    placement: &mut Placement,
    faults: Option<&FaultMap>,
    cluster: u32,
    coord: Coord,
) -> Result<Coord, CoreError> {
    let to = nearest_free_healthy(placement, faults, coord)
        .ok_or_else(|| insufficient(placement, faults))?;
    placement.unplace(cluster)?;
    placement.place(cluster, to)?;
    Ok(to)
}

/// Where an unplaced cluster would like to be: the core of its
/// heaviest-traffic placed graph neighbour, or the mesh centre when every
/// neighbour is itself unplaced.
fn anchor_for(pcn: &Pcn, placement: &Placement, cluster: u32) -> Coord {
    let mut best: Option<(f64, Coord)> = None;
    let neighbors = pcn.out_edges(cluster).chain(pcn.in_edges(cluster));
    for (k, w) in neighbors {
        if let Some(c) = placement.coord_of(k) {
            let w = w as f64;
            if best.map_or(true, |(bw, _)| w > bw) {
                best = Some((w, c));
            }
        }
    }
    match best {
        Some((_, c)) => c,
        None => {
            let mesh = placement.mesh();
            Coord::new(mesh.rows() / 2, mesh.cols() / 2)
        }
    }
}

/// The free healthy core nearest to `anchor` (Manhattan distance, then
/// row-major index — fully deterministic).
pub(crate) fn nearest_free_healthy(
    placement: &Placement,
    faults: Option<&FaultMap>,
    anchor: Coord,
) -> Option<Coord> {
    let mesh = placement.mesh();
    mesh.iter()
        .filter(|&c| {
            placement.cluster_at(c).is_none()
                && !placement.is_masked(c)
                && faults.map_or(true, |fm| !fm.is_dead(c))
        })
        .min_by_key(|&c| (c.manhattan(anchor), mesh.index_of(c)))
}

fn insufficient(placement: &Placement, faults: Option<&FaultMap>) -> CoreError {
    let total = placement.mesh().len();
    let healthy = faults.map_or(total, FaultMap::healthy_cores);
    CoreError::InsufficientCores { clusters: placement.len(), healthy, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::Mesh;
    use snnmap_model::PcnBuilder;

    fn pcn_with(n: u32, neurons: u32, synapses: u64) -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..n {
            b.add_cluster(neurons, synapses);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, (i + 1) as f32).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn clean_placement_validates() {
        let pcn = pcn_with(4, 10, 100);
        let mesh = Mesh::new(2, 2).unwrap();
        let p = crate::hsc_placement(&pcn, mesh).unwrap();
        let report = validate(&pcn, &p, None, Some(&CoreConstraints::default())).unwrap();
        assert!(report.is_ok());
        assert_eq!(report.to_string(), "placement valid");
    }

    #[test]
    fn detects_and_repairs_dead_core_occupancy() {
        let pcn = pcn_with(4, 10, 100);
        let mesh = Mesh::new(3, 3).unwrap();
        let p0 = crate::hsc_placement(&pcn, mesh).unwrap();
        // The fault arrives *after* mapping: kill the core under cluster 2.
        let dead = p0.coord_of(2).unwrap();
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(dead).unwrap();
        let report = validate(&pcn, &p0, Some(&fm), None).unwrap();
        assert_eq!(report.violations(), &[Violation::OnDeadCore { cluster: 2, coord: dead }]);

        let mut p = p0.clone();
        let outcome = repair(&pcn, &mut p, Some(&fm), None).unwrap();
        assert_eq!(outcome.moved.len(), 1);
        assert_eq!(outcome.moved[0].cluster, 2);
        assert_eq!(outcome.moved[0].from, Some(dead));
        assert!(outcome.unrepaired.is_empty());
        assert!(validate(&pcn, &p, Some(&fm), None).unwrap().is_ok());
        p.check_consistency().unwrap();
    }

    #[test]
    fn repairs_unplaced_clusters_near_their_neighbours() {
        let pcn = pcn_with(3, 1, 1);
        let mesh = Mesh::new(3, 3).unwrap();
        let mut p = Placement::new_unplaced(mesh, 3);
        p.place(0, Coord::new(0, 0)).unwrap();
        p.place(2, Coord::new(2, 2)).unwrap();
        // Cluster 1's heaviest edge is 1<->2 (weight 2 vs 1), so it should
        // land next to cluster 2.
        let outcome = repair(&pcn, &mut p, None, None).unwrap();
        assert_eq!(outcome.moved.len(), 1);
        let to = outcome.moved[0].to;
        assert_eq!(to.manhattan(Coord::new(2, 2)), 1);
        assert!(p.is_complete());
    }

    #[test]
    fn capacity_violations_are_reported_not_repaired() {
        let pcn = pcn_with(2, 100, 10);
        let mesh = Mesh::new(2, 2).unwrap();
        let mut p = crate::hsc_placement(&pcn, mesh).unwrap();
        let tight = CoreConstraints::new(50, 1_000).unwrap();
        let report = validate(&pcn, &p, None, Some(&tight)).unwrap();
        assert_eq!(report.violations().len(), 2);
        let outcome = repair(&pcn, &mut p, None, Some(&tight)).unwrap();
        assert!(outcome.moved.is_empty());
        assert_eq!(outcome.unrepaired.len(), 2);
    }

    #[test]
    fn repair_without_room_reports_insufficient_cores() {
        let pcn = pcn_with(4, 1, 1);
        let mesh = Mesh::new(2, 2).unwrap();
        let mut p = crate::hsc_placement(&pcn, mesh).unwrap();
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(p.coord_of(0).unwrap()).unwrap();
        // Full mesh, one core now dead: nowhere to go.
        assert!(matches!(
            repair(&pcn, &mut p, Some(&fm), None),
            Err(CoreError::InsufficientCores { clusters: 4, healthy: 3, total: 4 })
        ));
    }

    #[test]
    fn failed_repair_leaves_the_placement_untouched() {
        let pcn = pcn_with(4, 1, 1);
        let mesh = Mesh::new(2, 3).unwrap();
        let mut p = crate::hsc_placement(&pcn, mesh).unwrap();
        // Strand two clusters but leave only one free healthy core: the
        // first stranded cluster could relocate, the second cannot — the
        // whole repair must roll back.
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(p.coord_of(0).unwrap()).unwrap();
        fm.kill_core(p.coord_of(1).unwrap()).unwrap();
        let free: Vec<Coord> = mesh.iter().filter(|&c| p.cluster_at(c).is_none()).collect();
        assert_eq!(free.len(), 2);
        fm.kill_core(free[0]).unwrap();
        let before = p.clone();
        assert!(matches!(
            repair(&pcn, &mut p, Some(&fm), None),
            Err(CoreError::InsufficientCores { .. })
        ));
        assert_eq!(p, before, "a failed repair must not mutate the placement");
    }

    #[test]
    fn repair_is_idempotent_under_every_fault_pattern() {
        use snnmap_hw::{FaultInjector, FaultPattern};
        let pcn = pcn_with(40, 2, 4);
        let mesh = Mesh::new(8, 8).unwrap();
        for seed in 0..8u64 {
            for pattern in [
                FaultPattern::Uniform { core_rate: 0.15, link_rate: 0.05 },
                FaultPattern::Clustered { core_rate: 0.15, regions: 2 },
            ] {
                let fm = FaultInjector::new(seed).inject(mesh, &pattern).unwrap();
                let mut p = crate::hsc_placement(&pcn, mesh).unwrap();
                let first = repair(&pcn, &mut p, Some(&fm), None).unwrap();
                // Repaired placements always pass validate().
                assert!(
                    validate(&pcn, &p, Some(&fm), None).unwrap().is_ok(),
                    "seed {seed}: repaired placement still invalid"
                );
                p.check_consistency().unwrap();
                // repair(repair(p)) == repair(p): the second pass is a no-op.
                let snapshot = p.clone();
                let second = repair(&pcn, &mut p, Some(&fm), None).unwrap();
                assert!(second.moved.is_empty(), "seed {seed}: {second:?}");
                assert_eq!(p, snapshot, "seed {seed}: second repair changed the placement");
                // And a third, for good measure of the fixed point.
                let third = repair(&pcn, &mut p, Some(&fm), None).unwrap();
                assert_eq!(second, third);
                let _ = first;
            }
        }
    }

    #[test]
    fn mismatched_inputs_are_typed_errors() {
        let pcn = pcn_with(2, 1, 1);
        let p = Placement::new_unplaced(Mesh::new(2, 2).unwrap(), 3);
        assert!(matches!(
            validate(&pcn, &p, None, None),
            Err(CoreError::ClusterCountMismatch { pcn: 2, placement: 3 })
        ));
        let p = Placement::new_unplaced(Mesh::new(2, 2).unwrap(), 2);
        let fm = FaultMap::new(Mesh::new(3, 3).unwrap());
        assert!(matches!(
            validate(&pcn, &p, Some(&fm), None),
            Err(CoreError::Hw(HwError::InvalidFaultSpec { .. }))
        ));
    }
}
