//! The pluggable refinement objective family.
//!
//! Classic FD descends the *energy* potential alone (eq. 25/26). Real
//! deployments also care about worst-router congestion (`M_mc`, eq. 14)
//! and latency tails, so refinement accepts a composite objective
//!
//! ```text
//! J = w_e · energy + λc · congestion + λt · latency-tail
//! ```
//!
//! where the congestion term charges every connection the
//! Algorithm 4 expected per-router traffic of its bounding rectangle
//! (optionally re-weighted by a router *heat* field fed back from
//! `NocSim` runs — "sim in the loop"), and the latency-tail term charges
//! the *squared* Manhattan distance so long edges dominate.
//!
//! Three invariants keep the subsystem compatible with the deterministic
//! multi-core engine:
//!
//! 1. **Energy is untouched.** [`Objective::Energy`] adds zero state and
//!    zero floating-point operations to the tension path, so default runs
//!    reproduce historical placement digests bit-for-bit.
//! 2. **Tensions stay cacheable.** Every term is a pure function of the
//!    two endpoint positions and static per-run weight fields. A swap
//!    already invalidates the cached tensions of both moved clusters and
//!    all their graph neighbours (the force-patching dependency set),
//!    which is exactly the set whose composite tension can change.
//! 3. **Delta maintenance is exact.** [`IncrementalCongestion`] keeps the
//!    per-router congestion map in fixed-point integers so that applying
//!    a move and later undoing it cancels exactly and any sequence of
//!    moves bit-equals a from-scratch rebuild, independent of order or
//!    thread count.

use snnmap_hw::Mesh;
use snnmap_metrics::expectation_grid;
use snnmap_model::Pcn;

use crate::error::CoreError;

/// Fixed-point scale of [`IncrementalCongestion`]: map cells store
/// `round(contribution · 2^20)` as `i64`. 2^20 keeps sub-ulp rounding
/// noise far below any λc of practical size while leaving 43 bits of
/// headroom for accumulated traffic.
pub const CONGESTION_SCALE: f64 = (1u64 << 20) as f64;

/// Gain of the sim-in-the-loop reweight: the hottest router's congestion
/// cost is multiplied by `1 + REWEIGHT_GAIN`, cold routers stay at 1.
/// Chosen empirically on the Table 3 workloads (see
/// `results/BENCH_pareto.json`): large enough that hot-spot avoidance
/// beats the uniform-cost tie with plain energy descent, small enough
/// that energy regression stays bounded.
pub const REWEIGHT_GAIN: f64 = 4.0;

/// Extra cost multiplier per chip-boundary crossing in the board-aware
/// variant: an edge crossing `k` chip boundaries has its congestion and
/// latency-tail terms scaled by `1 + k · INTERCHIP_WEIGHT`.
pub const INTERCHIP_WEIGHT: f64 = 4.0;

/// What force-directed refinement descends.
///
/// The default, [`Objective::Energy`], is the paper's pure energy
/// potential and leaves the engine's hot path byte-identical to the
/// pre-objective implementation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Pure energy descent (eq. 25/26) — the historical behaviour.
    #[default]
    Energy,
    /// Pure congestion descent: minimize the summed Algorithm 4
    /// per-router expected traffic, weighted by `lambda_c`.
    Congestion {
        /// Weight λc of the congestion term (> 0, finite).
        lambda_c: f64,
    },
    /// The full composite `energy + λc·congestion + λt·latency-tail`.
    Composite {
        /// Weight λc of the congestion term (≥ 0, finite).
        lambda_c: f64,
        /// Weight λt of the squared-Manhattan latency-tail term
        /// (≥ 0, finite).
        lambda_t: f64,
    },
}

impl Objective {
    /// Stable label used in traces, digests, and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Objective::Energy => "energy",
            Objective::Congestion { .. } => "congestion",
            Objective::Composite { .. } => "composite",
        }
    }

    /// `(energy weight, λc, λt)` of the composite.
    pub fn weights(&self) -> (f64, f64, f64) {
        match *self {
            Objective::Energy => (1.0, 0.0, 0.0),
            Objective::Congestion { lambda_c } => (0.0, lambda_c, 0.0),
            Objective::Composite { lambda_c, lambda_t } => (1.0, lambda_c, lambda_t),
        }
    }

    /// Whether this is the zero-overhead energy objective.
    pub fn is_energy(&self) -> bool {
        matches!(self, Objective::Energy)
    }

    /// Builds an objective from a CLI-style label plus λ knobs. Returns
    /// `None` for an unknown label; λ values are validated separately by
    /// [`validate`](Self::validate).
    pub fn from_parts(label: &str, lambda_c: f64, lambda_t: f64) -> Option<Objective> {
        match label {
            "energy" => Some(Objective::Energy),
            "congestion" => Some(Objective::Congestion { lambda_c }),
            "composite" => Some(Objective::Composite { lambda_c, lambda_t }),
            _ => None,
        }
    }

    /// Checks the λ weights are finite and meaningful.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidRunOpts`] when a weight is non-finite or
    /// negative, or when a pure congestion objective has `λc = 0` (the
    /// tension field would be identically zero and FD would no-op while
    /// claiming convergence).
    pub fn validate(&self) -> Result<(), CoreError> {
        let (_, lc, lt) = self.weights();
        for (name, v) in [("lambda_c", lc), ("lambda_t", lt)] {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::InvalidRunOpts {
                    message: format!("objective {name} must be finite and >= 0, got {v}"),
                });
            }
        }
        if matches!(self, Objective::Congestion { .. }) && lc == 0.0 {
            return Err(CoreError::InvalidRunOpts {
                message: "congestion objective requires lambda_c > 0".into(),
            });
        }
        Ok(())
    }
}

/// Caller hook fired between FD sweep batches in sim-in-the-loop mode:
/// given the current placement, produce per-router *heat* that the
/// engine folds into the congestion term's weight field.
///
/// Implementations must be deterministic for a given `(sweep, coords)`
/// input — the engine calls the hook serially at a sweep boundary, so a
/// seeded `NocSim` run keeps the whole refinement byte-identical across
/// thread counts.
pub trait SweepReweighter {
    /// Computes router heat for the placement `coords` (indexed by
    /// cluster) on `mesh` after `sweep` completed sweeps. The returned
    /// heat vector must be row-major with exactly `mesh.len()` entries.
    fn reweight(&mut self, sweep: u64, coords: &[snnmap_hw::Coord], mesh: Mesh) -> ReweightOutcome;
}

/// Result of one [`SweepReweighter`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReweightOutcome {
    /// Per-router heat, row-major, `mesh.len()` entries. All-zero heat
    /// leaves the current weight field unchanged.
    pub heat: Vec<u64>,
    /// Provenance label for the trace (`noc-sim`, `self`, …).
    pub source: String,
}

/// Delta-maintained fixed-point congestion map with
/// [`CongestionAccumulator`](snnmap_metrics::CongestionAccumulator)
/// semantics.
///
/// Each directed connection spreads `weight · expectation_grid` over its
/// source→target bounding rectangle — the exact orientation rules of
/// `CongestionAccumulator::add_edge` (the grid is *not* symmetric under
/// endpoint reversal, so direction matters). Cells store
/// `round(w · v · 2^20)` as `i64`: integer addition is associative and
/// `remove_edge` cancels `add_edge` exactly, so any interleaving of
/// moves bit-equals a from-scratch [`build`](Self::build).
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalCongestion {
    rows: usize,
    cols: usize,
    map: Vec<i64>,
}

impl IncrementalCongestion {
    /// An all-zero map for a `rows × cols` mesh.
    pub fn new(rows: u16, cols: u16) -> Self {
        let (rows, cols) = (rows as usize, cols as usize);
        Self { rows, cols, map: vec![0; rows * cols] }
    }

    /// Builds the map of a whole placement from scratch: `coords[c]` is
    /// cluster `c`'s `(x, y)` position. Every directed PCN connection is
    /// added once.
    pub fn build(pcn: &Pcn, coords: &[(u16, u16)], rows: u16, cols: u16) -> Self {
        let mut m = Self::new(rows, cols);
        for c in 0..pcn.num_clusters() {
            let s = coords[c as usize];
            for (t, w) in pcn.out_edges(c) {
                m.add_edge(s, coords[t as usize], f64::from(w));
            }
        }
        m
    }

    /// Adds one directed edge's spread contribution.
    pub fn add_edge(&mut self, s: (u16, u16), t: (u16, u16), weight: f64) {
        self.apply(s, t, weight, 1);
    }

    /// Removes one directed edge's spread contribution (exact inverse of
    /// [`add_edge`](Self::add_edge) with the same arguments).
    pub fn remove_edge(&mut self, s: (u16, u16), t: (u16, u16), weight: f64) {
        self.apply(s, t, weight, -1);
    }

    fn apply(&mut self, s: (u16, u16), t: (u16, u16), weight: f64, sign: i64) {
        let dx = s.0.abs_diff(t.0) as usize;
        let dy = s.1.abs_diff(t.1) as usize;
        let grid = expectation_grid(dx, dy);
        let gcols = dy + 1;
        let x0 = s.0.min(t.0) as usize;
        let y0 = s.1.min(t.1) as usize;
        // Mirror CongestionAccumulator::spread: the normalized grid walks
        // (0,0) -> (dx,dy); map back to the quadrant the edge occupies.
        let flip_x = t.0 < s.0;
        let flip_y = t.1 < s.1;
        for i in 0..=dx {
            let x = if flip_x { x0 + dx - i } else { x0 + i };
            for j in 0..=dy {
                let v = grid[i * gcols + j];
                if v == 0.0 {
                    continue;
                }
                let y = if flip_y { y0 + dy - j } else { y0 + j };
                // The quantization is a pure function of (w, v): add and
                // remove of the same edge cancel exactly.
                let q = (weight * v * CONGESTION_SCALE).round() as i64;
                self.map[x * self.cols + y] += sign * q;
            }
        }
    }

    /// The raw fixed-point map, row-major (`2^20` units of expected
    /// traffic per cell).
    pub fn map(&self) -> &[i64] {
        &self.map
    }

    /// The map as floating-point expected traffic, comparable to
    /// [`CongestionAccumulator::map`](snnmap_metrics::CongestionAccumulator::map)
    /// up to per-cell quantization (±½ ulp of `2^-20` per contribution).
    pub fn to_f64(&self) -> Vec<f64> {
        self.map.iter().map(|&v| v as f64 / CONGESTION_SCALE).collect()
    }

    /// The map as router *heat* for self-reweighting: negative cells
    /// (possible only through rounding jitter) clamp to zero.
    pub fn heat(&self) -> Vec<u64> {
        self.map.iter().map(|&v| v.max(0) as u64).collect()
    }
}

/// Engine-side state of a non-energy objective: λ weights, the
/// delta-maintained congestion map, the (optional) router heat field,
/// and the board geometry for inter-chip weighting.
#[derive(Debug, Clone)]
pub(crate) struct ObjectiveState {
    pub(crate) energy_w: f64,
    lambda_c: f64,
    lambda_t: f64,
    pub(crate) cong: IncrementalCongestion,
    /// Per-router congestion cost multiplier; `None` = uniform 1.0 (the
    /// O(1) Manhattan fast path applies).
    weight: Option<Vec<f64>>,
    /// Chip tile dimensions for the board-aware variant; `(0, 0)` when
    /// boardless (multiplier 1).
    chip_rows: u16,
    chip_cols: u16,
}

impl ObjectiveState {
    /// Builds the state for `objective` over the placement `coords`
    /// (cluster-indexed positions on a `rows × cols` mesh). `chip` is
    /// the board's chip tile size when mapping multi-chip hardware.
    pub(crate) fn new(
        objective: Objective,
        pcn: &Pcn,
        coords: &[(u16, u16)],
        rows: u16,
        cols: u16,
        chip: Option<(u16, u16)>,
    ) -> Self {
        let (energy_w, lambda_c, lambda_t) = objective.weights();
        let (chip_rows, chip_cols) = chip.unwrap_or((0, 0));
        Self {
            energy_w,
            lambda_c,
            lambda_t,
            cong: IncrementalCongestion::build(pcn, coords, rows, cols),
            weight: None,
            chip_rows,
            chip_cols,
        }
    }

    /// `1 + INTERCHIP_WEIGHT · chip-boundary crossings` of the edge
    /// `s → t` (1.0 when boardless).
    fn boardmul(&self, s: (u16, u16), t: (u16, u16)) -> f64 {
        if self.chip_rows == 0 {
            return 1.0;
        }
        let crossings = (s.0 / self.chip_rows).abs_diff(t.0 / self.chip_rows)
            + (s.1 / self.chip_cols).abs_diff(t.1 / self.chip_cols);
        1.0 + INTERCHIP_WEIGHT * f64::from(crossings)
    }

    /// Heat-weighted expected-traversal mass of the edge's rectangle:
    /// `Σ_r weight[r] · Expe(r)`. With a uniform weight field this is
    /// exactly the expected router count, `manhattan + 1`, computed in
    /// O(1).
    fn rect_cost(&self, s: (u16, u16), t: (u16, u16)) -> f64 {
        let dx = s.0.abs_diff(t.0) as usize;
        let dy = s.1.abs_diff(t.1) as usize;
        let Some(wf) = &self.weight else {
            return (dx + dy + 1) as f64;
        };
        let grid = expectation_grid(dx, dy);
        let gcols = dy + 1;
        let x0 = s.0.min(t.0) as usize;
        let y0 = s.1.min(t.1) as usize;
        let flip_x = t.0 < s.0;
        let flip_y = t.1 < s.1;
        let mut acc = 0.0;
        for i in 0..=dx {
            let x = if flip_x { x0 + dx - i } else { x0 + i };
            for j in 0..=dy {
                let v = grid[i * gcols + j];
                if v == 0.0 {
                    continue;
                }
                let y = if flip_y { y0 + dy - j } else { y0 + j };
                acc += wf[x * self.cong.cols + y] * v;
            }
        }
        acc
    }

    /// λ-weighted non-energy cost of one directed edge `s → t` carrying
    /// `w` traffic.
    fn edge_cost(&self, s: (u16, u16), t: (u16, u16), w: f64) -> f64 {
        let m = self.boardmul(s, t);
        let mut cost = 0.0;
        if self.lambda_c != 0.0 {
            cost += self.lambda_c * w * m * self.rect_cost(s, t);
        }
        if self.lambda_t != 0.0 {
            let d = (s.0.abs_diff(t.0) + s.1.abs_diff(t.1)) as f64;
            cost += self.lambda_t * w * m * d * d;
        }
        cost
    }

    /// Decrease of the non-energy terms if the clusters at positions
    /// `a` and `b` swap (`cu` at `a`, `cv` at `b`; either may be
    /// `u32::MAX` for an empty core). `pos` must reflect the *pre-swap*
    /// assignment for clusters other than `cu`/`cv` — which is the same
    /// pre- and post-swap, so both call sites may use the live table.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn swap_gain(
        &self,
        pcn: &Pcn,
        pos: &[u32],
        mesh_x: &[u16],
        mesh_y: &[u16],
        a: (u16, u16),
        b: (u16, u16),
        cu: u32,
        cv: u32,
    ) -> f64 {
        let mut gain = 0.0;
        visit_swap_edges(pcn, pos, mesh_x, mesh_y, a, b, cu, cv, |bs, bt, afs, aft, w| {
            gain += self.edge_cost(bs, bt, w) - self.edge_cost(afs, aft, w);
        });
        gain
    }

    /// Folds an applied swap into the incremental congestion map. Call
    /// *after* the engine's position tables are updated; `a`/`b` are the
    /// pre-swap coordinates of `cu`/`cv` (neighbour positions are
    /// untouched by a swap, so the live table serves for them).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn apply_swap(
        &mut self,
        pcn: &Pcn,
        pos: &[u32],
        mesh_x: &[u16],
        mesh_y: &[u16],
        a: (u16, u16),
        b: (u16, u16),
        cu: u32,
        cv: u32,
    ) {
        let cong = &mut self.cong;
        visit_swap_edges(pcn, pos, mesh_x, mesh_y, a, b, cu, cv, |bs, bt, afs, aft, w| {
            cong.remove_edge(bs, bt, w);
            cong.add_edge(afs, aft, w);
        });
    }

    /// Serial from-scratch `(congestion term, latency-tail term)` totals
    /// of the whole placement, λ-weighted — the per-sweep trace
    /// breakdown. O(edges), only run when tracing is enabled.
    pub(crate) fn totals(
        &self,
        pcn: &Pcn,
        pos: &[u32],
        mesh_x: &[u16],
        mesh_y: &[u16],
    ) -> (f64, f64) {
        let coord = |c: u32| {
            let p = pos[c as usize] as usize;
            (mesh_x[p], mesh_y[p])
        };
        let (mut cong, mut lat) = (0.0, 0.0);
        for c in 0..pcn.num_clusters() {
            let s = coord(c);
            for (t, w) in pcn.out_edges(c) {
                let t = coord(t);
                let wm = f64::from(w) * self.boardmul(s, t);
                if self.lambda_c != 0.0 {
                    cong += self.lambda_c * wm * self.rect_cost(s, t);
                }
                if self.lambda_t != 0.0 {
                    let d = (s.0.abs_diff(t.0) + s.1.abs_diff(t.1)) as f64;
                    lat += self.lambda_t * wm * d * d;
                }
            }
        }
        (cong, lat)
    }

    /// Installs a router heat field: cost multiplier
    /// `1 + REWEIGHT_GAIN · heat[r] / max(heat)` per router. All-zero
    /// heat keeps the current field. Returns `(max_heat, argmax index)`
    /// when the field changed.
    pub(crate) fn apply_reweight(&mut self, heat: &[u64]) -> Option<(u64, usize)> {
        let (mut max, mut arg) = (0u64, 0usize);
        for (i, &h) in heat.iter().enumerate() {
            if h > max {
                max = h;
                arg = i;
            }
        }
        if max == 0 {
            return None;
        }
        self.weight =
            Some(heat.iter().map(|&h| 1.0 + REWEIGHT_GAIN * (h as f64 / max as f64)).collect());
        Some((max, arg))
    }
}

/// Enumerates every directed PCN edge whose cost can change when the
/// clusters `cu` (at `a`) and `cv` (at `b`) swap, calling
/// `f(before_src, before_dst, after_src, after_dst, weight)` exactly
/// once per edge. Edges between `cu` and `cv` move both endpoints;
/// self-loops are visited once (in the out pass).
#[allow(clippy::too_many_arguments)]
fn visit_swap_edges(
    pcn: &Pcn,
    pos: &[u32],
    mesh_x: &[u16],
    mesh_y: &[u16],
    a: (u16, u16),
    b: (u16, u16),
    cu: u32,
    cv: u32,
    mut f: impl FnMut((u16, u16), (u16, u16), (u16, u16), (u16, u16), f64),
) {
    const EMPTY: u32 = u32::MAX;
    let coord = |k: u32| {
        let p = pos[k as usize] as usize;
        (mesh_x[p], mesh_y[p])
    };
    // Position of endpoint `k` before / after the swap.
    let end = |k: u32, before: bool| -> (u16, u16) {
        if k == cu {
            if before { a } else { b }
        } else if k == cv {
            if before { b } else { a }
        } else {
            coord(k)
        }
    };
    if cu != EMPTY {
        for (k, w) in pcn.out_edges(cu) {
            f(end(cu, true), end(k, true), end(cu, false), end(k, false), f64::from(w));
        }
        for (k, w) in pcn.in_edges(cu) {
            if k == cu {
                continue; // self-loop already visited in the out pass
            }
            f(end(k, true), end(cu, true), end(k, false), end(cu, false), f64::from(w));
        }
    }
    if cv != EMPTY {
        for (k, w) in pcn.out_edges(cv) {
            if k == cu {
                continue; // cu↔cv edges handled in the cu pass
            }
            f(end(cv, true), end(k, true), end(cv, false), end(k, false), f64::from(w));
        }
        for (k, w) in pcn.in_edges(cv) {
            if k == cv || k == cu {
                continue;
            }
            f(end(k, true), end(cv, true), end(k, false), end(cv, false), f64::from(w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::PcnBuilder;

    fn chain_pcn(n: u32) -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..n {
            b.add_cluster(1, 1);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, 1.0 + i as f32 * 0.5).unwrap();
        }
        // A back edge and a mutual pair exercise direction handling.
        b.add_edge(n - 1, 0, 2.0).unwrap();
        if n > 2 {
            b.add_edge(1, 0, 0.75).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn objective_labels_weights_and_validation() {
        assert_eq!(Objective::default(), Objective::Energy);
        assert!(Objective::Energy.is_energy());
        assert_eq!(Objective::Energy.weights(), (1.0, 0.0, 0.0));
        let c = Objective::Congestion { lambda_c: 0.5 };
        assert_eq!(c.label(), "congestion");
        assert_eq!(c.weights(), (0.0, 0.5, 0.0));
        let x = Objective::Composite { lambda_c: 0.5, lambda_t: 0.1 };
        assert_eq!(x.weights(), (1.0, 0.5, 0.1));
        assert!(x.validate().is_ok());
        assert!(Objective::Congestion { lambda_c: 0.0 }.validate().is_err());
        assert!(Objective::Composite { lambda_c: -1.0, lambda_t: 0.0 }.validate().is_err());
        assert!(Objective::Composite { lambda_c: f64::NAN, lambda_t: 0.0 }.validate().is_err());
        assert_eq!(
            Objective::from_parts("composite", 1.0, 0.0),
            Some(Objective::Composite { lambda_c: 1.0, lambda_t: 0.0 })
        );
        assert_eq!(Objective::from_parts("energy", 0.0, 0.0), Some(Objective::Energy));
        assert_eq!(Objective::from_parts("nope", 0.0, 0.0), None);
    }

    #[test]
    fn incremental_map_tracks_moves_exactly() {
        let pcn = chain_pcn(6);
        let mut coords: Vec<(u16, u16)> =
            (0..6).map(|i| (i as u16 / 3, i as u16 % 3)).collect();
        let mut inc = IncrementalCongestion::build(&pcn, &coords, 4, 4);
        // Move cluster 2 from its core to an empty one by re-adding its
        // incident edges, then verify bit-equality with a rebuild.
        let from = coords[2];
        let to = (3u16, 3u16);
        for (t, w) in pcn.out_edges(2) {
            inc.remove_edge(from, coords[t as usize], f64::from(w));
            let dst = if t == 2 { to } else { coords[t as usize] };
            inc.add_edge(to, dst, f64::from(w));
        }
        for (s, w) in pcn.in_edges(2) {
            if s == 2 {
                continue;
            }
            inc.remove_edge(coords[s as usize], from, f64::from(w));
            inc.add_edge(coords[s as usize], to, f64::from(w));
        }
        coords[2] = to;
        let rebuilt = IncrementalCongestion::build(&pcn, &coords, 4, 4);
        assert_eq!(inc.map(), rebuilt.map());
    }

    #[test]
    fn incremental_map_matches_the_accumulator_within_quantization() {
        use snnmap_hw::{Coord, Mesh, Placement};
        let pcn = chain_pcn(6);
        let coords: Vec<(u16, u16)> = (0..6).map(|i| (i as u16 % 4, i as u16 / 4)).collect();
        let inc = IncrementalCongestion::build(&pcn, &coords, 4, 4);
        let mesh = Mesh::new(4, 4).unwrap();
        let hw_coords: Vec<Coord> = coords.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        let placement = Placement::from_coords(mesh, &hw_coords).unwrap();
        let acc = snnmap_metrics::congestion_map(&pcn, &placement).unwrap();
        let tol = pcn.num_connections() as f64 / CONGESTION_SCALE;
        for (got, want) in inc.to_f64().iter().zip(acc.map()) {
            assert!((got - want).abs() <= tol, "{got} vs {want}");
        }
    }

    #[test]
    fn swap_gain_agrees_with_recomputing_totals() {
        let pcn = chain_pcn(6);
        // Positions 0..6 on a 3x3 mesh; clusters 1 and 4 will swap.
        let mut coords: Vec<(u16, u16)> =
            (0..6u16).map(|i| (i / 3, i % 3)).collect();
        let mesh_x: Vec<u16> = (0..9u16).map(|p| p / 3).collect();
        let mesh_y: Vec<u16> = (0..9u16).map(|p| p % 3).collect();
        let pos: Vec<u32> = (0..6u32).collect(); // cluster c at position c
        let st = ObjectiveState::new(
            Objective::Composite { lambda_c: 0.7, lambda_t: 0.3 },
            &pcn,
            &coords,
            3,
            3,
            None,
        );
        let (c0, l0) = st.totals(&pcn, &pos, &mesh_x, &mesh_y);
        let a = coords[1];
        let b = coords[4];
        let gain = st.swap_gain(&pcn, &pos, &mesh_x, &mesh_y, a, b, 1, 4);
        // Apply the swap and recompute from scratch.
        coords.swap(1, 4);
        let st2 = ObjectiveState::new(
            Objective::Composite { lambda_c: 0.7, lambda_t: 0.3 },
            &pcn,
            &coords,
            3,
            3,
            None,
        );
        let mut pos2 = pos.clone();
        pos2.swap(1, 4);
        let (c1, l1) = st2.totals(&pcn, &pos2, &mesh_x, &mesh_y);
        assert!(
            (gain - ((c0 + l0) - (c1 + l1))).abs() < 1e-9,
            "gain {gain} vs totals delta {}",
            (c0 + l0) - (c1 + l1)
        );
    }

    #[test]
    fn board_multiplier_weights_interchip_edges_higher() {
        let pcn = chain_pcn(2);
        let coords = [(0u16, 0u16), (0, 3)];
        let flat = ObjectiveState::new(
            Objective::Congestion { lambda_c: 1.0 },
            &pcn,
            &coords,
            4,
            4,
            None,
        );
        let board = ObjectiveState::new(
            Objective::Congestion { lambda_c: 1.0 },
            &pcn,
            &coords,
            4,
            4,
            Some((2, 2)),
        );
        // (0,0) -> (0,3) crosses one chip column boundary.
        let f = flat.edge_cost((0, 0), (0, 3), 1.0);
        let b = board.edge_cost((0, 0), (0, 3), 1.0);
        assert!((b - f * (1.0 + INTERCHIP_WEIGHT)).abs() < 1e-12, "{b} vs {f}");
        // An intra-chip edge costs the same either way.
        assert_eq!(flat.edge_cost((0, 0), (1, 1), 1.0), board.edge_cost((0, 0), (1, 1), 1.0));
    }

    #[test]
    fn reweight_installs_a_normalized_weight_field() {
        let pcn = chain_pcn(2);
        let coords = [(0u16, 0u16), (1, 1)];
        let mut st = ObjectiveState::new(
            Objective::Congestion { lambda_c: 1.0 },
            &pcn,
            &coords,
            2,
            2,
            None,
        );
        let uniform = st.rect_cost((0, 0), (1, 1));
        assert_eq!(uniform, 3.0); // manhattan + 1 fast path
        assert!(st.apply_reweight(&[0, 0, 0, 0]).is_none());
        let (max, arg) = st.apply_reweight(&[0, 8, 0, 4]).unwrap();
        assert_eq!((max, arg), (8, 1));
        // Router (0,1) now costs 1 + GAIN, (1,1) costs 1 + GAIN/2.
        let weighted = st.rect_cost((0, 0), (1, 1));
        assert!(weighted > uniform, "{weighted} vs {uniform}");
    }
}
