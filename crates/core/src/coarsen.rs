//! Multilevel graph coarsening by heavy-edge matching.
//!
//! SNEAP-style multilevel mapping (see PAPERS.md) shrinks the PCN through
//! repeated **heavy-edge matching**: each round pairs every cluster with
//! its heaviest-traffic unmatched neighbour and contracts the pair into
//! one coarse cluster, roughly halving the graph while keeping the bulk
//! of the traffic *inside* coarse clusters (where it costs nothing on the
//! interconnect). The resulting hierarchy lets the mapper place a
//! thousands-of-clusters graph instead of a millions-of-clusters one, and
//! then refine locally while uncoarsening level by level.
//!
//! Everything here is deterministic: clusters are visited in ascending
//! id, the heaviest *symmetric* weight `w(u→v) + w(v→u)` wins, ties break
//! to the smallest neighbour id, and coarse ids are assigned by first
//! appearance. The same PCN always yields the same hierarchy, on any
//! machine, for any thread count.

use snnmap_model::{Pcn, PcnBuilder};

use crate::CoreError;

/// Sentinel for "no parent assigned yet" during id assignment.
const UNASSIGNED: u32 = u32::MAX;

/// One level of the coarsening hierarchy: the coarse graph plus the
/// mapping from the next-finer level's clusters onto it.
///
/// For `levels = coarsen(&pcn, &cfg)?`, `levels[0].parent_of` maps the
/// *original* PCN's cluster ids onto `levels[0].pcn`, and
/// `levels[k].parent_of` maps `levels[k - 1].pcn`'s ids onto
/// `levels[k].pcn`. The last element is the coarsest graph.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarse cluster graph at this level.
    pub pcn: Pcn,
    /// `parent_of[f]` is the coarse cluster (an id into [`Self::pcn`])
    /// that fine cluster `f` of the next-finer level was contracted into.
    /// Dense: every coarse id in `0..pcn.num_clusters()` appears.
    pub parent_of: Vec<u32>,
}

/// Stop conditions for [`coarsen`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarsenConfig {
    /// Stop once a level has at most this many clusters (the coarsest
    /// graph the initial placement runs on). Default 4096.
    pub target_clusters: u32,
    /// Hard cap on hierarchy depth. Default 32.
    pub max_levels: u32,
    /// Stop when a round shrinks the graph by less than this fraction —
    /// matching degenerates on star-like graphs, and grinding out 2%
    /// reductions buys nothing. Default 0.05.
    pub min_reduction: f64,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        Self { target_clusters: 4096, max_levels: 32, min_reduction: 0.05 }
    }
}

/// Coarsens `pcn` into a hierarchy of progressively smaller graphs (see
/// [`CoarseLevel`] for the indexing convention). Returns an empty vector
/// when `pcn` is already at or below `cfg.target_clusters` — the caller
/// should then map the original graph directly.
///
/// Every contraction conserves the graph's totals: neuron and synapse
/// counts sum exactly, and inter-cluster traffic either stays on a coarse
/// edge or moves into [`Pcn::intra_traffic`] when both endpoints land in
/// the same coarse cluster (weights re-aggregate in `f32`/`f64` exactly as
/// [`PcnBuilder`] does, so totals match up to float associativity).
///
/// # Errors
///
/// [`CoreError::InvalidRunOpts`] when `cfg` is malformed
/// (`target_clusters == 0`, `min_reduction` outside `[0, 1)`).
pub fn coarsen(pcn: &Pcn, cfg: &CoarsenConfig) -> Result<Vec<CoarseLevel>, CoreError> {
    if cfg.target_clusters == 0 {
        return Err(CoreError::InvalidRunOpts {
            message: "coarsen target_clusters must be positive".into(),
        });
    }
    if !(0.0..1.0).contains(&cfg.min_reduction) {
        return Err(CoreError::InvalidRunOpts {
            message: format!(
                "coarsen min_reduction must be in [0, 1), got {}",
                cfg.min_reduction
            ),
        });
    }
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = pcn;
    while levels.len() < cfg.max_levels as usize
        && current.num_clusters() > cfg.target_clusters
    {
        let n = current.num_clusters();
        let level = contract_once(current)?;
        let coarse_n = level.pcn.num_clusters();
        if coarse_n >= n {
            break; // edgeless graph: nothing matched, nothing to gain
        }
        let reduction = 1.0 - coarse_n as f64 / n as f64;
        levels.push(level);
        if reduction < cfg.min_reduction {
            break;
        }
        current = &levels.last().expect("just pushed").pcn;
    }
    Ok(levels)
}

/// One heavy-edge-matching round: pairs clusters greedily and contracts
/// each pair (or unmatched singleton) into one coarse cluster.
fn contract_once(pcn: &Pcn) -> Result<CoarseLevel, CoreError> {
    let n = pcn.num_clusters() as usize;
    let mut mate: Vec<u32> = vec![UNASSIGNED; n];

    // Symmetric neighbour weights for one cluster at a time, via an
    // epoch-stamped scratch table (no per-cluster allocation).
    let mut weight = vec![0f64; n];
    let mut stamp = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut epoch = 0u32;

    for u in 0..n as u32 {
        if mate[u as usize] != UNASSIGNED {
            continue;
        }
        epoch += 1;
        touched.clear();
        // CSR order is fixed, so this f64 accumulation order — and hence
        // the chosen mate — is identical on every run.
        for (v, w) in pcn.out_edges(u).chain(pcn.in_edges(u)) {
            if v == u {
                continue;
            }
            if stamp[v as usize] != epoch {
                stamp[v as usize] = epoch;
                weight[v as usize] = 0.0;
                touched.push(v);
            }
            weight[v as usize] += w as f64;
        }
        let mut best: Option<(f64, u32)> = None;
        for &v in &touched {
            if mate[v as usize] != UNASSIGNED {
                continue;
            }
            let w = weight[v as usize];
            let better = match best {
                None => true,
                Some((bw, bv)) => w > bw || (w == bw && v < bv),
            };
            if better {
                best = Some((w, v));
            }
        }
        if let Some((_, v)) = best {
            mate[u as usize] = v;
            mate[v as usize] = u;
        }
    }

    // Coarse ids by first appearance over ascending fine ids.
    let mut parent_of: Vec<u32> = vec![UNASSIGNED; n];
    let mut coarse_n = 0u32;
    for f in 0..n {
        if parent_of[f] != UNASSIGNED {
            continue;
        }
        parent_of[f] = coarse_n;
        let m = mate[f];
        if m != UNASSIGNED {
            debug_assert_eq!(parent_of[m as usize], UNASSIGNED);
            parent_of[m as usize] = coarse_n;
        }
        coarse_n += 1;
    }

    // Contract: sum neurons/synapses per coarse cluster, re-add every
    // fine edge under the parent mapping (collapsed pairs become coarse
    // self-loops, which PcnBuilder folds into intra_traffic), and carry
    // the fine level's intra total at full f64 precision.
    let mut neurons = vec![0u64; coarse_n as usize];
    let mut synapses = vec![0u64; coarse_n as usize];
    for (f, &parent) in parent_of.iter().enumerate().take(n) {
        let p = parent as usize;
        neurons[p] += u64::from(pcn.neurons_in(f as u32));
        synapses[p] += pcn.synapses_in(f as u32);
    }
    let mut b =
        PcnBuilder::with_capacity(coarse_n as usize, pcn.num_connections() as usize);
    for p in 0..coarse_n as usize {
        b.add_cluster(u32::try_from(neurons[p]).unwrap_or(u32::MAX), synapses[p]);
    }
    let internal = |e: snnmap_model::ModelError| CoreError::InvalidRunOpts {
        message: format!("coarsening produced an invalid graph (internal bug): {e}"),
    };
    for (f, t, w) in pcn.iter_edges() {
        b.add_edge(parent_of[f as usize], parent_of[t as usize], w).map_err(internal)?;
    }
    b.add_intra(pcn.intra_traffic()).map_err(internal)?;
    let coarse = b.build().map_err(internal)?;
    Ok(CoarseLevel { pcn: coarse, parent_of })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::generators::random_pcn;

    fn chain(n: u32) -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..n {
            b.add_cluster(10, 100);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, 1.0 + i as f32).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn each_cluster_takes_its_heaviest_unmatched_neighbour() {
        // 0 -2- 1, 0 -9- 2, 2 -1- 3: cluster 0 (visited first) pairs with
        // its heavy neighbour 2, leaving 1 and 3 as singletons.
        let mut b = PcnBuilder::new();
        for _ in 0..4 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 2.0).unwrap();
        b.add_edge(0, 2, 9.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        let pcn = b.build().unwrap();
        let level = contract_once(&pcn).unwrap();
        assert_eq!(level.parent_of[0], level.parent_of[2]);
        assert_ne!(level.parent_of[1], level.parent_of[0]);
        assert_ne!(level.parent_of[3], level.parent_of[0]);
        assert_ne!(level.parent_of[1], level.parent_of[3]);
        assert_eq!(level.pcn.num_clusters(), 3);
        // The 9.0 edge is now intra-cluster traffic; the rest survives.
        assert_eq!(level.pcn.intra_traffic(), 9.0);
        assert_eq!(level.pcn.total_traffic(), 3.0);
    }

    #[test]
    fn symmetric_weight_decides_the_match() {
        // 0→1 weighs 3, but 2→0 plus 0→2 weighs 2+2=4, so 0 pairs with 2.
        let mut b = PcnBuilder::new();
        for _ in 0..3 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 3.0).unwrap();
        b.add_edge(0, 2, 2.0).unwrap();
        b.add_edge(2, 0, 2.0).unwrap();
        let pcn = b.build().unwrap();
        let level = contract_once(&pcn).unwrap();
        assert_eq!(level.parent_of[0], level.parent_of[2]);
    }

    #[test]
    fn ties_break_to_the_smallest_neighbour_id() {
        let mut b = PcnBuilder::new();
        for _ in 0..3 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 5.0).unwrap();
        b.add_edge(0, 2, 5.0).unwrap();
        let pcn = b.build().unwrap();
        let level = contract_once(&pcn).unwrap();
        assert_eq!(level.parent_of[0], level.parent_of[1]);
    }

    #[test]
    fn totals_are_conserved_at_every_level() {
        let pcn = random_pcn(500, 6.0, 11).unwrap();
        let cfg = CoarsenConfig { target_clusters: 16, ..CoarsenConfig::default() };
        let levels = coarsen(&pcn, &cfg).unwrap();
        assert!(!levels.is_empty());
        let mut fine: &Pcn = &pcn;
        for (k, level) in levels.iter().enumerate() {
            assert!(level.pcn.num_clusters() < fine.num_clusters(), "level {k}");
            assert_eq!(level.parent_of.len(), fine.num_clusters() as usize, "level {k}");
            assert_eq!(level.pcn.total_neurons(), fine.total_neurons(), "level {k}");
            assert_eq!(level.pcn.total_synapses(), fine.total_synapses(), "level {k}");
            let fine_total = fine.total_traffic() + fine.intra_traffic();
            let coarse_total = level.pcn.total_traffic() + level.pcn.intra_traffic();
            let tol = 1e-3 * fine_total.max(1.0);
            assert!(
                (fine_total - coarse_total).abs() <= tol,
                "level {k}: traffic {fine_total} vs {coarse_total}"
            );
            // parent_of is dense and in-range.
            let cn = level.pcn.num_clusters();
            let mut seen = vec![false; cn as usize];
            for &p in &level.parent_of {
                assert!(p < cn, "level {k}");
                seen[p as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "level {k}: coarse ids must be dense");
            fine = &level.pcn;
        }
        assert!(levels.last().unwrap().pcn.num_clusters() <= 2 * cfg.target_clusters);
    }

    #[test]
    fn already_small_graphs_yield_an_empty_hierarchy() {
        let pcn = chain(10);
        let levels = coarsen(&pcn, &CoarsenConfig::default()).unwrap();
        assert!(levels.is_empty());
    }

    #[test]
    fn edgeless_graphs_terminate() {
        let mut b = PcnBuilder::new();
        for _ in 0..50 {
            b.add_cluster(1, 1);
        }
        let pcn = b.build().unwrap();
        let cfg = CoarsenConfig { target_clusters: 4, ..CoarsenConfig::default() };
        let levels = coarsen(&pcn, &cfg).unwrap();
        assert!(levels.is_empty(), "nothing matches in an edgeless graph");
    }

    #[test]
    fn determinism_across_repeats() {
        let pcn = random_pcn(300, 5.0, 7).unwrap();
        let cfg = CoarsenConfig { target_clusters: 8, ..CoarsenConfig::default() };
        let a = coarsen(&pcn, &cfg).unwrap();
        let b = coarsen(&pcn, &cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.parent_of, y.parent_of);
            assert_eq!(x.pcn, y.pcn);
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let pcn = chain(10);
        let cfg = CoarsenConfig { target_clusters: 0, ..CoarsenConfig::default() };
        assert!(matches!(coarsen(&pcn, &cfg), Err(CoreError::InvalidRunOpts { .. })));
        let cfg = CoarsenConfig { min_reduction: 1.0, ..CoarsenConfig::default() };
        assert!(matches!(coarsen(&pcn, &cfg), Err(CoreError::InvalidRunOpts { .. })));
    }

    #[test]
    fn chain_coarsens_by_roughly_half_per_level() {
        let pcn = chain(64);
        let cfg = CoarsenConfig { target_clusters: 4, ..CoarsenConfig::default() };
        let levels = coarsen(&pcn, &cfg).unwrap();
        // A path graph matches almost perfectly: each round halves it.
        assert!(levels.len() >= 3);
        assert_eq!(levels[0].pcn.num_clusters(), 32);
    }
}
