//! The multilevel mapping pipeline: coarsen → place → uncoarsen/refine.
//!
//! Flat FD refinement scans every positive-tension pair of the full graph
//! on every sweep, which is what makes million-core instances slow. The
//! multilevel pipeline (SNEAP's recipe, PAPERS.md) instead:
//!
//! 1. **coarsens** the PCN by repeated heavy-edge matching
//!    ([`crate::coarsen`]) into a hierarchy of graphs a few thousand
//!    clusters small,
//! 2. **places** the coarsest graph with the paper's Hilbert/HSC
//!    initialization on a proportionally shrunken mesh and refines it to
//!    convergence (cheap — the graph is tiny),
//! 3. **uncoarsens** level by level: each finer level seeds its placement
//!    from its parent's (scaled anchors + deterministic nearest-free-cell
//!    lookup, [`FreeCells`]) and runs a *budgeted, region-masked* FD pass
//!    — the same
//!    machinery as [`crate::Mapper::repair_incremental`] — over the halo
//!    of the cells the projection had to displace, so refinement touches
//!    only locally-dirty neighbourhoods.
//!
//! Every stage is deterministic and thread-count independent: coarsening
//! and projection are sequential scans in cluster order, and the HSC/FD
//! phases reuse the engine's bit-identical parallel helpers. The same
//! PCN, mesh, config and fault map produce byte-identical placements for
//! every thread count.

use std::collections::BTreeSet;
use std::time::Instant;

use snnmap_hw::{Coord, FaultMap, Mesh, Placement};
use snnmap_model::Pcn;
use snnmap_trace::{time_phase, TraceSink};

use crate::coarsen::{coarsen, CoarsenConfig};
use crate::fd::force_directed_impl;
use crate::hsc::check_capacity;
use crate::mapper::MapOutcome;
use crate::{toposort, CoreError, FdConfig, FdRunOpts, RunBudget};

/// Tuning knobs for the multilevel pipeline
/// ([`crate::MapperBuilder::multilevel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MultilevelConfig {
    /// How far to coarsen (see [`CoarsenConfig`]).
    pub coarsen: CoarsenConfig,
    /// FD sweep cap for each intermediate level's refinement pass (the
    /// coarsest level always refines to convergence — it is tiny — and
    /// the finest level runs under the caller's own budget). Default 3.
    pub level_sweeps: u64,
    /// Manhattan radius of the dirty region around every cell the
    /// projection spilled outside its parent's mesh block; intermediate
    /// FD passes only touch this region. Default 2.
    pub halo: u16,
    /// Optional FD sweep cap for the finest level, tightened against any
    /// caller-supplied cap (default: none — run to convergence or the
    /// caller's budget).
    pub final_sweeps: Option<u64>,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            // Coarsen deeper than the standalone default: the coarsest
            // rung's FD convergence dominates init time, so the coarsest
            // graph should be as small as matching can make it (it
            // saturates near the low hundreds on mesh-like PCNs anyway).
            coarsen: CoarsenConfig { target_clusters: 512, ..CoarsenConfig::default() },
            level_sweeps: 3,
            halo: 2,
            final_sweeps: None,
        }
    }
}

/// Runs the full multilevel pipeline. Called from
/// [`crate::Mapper::map_budgeted_traced`] once the `run` header is
/// emitted; `opts` (budget, checkpointing, caller region) applies to the
/// *finest* level's FD pass only, except for the cancellation flag which
/// also stops intermediate passes at their next sweep boundary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn multilevel_map_impl<S: TraceSink + ?Sized>(
    pcn: &Pcn,
    mesh: Mesh,
    ml: &MultilevelConfig,
    fd: Option<&FdConfig>,
    faults: Option<&FaultMap>,
    threads: usize,
    opts: &mut FdRunOpts<'_>,
    sink: &mut S,
) -> Result<MapOutcome, CoreError> {
    if opts.resume.is_some() {
        return Err(CoreError::InvalidRunOpts {
            message: "multilevel mapping cannot resume from a checkpoint; \
                      use Mapper::resume for the final-level FD pass"
                .into(),
        });
    }
    check_capacity(pcn.num_clusters(), mesh, faults)?;

    let t0 = Instant::now();
    let hierarchy = time_phase(sink, "coarsen", || coarsen(pcn, &ml.coarsen))?;

    // Mesh ladder, one rung per hierarchy level so a parent never has
    // more than two children (matching pairs at most two per level — the
    // expansions stay clean, with no spill cascades). Level k's mesh is
    // the full mesh with *both* dimensions scaled by √(n_k/n_0): cell
    // pressure (occupancy) and aspect ratio are the same at every rung,
    // so spilled children always find room near their parent's block,
    // and the scaling is isotropic, so the L2² objective of a coarse
    // rung is the fine objective uniformly shrunk — the coarse optimum
    // projects down undistorted. (Power-of-two rungs were tried first:
    // halving an axis per rung forces skipping matching levels whenever
    // matching reduces by <50%, and the resulting 4-to-8-child
    // expansions at ~97% occupancy cascade spills far from their
    // anchors, inflating energy ~2× per skip.)
    let graphs: Vec<&Pcn> =
        std::iter::once(pcn).chain(hierarchy.iter().map(|l| &l.pcn)).collect();
    let meshes: Vec<Mesh> = graphs
        .iter()
        .map(|g| scale_mesh(mesh, g.num_clusters(), pcn.num_clusters()))
        .collect();
    let coarsest = graphs.len() - 1;

    // Faults live on the final mesh only; a coarser rung can only see
    // them if it happens to share that mesh.
    let faults_at = |m: Mesh| faults.filter(|fm| fm.mesh() == m);

    // Place the coarsest graph with the paper's init.
    let order = time_phase(sink, "toposort", || toposort(graphs[coarsest]));
    let mut placement = time_phase(sink, "hsc_init", || {
        crate::hsc::hsc_sequence_impl(&order, meshes[coarsest], faults_at(meshes[coarsest]), threads)
    })?;

    let cancel = opts.budget.cancel.clone();
    let mut final_stats = None;
    let mut fd_elapsed = std::time::Duration::ZERO;
    for k in (0..=coarsest).rev() {
        let (gi, m) = (k, meshes[k]);
        let phase = format!("ml_level_{k}");
        let mut dirty: Vec<Coord> = Vec::new();
        if k < coarsest {
            let (projected, displaced) = time_phase(sink, &phase, || {
                project_level(
                    graphs[gi].num_clusters(),
                    m,
                    &hierarchy[k].parent_of,
                    &placement,
                    meshes[k + 1],
                    faults_at(m),
                )
            })?;
            placement = projected;
            dirty = displaced;
        }
        let Some(cfg) = fd else { continue };
        if k == 0 {
            // The finest rung runs under the caller's own options.
            if let Some(cap) = ml.final_sweeps {
                let tightened = opts.budget.max_sweeps.map_or(cap, |m| m.min(cap));
                opts.budget.max_sweeps = Some(tightened);
            }
            let t1 = Instant::now();
            final_stats = Some(force_directed_impl(
                graphs[0],
                &mut placement,
                cfg,
                faults_at(m),
                None,
                opts,
                sink,
            )?);
            fd_elapsed = t1.elapsed();
        } else if k == coarsest {
            // Refine the coarsest placement to convergence.
            let mut level_opts = FdRunOpts {
                budget: RunBudget { cancel: cancel.clone(), ..RunBudget::default() },
                ..FdRunOpts::default()
            };
            force_directed_impl(
                graphs[gi], &mut placement, cfg, faults_at(m), None, &mut level_opts, sink,
            )?;
        } else {
            // Intermediate rung: budgeted FD over the dirty halo only.
            let region = halo_region(m, &dirty, ml.halo);
            if region.iter().any(|&a| a) {
                let mut level_opts = FdRunOpts {
                    budget: RunBudget {
                        max_sweeps: Some(ml.level_sweeps),
                        cancel: cancel.clone(),
                        ..RunBudget::default()
                    },
                    region: Some(region),
                    ..FdRunOpts::default()
                };
                force_directed_impl(
                    graphs[gi], &mut placement, cfg, faults_at(m), None, &mut level_opts, sink,
                )?;
            }
        }
    }

    let init_elapsed = t0.elapsed().saturating_sub(fd_elapsed);
    Ok(MapOutcome { placement, fd_stats: final_stats, init_elapsed, fd_elapsed })
}

/// The mesh for a rung that places `n` of the original `n0` clusters:
/// both dimensions of the full mesh scaled by `√(n/n0)` (ceil, at least
/// one), which preserves occupancy and aspect ratio. `ceil` guarantees
/// the scaled mesh holds at least `n` cells whenever the full mesh holds
/// `n0`, and `√`/`ceil` on f64 are exactly rounded, so the ladder is
/// identical on every platform and thread count.
fn scale_mesh(full: Mesh, n: u32, n0: u32) -> Mesh {
    let s = (f64::from(n) / f64::from(n0)).sqrt();
    let rows = ((f64::from(full.rows()) * s).ceil() as u16).max(1);
    let cols = ((f64::from(full.cols()) * s).ceil() as u16).max(1);
    Mesh::new(rows, cols).expect("scaled dimensions stay in (0, full]")
}

/// Projects a parent placement one rung down: each parent's coordinate
/// scales onto the finer mesh as an *anchor*, and its children (ascending
/// cluster id) take the nearest free healthy cell to that anchor
/// ([`FreeCells::take_nearest`]). Returns the placement plus the
/// cells where a child spilled *outside its parent's mesh block* (the
/// rectangle of fine cells that scale onto the parent's coarse cell) —
/// the seeds of the rung's dirty region. Children inside the block are
/// already where the coarse optimum wants them, modulo block-local
/// arrangement that a masked pass would not improve anyway.
fn project_level(
    fine_n: u32,
    fine_mesh: Mesh,
    parent_of: &[u32],
    parent: &Placement,
    parent_mesh: Mesh,
    faults: Option<&FaultMap>,
) -> Result<(Placement, Vec<Coord>), CoreError> {
    check_capacity(fine_n, fine_mesh, faults)?;
    debug_assert_eq!(parent_of.len(), fine_n as usize);
    let coarse_n = parent_of.iter().map(|&p| p + 1).max().unwrap_or(0);

    // children of g = { f | parent_of[f] == g }, ascending, via counting sort.
    let mut offsets = vec![0u32; coarse_n as usize + 1];
    for &p in parent_of {
        offsets[p as usize + 1] += 1;
    }
    for i in 0..coarse_n as usize {
        offsets[i + 1] += offsets[i];
    }
    let mut children = vec![0u32; fine_n as usize];
    let mut cursor = offsets.clone();
    for (f, &p) in parent_of.iter().enumerate() {
        children[cursor[p as usize] as usize] = f as u32;
        cursor[p as usize] += 1;
    }

    let mut free = FreeCells::new(fine_mesh, faults);
    let mut placement = match faults {
        Some(fm) => Placement::new_unplaced_masked(fine_mesh, fine_n, fm)?,
        None => Placement::new_unplaced(fine_mesh, fine_n),
    };
    let mut dirty: Vec<Coord> = Vec::new();
    for g in 0..coarse_n {
        let pc = parent.coord_of(g).ok_or(CoreError::IncompletePlacement {
            placed: g,
            total: coarse_n,
        })?;
        let (rows_f, cols_f) = (u32::from(fine_mesh.rows()), u32::from(fine_mesh.cols()));
        let (rows_p, cols_p) = (u32::from(parent_mesh.rows()), u32::from(parent_mesh.cols()));
        let ax = u32::from(pc.x) * rows_f / rows_p;
        let ay = u32::from(pc.y) * cols_f / cols_p;
        // Exclusive block bounds; `max` keeps degenerate blocks non-empty
        // when the fine mesh is not strictly larger in a dimension.
        let bx = ((u32::from(pc.x) + 1) * rows_f / rows_p).max(ax + 1);
        let by = ((u32::from(pc.y) + 1) * cols_f / cols_p).max(ay + 1);
        let anchor = Coord::new(ax as u16, ay as u16);
        let (lo, hi) = (offsets[g as usize] as usize, offsets[g as usize + 1] as usize);
        for &f in &children[lo..hi] {
            let cell = free.take_nearest(anchor);
            placement.place(f, cell)?;
            let (cx, cy) = (u32::from(cell.x), u32::from(cell.y));
            if cx < ax || cx >= bx || cy < ay || cy >= by {
                dirty.push(cell);
            }
        }
    }
    Ok((placement, dirty))
}

/// The free (healthy, unoccupied) cells of a mesh, indexed by row, with
/// exact nearest-by-Manhattan queries. Ties break on smallest distance,
/// then smallest row, then smallest column — a total order, so the
/// choice is deterministic. A query walks rows outward from the anchor
/// and prunes as soon as the row offset alone exceeds the best distance
/// found: O(d log cols) per take instead of the O(d²) cell-by-cell ring
/// scan, which matters at the ~92%-occupied finest level where spilled
/// children search tens of cells out.
struct FreeCells {
    rows: Vec<BTreeSet<u16>>,
}

impl FreeCells {
    fn new(mesh: Mesh, faults: Option<&FaultMap>) -> Self {
        let mut rows = vec![BTreeSet::new(); usize::from(mesh.rows())];
        for c in mesh.iter() {
            if faults.map_or(true, |fm| !fm.is_dead(c)) {
                rows[usize::from(c.x)].insert(c.y);
            }
        }
        Self { rows }
    }

    /// Removes and returns the free cell nearest to `anchor`. Capacity
    /// is checked by the caller, so a free cell always exists.
    fn take_nearest(&mut self, anchor: Coord) -> Coord {
        let ax = i32::from(anchor.x);
        let mut best: Option<(i32, u16, u16)> = None;
        for ddx in 0..self.rows.len() as i32 {
            if best.is_some_and(|(d, _, _)| ddx > d) {
                break;
            }
            for x in [ax - ddx, ax + ddx] {
                if x < 0 || x as usize >= self.rows.len() {
                    continue;
                }
                let row = &self.rows[x as usize];
                let below = row.range(..=anchor.y).next_back().copied();
                let above = row.range(anchor.y..).next().copied();
                for y in below.into_iter().chain(above) {
                    let cand = (ddx + i32::from(y.abs_diff(anchor.y)), x as u16, y);
                    if best.map_or(true, |b| cand < b) {
                        best = Some(cand);
                    }
                }
                if ddx == 0 {
                    break; // ax - 0 and ax + 0 are the same row
                }
            }
        }
        let (_, x, y) = best.expect("caller guarantees a free cell exists");
        self.rows[usize::from(x)].remove(&y);
        Coord::new(x, y)
    }
}

/// The union of Manhattan balls of radius `halo` around `seeds`, as a
/// region mask for [`FdRunOpts::region`].
fn halo_region(mesh: Mesh, seeds: &[Coord], halo: u16) -> Vec<bool> {
    let mut region = vec![false; mesh.len()];
    let (rows, cols) = (i32::from(mesh.rows()), i32::from(mesh.cols()));
    let h = i32::from(halo);
    for &s in seeds {
        for dx in -h..=h {
            let x = i32::from(s.x) + dx;
            if x < 0 || x >= rows {
                continue;
            }
            let rem = h - dx.abs();
            for dy in -rem..=rem {
                let y = i32::from(s.y) + dy;
                if y < 0 || y >= cols {
                    continue;
                }
                region[mesh.index_of(Coord::new(x as u16, y as u16))] = true;
            }
        }
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InitialPlacement, Mapper};
    use snnmap_hw::CostModel;
    use snnmap_metrics::evaluate;
    use snnmap_model::generators::random_pcn;

    fn ml_mapper(threads: usize) -> Mapper {
        Mapper::builder()
            .multilevel(MultilevelConfig {
                coarsen: CoarsenConfig { target_clusters: 32, ..CoarsenConfig::default() },
                ..MultilevelConfig::default()
            })
            .threads(threads)
            .build()
    }

    #[test]
    fn scaled_meshes_preserve_occupancy_and_never_underflow() {
        let full = Mesh::new(64, 64).unwrap();
        // Identity at the finest level.
        assert_eq!(scale_mesh(full, 4096, 4096), full);
        // Half the clusters → each axis shrinks by √2 (ceil).
        let m = scale_mesh(full, 2048, 4096);
        assert_eq!((m.rows(), m.cols()), (46, 46));
        assert!(m.len() >= 2048);
        // Tiny levels still get a non-empty mesh that fits them.
        let m = scale_mesh(full, 1, 4096);
        assert!(m.rows() >= 1 && m.cols() >= 1 && !m.is_empty());
        // Rectangular meshes keep their aspect ratio roughly intact.
        let wide = Mesh::new(16, 64).unwrap();
        let m = scale_mesh(wide, 256, 1024);
        assert_eq!((m.rows(), m.cols()), (8, 32));
    }

    #[test]
    fn take_nearest_prefers_the_anchor_then_expands_deterministically() {
        let mesh = Mesh::new(4, 4).unwrap();
        let mut free = FreeCells::new(mesh, None);
        let a = Coord::new(1, 1);
        assert_eq!(free.take_nearest(a), a);
        // The d=1 ring in (distance, row, column) order.
        assert_eq!(free.take_nearest(a), Coord::new(0, 1));
        assert_eq!(free.take_nearest(a), Coord::new(1, 0));
        assert_eq!(free.take_nearest(a), Coord::new(1, 2));
        assert_eq!(free.take_nearest(a), Coord::new(2, 1));
        // d=2: (0,0) wins on row before (0,2) wins on column.
        assert_eq!(free.take_nearest(a), Coord::new(0, 0));
        assert_eq!(free.take_nearest(a), Coord::new(0, 2));
    }

    #[test]
    fn multilevel_produces_complete_valid_placements() {
        let pcn = random_pcn(300, 5.0, 3).unwrap();
        let mesh = Mesh::new(18, 18).unwrap();
        let out = ml_mapper(0).map(&pcn, mesh).unwrap();
        assert!(out.placement.is_complete());
        out.placement.check_consistency().unwrap();
        assert!(crate::validate(&pcn, &out.placement, None, None).unwrap().is_ok());
        let stats = out.fd_stats.expect("final-level FD runs by default");
        assert!(stats.final_energy <= stats.initial_energy + 1e-9);
    }

    #[test]
    fn multilevel_is_thread_count_independent() {
        let pcn = random_pcn(400, 5.0, 9).unwrap();
        let mesh = Mesh::new(21, 21).unwrap();
        let reference = ml_mapper(1).map(&pcn, mesh).unwrap();
        for threads in [2, 4] {
            let out = ml_mapper(threads).map(&pcn, mesh).unwrap();
            assert_eq!(out.placement, reference.placement, "threads={threads}");
            assert_eq!(
                out.fd_stats.as_ref().unwrap().swaps,
                reference.fd_stats.as_ref().unwrap().swaps,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn multilevel_energy_is_in_the_same_ballpark_as_flat() {
        // Multilevel must not collapse quality: allow a small tolerance
        // over the flat pipeline's converged energy on a mid-size case.
        let pcn = random_pcn(500, 5.0, 17).unwrap();
        let mesh = Mesh::new(23, 23).unwrap();
        let cost = CostModel::paper_target();
        let flat = Mapper::builder().build().map(&pcn, mesh).unwrap();
        let ml = ml_mapper(0).map(&pcn, mesh).unwrap();
        let ef = evaluate(&pcn, &flat.placement, cost).unwrap().energy;
        let em = evaluate(&pcn, &ml.placement, cost).unwrap().energy;
        assert!(em <= ef * 1.10, "multilevel {em} vs flat {ef}");
    }

    #[test]
    fn multilevel_respects_fault_maps() {
        use snnmap_hw::{FaultInjector, FaultPattern};
        let pcn = random_pcn(250, 4.0, 5).unwrap();
        let mesh = Mesh::new(17, 17).unwrap();
        let fm = FaultInjector::new(11)
            .inject(mesh, &FaultPattern::Uniform { core_rate: 0.06, link_rate: 0.0 })
            .unwrap();
        assert!(fm.num_dead_cores() > 0);
        let out = Mapper::builder()
            .multilevel(MultilevelConfig {
                coarsen: CoarsenConfig { target_clusters: 32, ..CoarsenConfig::default() },
                ..MultilevelConfig::default()
            })
            .fault_map(fm.clone())
            .build()
            .map(&pcn, mesh)
            .unwrap();
        assert!(out.placement.is_complete());
        for c in 0..250u32 {
            let coord = out.placement.coord_of(c).unwrap();
            assert!(!fm.is_dead(coord), "cluster {c} on dead core {coord}");
        }
    }

    #[test]
    fn small_graphs_skip_coarsening_and_match_the_flat_pipeline() {
        // Below the coarsening target the hierarchy is empty, and the
        // multilevel path degenerates to exactly the flat one.
        let pcn = random_pcn(100, 4.0, 5).unwrap();
        let mesh = Mesh::square_for(100).unwrap();
        let flat = Mapper::builder().build().map(&pcn, mesh).unwrap();
        let ml = Mapper::builder()
            .multilevel(MultilevelConfig::default())
            .build()
            .map(&pcn, mesh)
            .unwrap();
        assert_eq!(ml.placement, flat.placement);
    }

    #[test]
    fn multilevel_rejects_non_hilbert_inits_and_resume() {
        let pcn = random_pcn(100, 4.0, 5).unwrap();
        let mesh = Mesh::square_for(100).unwrap();
        let m = Mapper::builder()
            .multilevel(MultilevelConfig::default())
            .initial_placement(InitialPlacement::Random(1))
            .build();
        assert!(matches!(
            m.map(&pcn, mesh),
            Err(CoreError::InvalidRunOpts { .. })
        ));
    }

    #[test]
    fn final_sweeps_caps_the_finest_level() {
        let pcn = random_pcn(400, 5.0, 9).unwrap();
        let mesh = Mesh::new(21, 21).unwrap();
        let mut cfg = MultilevelConfig {
            coarsen: CoarsenConfig { target_clusters: 32, ..CoarsenConfig::default() },
            ..MultilevelConfig::default()
        };
        cfg.final_sweeps = Some(1);
        let out = Mapper::builder()
            .multilevel(cfg)
            .build()
            .map(&pcn, mesh)
            .unwrap();
        assert!(out.fd_stats.unwrap().iterations <= 1);
    }

    #[test]
    fn traced_multilevel_emits_level_phases_and_matches_untraced() {
        use snnmap_trace::{MemorySink, TraceEvent};
        let pcn = random_pcn(300, 5.0, 3).unwrap();
        let mesh = Mesh::new(18, 18).unwrap();
        let mapper = ml_mapper(0);
        let plain = mapper.map(&pcn, mesh).unwrap();
        let mut sink = MemorySink::new();
        let traced = mapper.map_traced(&pcn, mesh, &mut sink).unwrap();
        assert_eq!(traced.placement, plain.placement);
        let phases: Vec<String> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Phase(p) => Some(p.name.clone()),
                _ => None,
            })
            .collect();
        assert!(phases.iter().any(|p| p == "coarsen"));
        assert!(phases.iter().any(|p| p == "hsc_init"));
        assert!(phases.iter().any(|p| p.starts_with("ml_level_")));
    }
}
