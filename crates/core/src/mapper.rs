//! The end-to-end mapping pipeline (Figure 3).

use std::fmt;
use std::time::{Duration, Instant};

use snnmap_curves::{Serpentine, SpaceFillingCurve, Spiral, ZigZag};
use snnmap_hw::{Board, Coord, FaultDelta, FaultMap, HwError, Mesh, Placement};
use snnmap_model::Pcn;
use snnmap_trace::{
    time_phase, NoopSink, PhaseEvent, RepairEvent, RunEvent, TraceEvent, TraceSink,
};

use crate::fd::force_directed_impl;
use crate::hsc::{hsc_board_sequence_impl, hsc_sequence_impl};
use crate::multilevel::MultilevelConfig;
use crate::validate::{repair, repair_board, DegradedPlacement, RepairMove};
use crate::{
    par, random_placement, random_placement_masked, sequence_placement,
    sequence_placement_masked, toposort, CoreError, FdCheckpoint, FdConfig, FdResume, FdRunOpts,
    FdStats, Objective, Potential, RunBudget,
};

/// How the initial placement is produced (step 1 of Figure 3; the
/// non-Hilbert variants are the comparison methods of Figures 6 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitialPlacement {
    /// Topological sort laid along the Hilbert curve (generalized to
    /// arbitrary rectangles) — the paper's method.
    Hilbert,
    /// Topological sort along the diagonal ZigZag scan.
    ZigZag,
    /// Topological sort along the outside-in spiral ("Circle").
    Circle,
    /// Topological sort along a row-serpentine.
    Serpentine,
    /// Uniformly random placement with the given seed (the baseline and
    /// the initialization of Figure 8's methods e/g/i).
    Random(u64),
}

/// The result of [`Mapper::map`]: the final placement plus phase
/// statistics.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// The final (complete) placement.
    pub placement: Placement,
    /// Statistics of the FD phase, if it ran.
    pub fd_stats: Option<FdStats>,
    /// Wall-clock time of the initial-placement phase.
    pub init_elapsed: Duration,
    /// Wall-clock time of the FD phase (zero if disabled).
    pub fd_elapsed: Duration,
}

/// The outcome of [`Mapper::repair_incremental`]: what broke, what was
/// disturbed, and the statistics of the local refinement pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// What broke since the previous fault map ([`FaultMap::diff`]).
    pub delta: FaultDelta,
    /// Clusters the eviction pass relocated off newly dead cores, in
    /// cluster order.
    pub evicted: Vec<RepairMove>,
    /// Clusters whose final coordinate differs from their pre-repair one
    /// (eviction plus local FD refinement) — the disruption metric a
    /// live system pays to apply the new placement.
    pub moved: u64,
    /// Cores inside the dirty region the FD pass was allowed to touch
    /// (`0` when nothing broke).
    pub region_cores: u64,
    /// Statistics of the budgeted, region-masked FD pass, when it ran.
    pub fd_stats: Option<FdStats>,
    /// The typed degraded-mode outcome, present only on board-aware
    /// repairs where the surviving capacity cannot absorb the load: the
    /// listed clusters stay unplaced and the FD pass is skipped. `None`
    /// means the repaired placement is complete.
    pub degraded: Option<DegradedPlacement>,
}

/// The paper's complete mapping approach: initial placement followed by
/// optional Force-Directed refinement.
///
/// The default configuration is the paper's best method (method *j* of
/// Figure 8): Hilbert initialization and FD with the `u_c = x² + y²`
/// potential at λ = 0.3.
///
/// # Examples
///
/// ```
/// use snnmap_core::{InitialPlacement, Mapper, Potential};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(100, 4.0, 5)?;
/// let mesh = Mesh::square_for(100)?;
///
/// // The paper's method j.
/// let outcome = Mapper::builder().build().map(&pcn, mesh)?;
/// assert!(outcome.placement.is_complete());
///
/// // Initial placement only (method b of Figure 8).
/// let hsc_only = Mapper::builder().fd_enabled(false).build().map(&pcn, mesh)?;
/// assert!(hsc_only.fd_stats.is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mapper {
    init: InitialPlacement,
    fd: Option<FdConfig>,
    faults: Option<FaultMap>,
    board: Option<Board>,
    threads: usize,
    multilevel: Option<MultilevelConfig>,
}

impl Mapper {
    /// Starts building a mapper; defaults to Hilbert + FD(`u_c`, λ=0.3).
    pub fn builder() -> MapperBuilder {
        MapperBuilder::default()
    }

    /// The configured initial-placement strategy.
    pub fn initial_placement(&self) -> InitialPlacement {
        self.init
    }

    /// The configured FD phase, if enabled.
    pub fn fd_config(&self) -> Option<&FdConfig> {
        self.fd.as_ref()
    }

    /// The configured hardware fault map, if any.
    pub fn fault_map(&self) -> Option<&FaultMap> {
        self.faults.as_ref()
    }

    /// The configured multi-chip board, if any.
    pub fn board(&self) -> Option<&Board> {
        self.board.as_ref()
    }

    /// The configured worker-thread count (`0` = auto; see
    /// [`crate::par::resolve_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured multilevel pipeline, if enabled.
    pub fn multilevel_config(&self) -> Option<&MultilevelConfig> {
        self.multilevel.as_ref()
    }

    /// Maps a PCN onto a mesh. When a fault map is configured (see
    /// [`MapperBuilder::fault_map`]), every phase avoids dead cores: the
    /// initial curve/random placement uses only healthy cores and the FD
    /// refinement never swaps into a dead one.
    ///
    /// # Errors
    ///
    /// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores;
    /// [`CoreError::InsufficientCores`] if it outnumbers the *healthy*
    /// cores under the configured fault map; curve errors cannot occur
    /// (generalized Hilbert covers every mesh), but propagate as
    /// [`CoreError::Curve`] if they do.
    pub fn map(&self, pcn: &Pcn, mesh: Mesh) -> Result<MapOutcome, CoreError> {
        self.map_traced(pcn, mesh, &mut NoopSink)
    }

    /// [`Mapper::map`] with trace instrumentation: emits a `run` header,
    /// per-phase spans (`toposort`, `hsc_init`/`curve_init`/`random_init`,
    /// `fd`) and the FD engine's convergence telemetry into `sink`.
    ///
    /// Zero-cost when disabled: every probe is guarded by
    /// [`TraceSink::enabled`], and [`Mapper::map`] delegates here with
    /// [`NoopSink`], whose statically-false `enabled()` lets
    /// monomorphization delete the instrumentation — the placement is
    /// bit-identical with and without tracing by construction.
    ///
    /// # Errors
    ///
    /// As [`Mapper::map`].
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_core::Mapper;
    /// use snnmap_hw::Mesh;
    /// use snnmap_model::generators::random_pcn;
    /// use snnmap_trace::{MemorySink, TraceEvent};
    ///
    /// let pcn = random_pcn(100, 4.0, 5)?;
    /// let mesh = Mesh::square_for(100)?;
    /// let mut sink = MemorySink::new();
    /// let traced = Mapper::builder().build().map_traced(&pcn, mesh, &mut sink)?;
    /// let plain = Mapper::builder().build().map(&pcn, mesh)?;
    /// assert_eq!(traced.placement, plain.placement);
    /// assert!(matches!(sink.events()[0], TraceEvent::Run(_)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn map_traced<S: TraceSink + ?Sized>(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        sink: &mut S,
    ) -> Result<MapOutcome, CoreError> {
        self.map_budgeted_traced(pcn, mesh, &mut FdRunOpts::default(), sink)
    }

    /// [`Mapper::map`] under caller-supplied [`FdRunOpts`]: deadline,
    /// sweep-cap and cancellation budgets, periodic checkpointing and
    /// region masks all apply to the FD phase (see
    /// [`crate::force_directed_budgeted`]). The initial placement always
    /// runs to completion — it is cheap and not interruptible — so an
    /// expired budget still yields a complete, valid placement whose
    /// energy is no worse than the initial one.
    ///
    /// # Errors
    ///
    /// As [`Mapper::map`], plus [`CoreError::InvalidRunOpts`],
    /// [`CoreError::CheckpointFailed`] and [`CoreError::WorkerPanicked`]
    /// from the budgeted FD engine.
    pub fn map_budgeted(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        opts: &mut FdRunOpts<'_>,
    ) -> Result<MapOutcome, CoreError> {
        self.map_budgeted_traced(pcn, mesh, opts, &mut NoopSink)
    }

    /// [`Mapper::map_budgeted`] with trace instrumentation (see
    /// [`Mapper::map_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Mapper::map_budgeted`].
    pub fn map_budgeted_traced<S: TraceSink + ?Sized>(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        opts: &mut FdRunOpts<'_>,
        sink: &mut S,
    ) -> Result<MapOutcome, CoreError> {
        let fm = self.faults.as_ref();
        let threads_resolved = par::resolve_threads(self.threads);
        if sink.enabled() {
            sink.record(&TraceEvent::Run(RunEvent {
                tool: "map".to_owned(),
                clusters: pcn.num_clusters(),
                connections: pcn.num_connections(),
                mesh_rows: mesh.rows(),
                mesh_cols: mesh.cols(),
                threads_requested: self.threads,
                threads_resolved,
            }));
        }

        if let Some(board) = &self.board {
            if self.multilevel.is_some() {
                return Err(CoreError::InvalidRunOpts {
                    message: "the multilevel pipeline does not support \
                              board-constrained mapping yet"
                        .into(),
                });
            }
            if self.init != InitialPlacement::Hilbert {
                return Err(CoreError::InvalidRunOpts {
                    message: format!(
                        "board-constrained mapping places with the Hilbert/HSC \
                         init; {:?} is not supported with it",
                        self.init
                    ),
                });
            }
            if board.mesh() != mesh {
                return Err(CoreError::InvalidRunOpts {
                    message: format!(
                        "board covers {} but the map targets {mesh}",
                        board.mesh()
                    ),
                });
            }
        }

        if let Some(ml) = &self.multilevel {
            if self.init != InitialPlacement::Hilbert {
                return Err(CoreError::InvalidRunOpts {
                    message: format!(
                        "the multilevel pipeline places the coarsest graph with the \
                         Hilbert/HSC init; {:?} is not supported with it",
                        self.init
                    ),
                });
            }
            return crate::multilevel::multilevel_map_impl(
                pcn,
                mesh,
                ml,
                self.fd.as_ref(),
                fm,
                threads_resolved,
                opts,
                sink,
            );
        }

        let t0 = Instant::now();
        let mut placement = match (self.init, fm) {
            (InitialPlacement::Hilbert, _) => {
                let order = time_phase(sink, "toposort", || toposort(pcn));
                time_phase(sink, "hsc_init", || match &self.board {
                    Some(b) => {
                        hsc_board_sequence_impl(pcn, &order, b, fm, threads_resolved)
                    }
                    None => hsc_sequence_impl(&order, mesh, fm, threads_resolved),
                })?
            }
            (InitialPlacement::ZigZag, _) => self.curve_init(pcn, mesh, &ZigZag, sink)?,
            (InitialPlacement::Circle, _) => self.curve_init(pcn, mesh, &Spiral, sink)?,
            (InitialPlacement::Serpentine, _) => {
                self.curve_init(pcn, mesh, &Serpentine, sink)?
            }
            (InitialPlacement::Random(seed), None) => {
                time_phase(sink, "random_init", || random_placement(pcn, mesh, seed))?
            }
            (InitialPlacement::Random(seed), Some(fm)) => {
                time_phase(sink, "random_init", || {
                    random_placement_masked(pcn, mesh, seed, fm)
                })?
            }
        };
        let init_elapsed = t0.elapsed();

        let t1 = Instant::now();
        let fd_alloc0 = sink.enabled().then(snnmap_trace::alloc_snapshot);
        let fd_stats = match &self.fd {
            Some(cfg) => Some(force_directed_impl(
                pcn,
                &mut placement,
                cfg,
                fm,
                self.board.as_ref(),
                opts,
                sink,
            )?),
            None => None,
        };
        let fd_elapsed = t1.elapsed();
        if sink.enabled() && self.fd.is_some() {
            let da = snnmap_trace::alloc_snapshot()
                .since(fd_alloc0.unwrap_or_default());
            sink.record(&TraceEvent::Phase(PhaseEvent {
                name: "fd".to_owned(),
                wall_ns: u64::try_from(fd_elapsed.as_nanos()).unwrap_or(u64::MAX),
                alloc_bytes: da.bytes,
                allocs: da.allocs,
            }));
        }

        Ok(MapOutcome { placement, fd_stats, init_elapsed, fd_elapsed })
    }

    /// Continues an interrupted FD run from a checkpoint.
    ///
    /// The placement is rebuilt from the checkpoint's coordinate table,
    /// and the engine's force record, sweep/swap counters and initial
    /// energy are restored verbatim — so killing a run at any sweep
    /// boundary and resuming it yields a placement bit-identical to the
    /// uninterrupted run. `opts` carries the *new* invocation's budget
    /// and checkpoint cadence (a wall-clock deadline restarts from now; a
    /// sweep cap counts total sweeps including the checkpoint's); any
    /// `opts.resume` already set is overwritten from the checkpoint.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidRunOpts`] when the FD phase is disabled on
    /// this mapper or the checkpoint does not match the PCN;
    /// [`CoreError::Hw`] when the checkpoint's coordinates collide, fall
    /// outside its mesh, or the configured fault map covers a different
    /// mesh.
    pub fn resume(
        &self,
        pcn: &Pcn,
        checkpoint: &FdCheckpoint,
        opts: &mut FdRunOpts<'_>,
    ) -> Result<MapOutcome, CoreError> {
        self.resume_traced(pcn, checkpoint, opts, &mut NoopSink)
    }

    /// [`Mapper::resume`] with trace instrumentation: emits a `run`
    /// header (`tool: "resume"`), a `resume` event with the restored
    /// counters, and the FD engine's convergence telemetry.
    ///
    /// # Errors
    ///
    /// As [`Mapper::resume`].
    pub fn resume_traced<S: TraceSink + ?Sized>(
        &self,
        pcn: &Pcn,
        checkpoint: &FdCheckpoint,
        opts: &mut FdRunOpts<'_>,
        sink: &mut S,
    ) -> Result<MapOutcome, CoreError> {
        let Some(cfg) = self.fd.as_ref() else {
            return Err(CoreError::InvalidRunOpts {
                message: "resume needs the FD phase enabled on this mapper".into(),
            });
        };
        let n = pcn.num_clusters();
        if checkpoint.coords.len() != n as usize {
            return Err(CoreError::InvalidRunOpts {
                message: format!(
                    "checkpoint covers {} clusters but the PCN has {n}",
                    checkpoint.coords.len()
                ),
            });
        }
        if n as usize > checkpoint.mesh.len() {
            return Err(CoreError::InvalidRunOpts {
                message: format!("checkpoint mesh {} cannot hold {n} clusters", checkpoint.mesh),
            });
        }
        if let Some(fm) = self.faults.as_ref() {
            if fm.mesh() != checkpoint.mesh {
                return Err(CoreError::Hw(HwError::InvalidFaultSpec {
                    message: format!(
                        "fault map covers {} but the checkpoint targets {}",
                        fm.mesh(),
                        checkpoint.mesh
                    ),
                }));
            }
        }
        if sink.enabled() {
            sink.record(&TraceEvent::Run(RunEvent {
                tool: "resume".to_owned(),
                clusters: n,
                connections: pcn.num_connections(),
                mesh_rows: checkpoint.mesh.rows(),
                mesh_cols: checkpoint.mesh.cols(),
                threads_requested: self.threads,
                threads_resolved: par::resolve_threads(self.threads),
            }));
        }
        let mut placement = Placement::new_unplaced(checkpoint.mesh, n);
        placement.set_coords(&checkpoint.coords)?;
        opts.resume = Some(FdResume::from_checkpoint(checkpoint));
        let t1 = Instant::now();
        let stats = force_directed_impl(
            pcn,
            &mut placement,
            cfg,
            self.faults.as_ref(),
            self.board.as_ref(),
            opts,
            sink,
        )?;
        let fd_elapsed = t1.elapsed();
        Ok(MapOutcome { placement, fd_stats: Some(stats), init_elapsed: Duration::ZERO, fd_elapsed })
    }

    /// Patches a live placement after the hardware degrades, disturbing
    /// as few clusters as possible.
    ///
    /// `previous` is the fault map the placement was produced under,
    /// `current` the hardware's new state; [`FaultMap::diff`] yields what
    /// broke. Clusters stranded on newly dead cores are evicted to the
    /// nearest free healthy core (the deterministic [`repair`] pass),
    /// then a budgeted FD pass restricted to the *dirty region* — the
    /// union of radius-`radius` Manhattan balls around every eviction
    /// endpoint, newly dead core and failed-link endpoint — locally
    /// re-optimizes while the rest of the placement stays frozen. The
    /// result moves strictly fewer clusters than a full remap, at a small
    /// cost in final energy.
    ///
    /// # Errors
    ///
    /// As [`repair`], plus [`CoreError::Hw`] when the two fault maps
    /// disagree on the mesh. On error the placement is unchanged (the
    /// eviction pass is transactional and the FD pass only writes back on
    /// success).
    pub fn repair_incremental(
        &self,
        pcn: &Pcn,
        placement: &mut Placement,
        previous: &FaultMap,
        current: &FaultMap,
        radius: u16,
        budget: RunBudget,
    ) -> Result<RepairReport, CoreError> {
        self.repair_incremental_traced(
            pcn, placement, previous, current, radius, budget, &mut NoopSink,
        )
    }

    /// [`Mapper::repair_incremental`] with trace instrumentation: emits
    /// the FD engine's telemetry for the region pass plus one final
    /// `repair` event summarizing the disruption.
    ///
    /// # Errors
    ///
    /// As [`Mapper::repair_incremental`].
    #[allow(clippy::too_many_arguments)]
    pub fn repair_incremental_traced<S: TraceSink + ?Sized>(
        &self,
        pcn: &Pcn,
        placement: &mut Placement,
        previous: &FaultMap,
        current: &FaultMap,
        radius: u16,
        budget: RunBudget,
        sink: &mut S,
    ) -> Result<RepairReport, CoreError> {
        let delta = current.diff(previous)?;
        if delta.is_empty() {
            return Ok(RepairReport {
                delta,
                evicted: Vec::new(),
                moved: 0,
                region_cores: 0,
                fd_stats: None,
                degraded: None,
            });
        }
        let n = pcn.num_clusters();
        let before: Vec<Option<Coord>> = (0..n).map(|c| placement.coord_of(c)).collect();
        let (outcome, degraded) = match &self.board {
            Some(board) => repair_board(pcn, placement, Some(current), board)?,
            None => (repair(pcn, placement, Some(current), None)?, None),
        };

        let mesh = placement.mesh();
        let mut seeds: Vec<Coord> = Vec::new();
        for mv in &outcome.moved {
            seeds.extend(mv.from);
            seeds.push(mv.to);
        }
        seeds.extend_from_slice(&delta.new_dead_cores);
        for &(a, b) in &delta.new_failed_links {
            seeds.push(a);
            seeds.push(b);
        }
        let mut region = vec![false; mesh.len()];
        for c in mesh.iter() {
            if seeds.iter().any(|&s| s.manhattan(c) <= u32::from(radius)) {
                region[mesh.index_of(c)] = true;
            }
        }
        let region_cores = region.iter().filter(|&&active| active).count() as u64;

        // A degraded placement is incomplete, so the FD pass cannot run;
        // the evacuation itself already placed everything that fits.
        let fd_stats = match self.fd.as_ref() {
            Some(cfg) if region_cores > 0 && degraded.is_none() => {
                let mut opts =
                    FdRunOpts { budget, region: Some(region), ..FdRunOpts::default() };
                Some(force_directed_impl(
                    pcn,
                    placement,
                    cfg,
                    Some(current),
                    self.board.as_ref(),
                    &mut opts,
                    sink,
                )?)
            }
            _ => None,
        };

        let moved =
            (0..n).filter(|&c| placement.coord_of(c) != before[c as usize]).count() as u64;
        if sink.enabled() {
            sink.record(&TraceEvent::Repair(RepairEvent {
                evicted: outcome.moved.len() as u64,
                moved,
                region_cores,
                energy_before: fd_stats.as_ref().map_or(0.0, |s| s.initial_energy),
                energy_after: fd_stats.as_ref().map_or(0.0, |s| s.final_energy),
            }));
        }
        Ok(RepairReport { delta, evicted: outcome.moved, moved, region_cores, fd_stats, degraded })
    }

    fn curve_init<S: TraceSink + ?Sized>(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        curve: &dyn SpaceFillingCurve,
        sink: &mut S,
    ) -> Result<Placement, CoreError> {
        let order = time_phase(sink, "toposort", || toposort(pcn));
        time_phase(sink, "curve_init", || match self.faults.as_ref() {
            Some(fm) => sequence_placement_masked(&order, curve, mesh, fm),
            None => sequence_placement(&order, curve, mesh),
        })
    }
}

impl Default for Mapper {
    fn default() -> Self {
        Mapper::builder().build()
    }
}

impl fmt::Display for Mapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.fd {
            Some(cfg) => write!(f, "{:?} + FD({:?}, lambda={})", self.init, cfg.potential, cfg.lambda),
            None => write!(f, "{:?} (no FD)", self.init),
        }
    }
}

/// Builder for [`Mapper`].
#[derive(Debug, Clone)]
pub struct MapperBuilder {
    init: InitialPlacement,
    fd_enabled: bool,
    fd: FdConfig,
    faults: Option<FaultMap>,
    board: Option<Board>,
    threads: usize,
    multilevel: Option<MultilevelConfig>,
}

impl Default for MapperBuilder {
    fn default() -> Self {
        Self {
            init: InitialPlacement::Hilbert,
            fd_enabled: true,
            fd: FdConfig::default(),
            faults: None,
            board: None,
            threads: 0,
            multilevel: None,
        }
    }
}

impl MapperBuilder {
    /// Sets the initial-placement strategy (default: Hilbert).
    pub fn initial_placement(mut self, init: InitialPlacement) -> Self {
        self.init = init;
        self
    }

    /// Enables or disables the FD phase (default: enabled).
    pub fn fd_enabled(mut self, enabled: bool) -> Self {
        self.fd_enabled = enabled;
        self
    }

    /// Sets the FD potential field (default: `u_c`, eq. 21).
    pub fn potential(mut self, potential: Potential) -> Self {
        self.fd.potential = potential;
        self
    }

    /// Sets the λ queue fraction (default: 0.3, §4.5).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        self.fd.lambda = lambda;
        self
    }

    /// Caps FD iterations (default: unlimited; convergence is
    /// guaranteed).
    pub fn max_iterations(mut self, cap: u64) -> Self {
        self.fd.max_iterations = Some(cap);
        self
    }

    /// Sets the refinement objective (default: [`Objective::Energy`],
    /// the paper's pure eq. 25 descent — bit-identical to builds that
    /// predate the objective subsystem).
    ///
    /// # Panics
    ///
    /// Panics if the objective's λ weights are invalid (negative,
    /// non-finite, or a congestion objective with `lambda_c == 0`).
    pub fn objective(mut self, objective: Objective) -> Self {
        objective.validate().expect("invalid objective");
        self.fd.objective = objective;
        self
    }

    /// Enables sim-in-the-loop reweighting: every `every` sweeps the
    /// run's [`SweepReweighter`] hook (or, hookless, the engine's own
    /// congestion map) re-weights hot routers in the congestion term.
    /// Requires a non-energy objective at `map` time and is incompatible
    /// with checkpoint/resume (default: disabled).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn reweight_every(mut self, every: u64) -> Self {
        assert!(every > 0, "reweight_every must be positive");
        self.fd.reweight_every = Some(every);
        self
    }

    /// Caps FD wall-clock time (default: unlimited).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.fd.time_budget = Some(budget);
        self
    }

    /// Installs a hardware fault map: the whole pipeline will place and
    /// refine on healthy cores only (default: none, fault-free hardware).
    pub fn fault_map(mut self, faults: FaultMap) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Installs a multi-chip [`Board`]: the HSC init places each cluster
    /// on a core whose capacity vector admits it, and every FD swap that
    /// would overload a core is rejected — the whole pipeline preserves
    /// capacity feasibility. Requires the Hilbert initial placement and
    /// is not yet supported together with the multilevel pipeline; the
    /// mesh passed to [`Mapper::map`] must equal the board's
    /// (default: none, uncapacitated homogeneous mesh).
    pub fn board(mut self, board: Board) -> Self {
        self.board = Some(board);
        self
    }

    /// Sets the worker-thread count for both the Hilbert traversal and
    /// the FD engine (default `0` = auto: `SNNMAP_THREADS`, else the
    /// machine's available parallelism).
    ///
    /// The pipeline produces **bit-identical placements for every thread
    /// count** — this knob only trades wall-clock time for cores.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables the multilevel pipeline (coarsen → place → uncoarsen and
    /// refine; see [`crate::MultilevelConfig`]). Requires the Hilbert
    /// initial placement — the coarsest graph is placed with the paper's
    /// HSC init — and produces bit-identical placements for every thread
    /// count, like the flat pipeline (default: disabled).
    pub fn multilevel(mut self, config: MultilevelConfig) -> Self {
        self.multilevel = Some(config);
        self
    }

    /// Finalizes the mapper.
    pub fn build(self) -> Mapper {
        let mut fd = self.fd;
        fd.threads = self.threads;
        Mapper {
            init: self.init,
            fd: self.fd_enabled.then_some(fd),
            faults: self.faults,
            board: self.board,
            threads: self.threads,
            multilevel: self.multilevel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::CostModel;
    use snnmap_metrics::evaluate;
    use snnmap_model::generators::random_pcn;

    #[test]
    fn default_is_paper_method_j() {
        let m = Mapper::default();
        assert_eq!(m.initial_placement(), InitialPlacement::Hilbert);
        let fd = m.fd_config().unwrap();
        assert_eq!(fd.potential, Potential::L2Squared);
        assert_eq!(fd.lambda, 0.3);
    }

    #[test]
    fn all_initializations_produce_complete_placements() {
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        for init in [
            InitialPlacement::Hilbert,
            InitialPlacement::ZigZag,
            InitialPlacement::Circle,
            InitialPlacement::Serpentine,
            InitialPlacement::Random(3),
        ] {
            let out = Mapper::builder()
                .initial_placement(init)
                .fd_enabled(false)
                .build()
                .map(&pcn, mesh)
                .unwrap();
            assert!(out.placement.is_complete(), "{init:?}");
            out.placement.check_consistency().unwrap();
        }
    }

    #[test]
    fn full_pipeline_beats_initial_only() {
        let pcn = random_pcn(100, 5.0, 9).unwrap();
        let mesh = Mesh::new(10, 10).unwrap();
        let cost = CostModel::paper_target();
        let init_only =
            Mapper::builder().fd_enabled(false).build().map(&pcn, mesh).unwrap();
        let full = Mapper::builder().build().map(&pcn, mesh).unwrap();
        let a = evaluate(&pcn, &init_only.placement, cost).unwrap();
        let b = evaluate(&pcn, &full.placement, cost).unwrap();
        assert!(b.energy <= a.energy, "FD must not worsen energy");
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let pcn = random_pcn(120, 5.0, 4).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let reference = Mapper::builder().threads(1).build().map(&pcn, mesh).unwrap();
        for threads in [2, 4, 8] {
            let m = Mapper::builder().threads(threads).build();
            assert_eq!(m.threads(), threads);
            let out = m.map(&pcn, mesh).unwrap();
            assert_eq!(out.placement, reference.placement, "threads={threads}");
            assert_eq!(
                out.fd_stats.as_ref().unwrap().swaps,
                reference.fd_stats.as_ref().unwrap().swaps,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn mesh_too_small_is_reported() {
        let pcn = random_pcn(100, 4.0, 2).unwrap();
        assert!(matches!(
            Mapper::default().map(&pcn, Mesh::new(9, 9).unwrap()),
            Err(CoreError::MeshTooSmall { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn builder_rejects_bad_lambda() {
        let _ = Mapper::builder().lambda(0.0);
    }

    #[test]
    fn faulty_hardware_is_avoided_by_every_initialization() {
        use snnmap_hw::{FaultInjector, FaultPattern};
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let fm = FaultInjector::new(42)
            .inject(mesh, &FaultPattern::Uniform { core_rate: 0.08, link_rate: 0.0 })
            .unwrap();
        assert!(fm.num_dead_cores() > 0);
        for init in [
            InitialPlacement::Hilbert,
            InitialPlacement::ZigZag,
            InitialPlacement::Circle,
            InitialPlacement::Serpentine,
            InitialPlacement::Random(3),
        ] {
            let out = Mapper::builder()
                .initial_placement(init)
                .fault_map(fm.clone())
                .build()
                .map(&pcn, mesh)
                .unwrap();
            assert!(out.placement.is_complete(), "{init:?}");
            out.placement.check_consistency().unwrap();
            for c in 0..50u32 {
                let coord = out.placement.coord_of(c).unwrap();
                assert!(!fm.is_dead(coord), "{init:?}: cluster {c} on dead core {coord}");
            }
            if let Some(stats) = out.fd_stats {
                assert!(stats.final_energy <= stats.initial_energy + 1e-9, "{init:?}");
            }
        }
    }

    #[test]
    fn traced_map_matches_untraced_and_orders_events() {
        use snnmap_trace::MemorySink;
        let pcn = random_pcn(120, 5.0, 4).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let mapper = Mapper::builder().threads(2).build();
        let plain = mapper.map(&pcn, mesh).unwrap();
        let mut sink = MemorySink::new();
        let traced = mapper.map_traced(&pcn, mesh, &mut sink).unwrap();
        assert_eq!(traced.placement, plain.placement);
        assert_eq!(traced.fd_stats, plain.fd_stats);

        let names: Vec<&str> = sink.events().iter().map(|e| e.name()).collect();
        // run, toposort, hsc_init, fd_config, sweeps…, fd_done, par, fd.
        assert_eq!(&names[..3], &["run", "phase", "phase"]);
        assert_eq!(names[3], "fd_config");
        assert_eq!(*names.last().unwrap(), "phase");
        let sweeps = names.iter().filter(|n| **n == "fd_sweep").count() as u64;
        assert_eq!(sweeps, traced.fd_stats.unwrap().iterations);
        assert!(names.contains(&"fd_done"));
        assert!(names.contains(&"par"));

        // The per-sweep energy telemetry must agree with FdStats and
        // descend monotonically (exact tension mode).
        let energies: Vec<f64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                snnmap_trace::TraceEvent::FdSweep(s) => Some(s.energy),
                _ => None,
            })
            .collect();
        let stats = traced.fd_stats.unwrap();
        assert_eq!(energies.last().copied().unwrap().to_bits(), stats.final_energy.to_bits());
        for w in energies.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "energy must not increase: {w:?}");
        }
    }

    #[test]
    fn traced_map_covers_every_initialization_kind() {
        use snnmap_trace::{MemorySink, TraceEvent};
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        for (init, expect) in [
            (InitialPlacement::Hilbert, "hsc_init"),
            (InitialPlacement::ZigZag, "curve_init"),
            (InitialPlacement::Circle, "curve_init"),
            (InitialPlacement::Serpentine, "curve_init"),
            (InitialPlacement::Random(3), "random_init"),
        ] {
            let mut sink = MemorySink::new();
            let out = Mapper::builder()
                .initial_placement(init)
                .build()
                .map_traced(&pcn, mesh, &mut sink)
                .unwrap();
            assert!(out.placement.is_complete(), "{init:?}");
            let has_phase = sink.events().iter().any(|e| {
                matches!(e, TraceEvent::Phase(p) if p.name == expect)
            });
            assert!(has_phase, "{init:?} should emit a {expect} phase");
        }
    }

    #[test]
    fn zero_sweep_budget_returns_the_initial_placement() {
        use crate::StopReason;
        let pcn = random_pcn(100, 5.0, 9).unwrap();
        let mesh = Mesh::new(10, 10).unwrap();
        let init_only =
            Mapper::builder().fd_enabled(false).build().map(&pcn, mesh).unwrap();
        let mut opts = FdRunOpts {
            budget: RunBudget { max_sweeps: Some(0), ..RunBudget::default() },
            ..FdRunOpts::default()
        };
        let out = Mapper::builder().build().map_budgeted(&pcn, mesh, &mut opts).unwrap();
        let stats = out.fd_stats.unwrap();
        assert_eq!(stats.stop, StopReason::SweepCapReached);
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.swaps, 0);
        assert_eq!(stats.final_energy.to_bits(), stats.initial_energy.to_bits());
        assert_eq!(out.placement, init_only.placement);
    }

    #[test]
    fn cancellation_stops_before_the_first_sweep() {
        use crate::StopReason;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let pcn = random_pcn(100, 5.0, 9).unwrap();
        let mesh = Mesh::new(10, 10).unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let mut opts = FdRunOpts {
            budget: RunBudget { cancel: Some(flag), ..RunBudget::default() },
            ..FdRunOpts::default()
        };
        let out = Mapper::builder().build().map_budgeted(&pcn, mesh, &mut opts).unwrap();
        let stats = out.fd_stats.unwrap();
        assert_eq!(stats.stop, StopReason::Cancelled);
        assert_eq!(stats.iterations, 0);
        assert!(out.placement.is_complete());
    }

    #[test]
    fn anytime_budget_never_worsens_energy_and_stays_valid() {
        // The anytime guarantee: for random PCNs, fault masks and sweep
        // budgets, a budget-stopped run yields a complete, validate()-clean
        // placement with energy no worse than the initial one.
        use snnmap_hw::{FaultInjector, FaultPattern};
        let mesh = Mesh::new(10, 10).unwrap();
        for seed in 0..6u64 {
            let pcn = random_pcn(70 + 5 * seed as u32, 4.0, seed).unwrap();
            let fm = (seed % 2 == 0).then(|| {
                FaultInjector::new(seed)
                    .inject(mesh, &FaultPattern::Uniform { core_rate: 0.05, link_rate: 0.0 })
                    .unwrap()
            });
            for cap in [0, 1, 2, 5] {
                let mut b = Mapper::builder();
                if let Some(fm) = fm.clone() {
                    b = b.fault_map(fm);
                }
                let mut opts = FdRunOpts {
                    budget: RunBudget { max_sweeps: Some(cap), ..RunBudget::default() },
                    ..FdRunOpts::default()
                };
                let out = b.build().map_budgeted(&pcn, mesh, &mut opts).unwrap();
                let stats = out.fd_stats.unwrap();
                assert!(
                    stats.final_energy <= stats.initial_energy + 1e-9,
                    "seed {seed} cap {cap}: energy worsened"
                );
                assert!(out.placement.is_complete(), "seed {seed} cap {cap}");
                out.placement.check_consistency().unwrap();
                let report =
                    crate::validate(&pcn, &out.placement, fm.as_ref(), None).unwrap();
                assert!(report.is_ok(), "seed {seed} cap {cap}: {report}");
            }
        }
    }

    #[test]
    fn checkpoint_and_resume_reproduce_the_uninterrupted_run() {
        use crate::StopReason;
        // Stop the run at several sweep offsets, checkpoint, resume — the
        // final placement and statistics must be bit-identical to the
        // uninterrupted run, for serial and parallel engines alike.
        let pcn = random_pcn(120, 5.0, 4).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        for threads in [1usize, 4] {
            let mapper = Mapper::builder().threads(threads).build();
            let full = mapper.map(&pcn, mesh).unwrap();
            let full_stats = full.fd_stats.unwrap();
            assert!(full_stats.iterations > 3, "test needs a few sweeps to interrupt");
            for offset in [1u64, 2, 3] {
                let mut cp: Option<FdCheckpoint> = None;
                let mut writer = |c: &FdCheckpoint| {
                    cp = Some(c.clone());
                    Ok(())
                };
                let mut opts = FdRunOpts {
                    budget: RunBudget { max_sweeps: Some(offset), ..RunBudget::default() },
                    on_checkpoint: Some(&mut writer),
                    ..FdRunOpts::default()
                };
                let partial = mapper.map_budgeted(&pcn, mesh, &mut opts).unwrap();
                drop(opts);
                let partial_stats = partial.fd_stats.unwrap();
                assert_eq!(partial_stats.stop, StopReason::SweepCapReached);
                let cp = cp.expect("budget stop must flush a checkpoint");
                assert_eq!(cp.sweeps, offset);
                // The written-back partial placement matches the snapshot.
                for (c, &coord) in cp.coords.iter().enumerate() {
                    assert_eq!(partial.placement.coord_of(c as u32), Some(coord));
                }

                let resumed =
                    mapper.resume(&pcn, &cp, &mut FdRunOpts::default()).unwrap();
                let rs = resumed.fd_stats.unwrap();
                assert_eq!(
                    resumed.placement, full.placement,
                    "threads {threads} offset {offset}: placement diverged"
                );
                assert_eq!(rs.iterations, full_stats.iterations);
                assert_eq!(rs.swaps, full_stats.swaps);
                assert_eq!(rs.stop, StopReason::Converged);
                assert!(rs.converged);
                assert_eq!(
                    rs.final_energy.to_bits(),
                    full_stats.final_energy.to_bits(),
                    "threads {threads} offset {offset}: energy bits diverged"
                );
                assert_eq!(rs.initial_energy.to_bits(), full_stats.initial_energy.to_bits());
            }
        }
    }

    #[test]
    fn periodic_checkpoints_fire_on_schedule() {
        let pcn = random_pcn(120, 5.0, 4).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let mut sweeps_seen: Vec<u64> = Vec::new();
        let mut writer = |c: &FdCheckpoint| {
            sweeps_seen.push(c.sweeps);
            Ok(())
        };
        let mut opts = FdRunOpts {
            checkpoint_every: Some(2),
            on_checkpoint: Some(&mut writer),
            ..FdRunOpts::default()
        };
        let out = Mapper::builder().build().map_budgeted(&pcn, mesh, &mut opts).unwrap();
        drop(opts);
        let iterations = out.fd_stats.unwrap().iterations;
        let expect: Vec<u64> = (1..=iterations).filter(|i| i % 2 == 0).collect();
        assert_eq!(sweeps_seen, expect);
    }

    #[test]
    fn failing_checkpoint_writer_is_a_typed_error() {
        let pcn = random_pcn(120, 5.0, 4).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let mut writer = |_: &FdCheckpoint| Err("disk full".to_owned());
        let mut opts = FdRunOpts {
            checkpoint_every: Some(1),
            on_checkpoint: Some(&mut writer),
            ..FdRunOpts::default()
        };
        let err = Mapper::builder().build().map_budgeted(&pcn, mesh, &mut opts).unwrap_err();
        assert!(matches!(err, CoreError::CheckpointFailed { ref message } if message == "disk full"));
        // checkpoint_every: Some(0) is rejected up front.
        let mut opts = FdRunOpts { checkpoint_every: Some(0), ..FdRunOpts::default() };
        assert!(matches!(
            Mapper::builder().build().map_budgeted(&pcn, mesh, &mut opts),
            Err(CoreError::InvalidRunOpts { .. })
        ));
    }

    #[test]
    fn resume_rejects_mismatched_inputs() {
        let pcn = random_pcn(100, 4.0, 5).unwrap();
        let mesh = Mesh::square_for(100).unwrap();
        let mut cp: Option<FdCheckpoint> = None;
        let mut writer = |c: &FdCheckpoint| {
            cp = Some(c.clone());
            Ok(())
        };
        let mut opts = FdRunOpts {
            budget: RunBudget { max_sweeps: Some(1), ..RunBudget::default() },
            on_checkpoint: Some(&mut writer),
            ..FdRunOpts::default()
        };
        Mapper::builder().build().map_budgeted(&pcn, mesh, &mut opts).unwrap();
        drop(opts);
        let cp = cp.unwrap();

        // FD disabled: nothing to resume.
        let m = Mapper::builder().fd_enabled(false).build();
        assert!(matches!(
            m.resume(&pcn, &cp, &mut FdRunOpts::default()),
            Err(CoreError::InvalidRunOpts { .. })
        ));
        // Cluster-count mismatch.
        let other = random_pcn(50, 4.0, 5).unwrap();
        assert!(matches!(
            Mapper::builder().build().resume(&other, &cp, &mut FdRunOpts::default()),
            Err(CoreError::InvalidRunOpts { .. })
        ));
        // Fault map on a different mesh.
        let m = Mapper::builder()
            .fault_map(FaultMap::new(Mesh::new(30, 30).unwrap()))
            .build();
        assert!(matches!(
            m.resume(&pcn, &cp, &mut FdRunOpts::default()),
            Err(CoreError::Hw(_))
        ));
        // Corrupted checkpoint: colliding coordinates.
        let mut bad = cp.clone();
        bad.coords[1] = bad.coords[0];
        assert!(matches!(
            Mapper::builder().build().resume(&pcn, &bad, &mut FdRunOpts::default()),
            Err(CoreError::Hw(_))
        ));
    }

    #[test]
    fn repair_incremental_disturbs_fewer_clusters_than_a_full_remap() {
        use snnmap_hw::Coord;
        let pcn = random_pcn(200, 4.0, 7).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let mapper = Mapper::builder().build();
        let baseline = mapper.map(&pcn, mesh).unwrap();

        // The hardware degrades after deployment: three occupied cores die.
        let previous = FaultMap::new(mesh);
        let mut current = FaultMap::new(mesh);
        for cluster in [10u32, 50, 90] {
            current.kill_core(baseline.placement.coord_of(cluster).unwrap()).unwrap();
        }
        current
            .fail_link(Coord::new(0, 0), Coord::new(0, 1))
            .unwrap();

        let mut patched = baseline.placement.clone();
        let report = mapper
            .repair_incremental(&pcn, &mut patched, &previous, &current, 2, RunBudget::default())
            .unwrap();
        assert_eq!(report.evicted.len(), 3);
        assert_eq!(report.delta.new_dead_cores.len(), 3);
        assert_eq!(report.delta.new_failed_links.len(), 1);
        assert!(report.region_cores > 0);
        assert!(report.moved >= 3, "the evicted clusters count as moved");
        assert!(
            crate::validate(&pcn, &patched, Some(&current), None).unwrap().is_ok(),
            "patched placement must be valid on the degraded hardware"
        );
        patched.check_consistency().unwrap();
        if let Some(stats) = &report.fd_stats {
            assert!(stats.final_energy <= stats.initial_energy + 1e-9);
        }

        // A full remap on the degraded hardware moves far more clusters.
        let remapped = Mapper::builder()
            .fault_map(current.clone())
            .build()
            .map(&pcn, mesh)
            .unwrap();
        let remap_moved = (0..200u32)
            .filter(|&c| remapped.placement.coord_of(c) != baseline.placement.coord_of(c))
            .count() as u64;
        assert!(
            report.moved < remap_moved,
            "incremental repair ({}) must disturb fewer clusters than a full remap ({})",
            report.moved,
            remap_moved
        );
    }

    #[test]
    fn repair_incremental_with_no_new_faults_is_a_noop() {
        let pcn = random_pcn(100, 4.0, 5).unwrap();
        let mesh = Mesh::square_for(100).unwrap();
        let mapper = Mapper::builder().build();
        let out = mapper.map(&pcn, mesh).unwrap();
        let mut p = out.placement.clone();
        let fm = FaultMap::new(mesh);
        let report =
            mapper.repair_incremental(&pcn, &mut p, &fm, &fm, 2, RunBudget::default()).unwrap();
        assert!(report.delta.is_empty());
        assert_eq!(report.moved, 0);
        assert_eq!(report.region_cores, 0);
        assert!(report.fd_stats.is_none());
        assert_eq!(p, out.placement);
    }

    #[test]
    fn repair_incremental_emits_a_repair_event() {
        use snnmap_trace::MemorySink;
        let pcn = random_pcn(150, 4.0, 3).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let mapper = Mapper::builder().build();
        let out = mapper.map(&pcn, mesh).unwrap();
        let previous = FaultMap::new(mesh);
        let mut current = FaultMap::new(mesh);
        current.kill_core(out.placement.coord_of(0).unwrap()).unwrap();

        let mut p = out.placement.clone();
        let mut sink = MemorySink::new();
        let report = mapper
            .repair_incremental_traced(
                &pcn,
                &mut p,
                &previous,
                &current,
                2,
                RunBudget::default(),
                &mut sink,
            )
            .unwrap();
        let repair_events: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Repair(r) => Some(r.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(repair_events.len(), 1);
        let ev = &repair_events[0];
        assert_eq!(ev.evicted, 1);
        assert_eq!(ev.moved, report.moved);
        assert_eq!(ev.region_cores, report.region_cores);
        let stats = report.fd_stats.unwrap();
        assert_eq!(ev.energy_before.to_bits(), stats.initial_energy.to_bits());
        assert_eq!(ev.energy_after.to_bits(), stats.final_energy.to_bits());
        // The traced repair also carries the region FD telemetry.
        assert!(sink.events().iter().any(|e| e.name() == "fd_done"));
    }

    #[test]
    fn display_summarizes_configuration() {
        let m = Mapper::default();
        let s = m.to_string();
        assert!(s.contains("Hilbert"));
        assert!(s.contains("0.3"));
        let m = Mapper::builder().fd_enabled(false).build();
        assert!(m.to_string().contains("no FD"));
    }
}
