//! The end-to-end mapping pipeline (Figure 3).

use std::fmt;
use std::time::{Duration, Instant};

use snnmap_curves::{Serpentine, SpaceFillingCurve, Spiral, ZigZag};
use snnmap_hw::{Mesh, Placement};
use snnmap_model::Pcn;

use crate::{
    force_directed, hsc_placement, random_placement, sequence_placement, toposort, CoreError,
    FdConfig, FdStats, Potential,
};

/// How the initial placement is produced (step 1 of Figure 3; the
/// non-Hilbert variants are the comparison methods of Figures 6 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitialPlacement {
    /// Topological sort laid along the Hilbert curve (generalized to
    /// arbitrary rectangles) — the paper's method.
    Hilbert,
    /// Topological sort along the diagonal ZigZag scan.
    ZigZag,
    /// Topological sort along the outside-in spiral ("Circle").
    Circle,
    /// Topological sort along a row-serpentine.
    Serpentine,
    /// Uniformly random placement with the given seed (the baseline and
    /// the initialization of Figure 8's methods e/g/i).
    Random(u64),
}

/// The result of [`Mapper::map`]: the final placement plus phase
/// statistics.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// The final (complete) placement.
    pub placement: Placement,
    /// Statistics of the FD phase, if it ran.
    pub fd_stats: Option<FdStats>,
    /// Wall-clock time of the initial-placement phase.
    pub init_elapsed: Duration,
    /// Wall-clock time of the FD phase (zero if disabled).
    pub fd_elapsed: Duration,
}

/// The paper's complete mapping approach: initial placement followed by
/// optional Force-Directed refinement.
///
/// The default configuration is the paper's best method (method *j* of
/// Figure 8): Hilbert initialization and FD with the `u_c = x² + y²`
/// potential at λ = 0.3.
///
/// # Examples
///
/// ```
/// use snnmap_core::{InitialPlacement, Mapper, Potential};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(100, 4.0, 5)?;
/// let mesh = Mesh::square_for(100)?;
///
/// // The paper's method j.
/// let outcome = Mapper::builder().build().map(&pcn, mesh)?;
/// assert!(outcome.placement.is_complete());
///
/// // Initial placement only (method b of Figure 8).
/// let hsc_only = Mapper::builder().fd_enabled(false).build().map(&pcn, mesh)?;
/// assert!(hsc_only.fd_stats.is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mapper {
    init: InitialPlacement,
    fd: Option<FdConfig>,
}

impl Mapper {
    /// Starts building a mapper; defaults to Hilbert + FD(`u_c`, λ=0.3).
    pub fn builder() -> MapperBuilder {
        MapperBuilder::default()
    }

    /// The configured initial-placement strategy.
    pub fn initial_placement(&self) -> InitialPlacement {
        self.init
    }

    /// The configured FD phase, if enabled.
    pub fn fd_config(&self) -> Option<&FdConfig> {
        self.fd.as_ref()
    }

    /// Maps a PCN onto a mesh.
    ///
    /// # Errors
    ///
    /// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores;
    /// curve errors cannot occur (generalized Hilbert covers every mesh),
    /// but propagate as [`CoreError::Curve`] if they do.
    pub fn map(&self, pcn: &Pcn, mesh: Mesh) -> Result<MapOutcome, CoreError> {
        let t0 = Instant::now();
        let mut placement = match self.init {
            InitialPlacement::Hilbert => hsc_placement(pcn, mesh)?,
            InitialPlacement::ZigZag => self.curve_init(pcn, mesh, &ZigZag)?,
            InitialPlacement::Circle => self.curve_init(pcn, mesh, &Spiral)?,
            InitialPlacement::Serpentine => self.curve_init(pcn, mesh, &Serpentine)?,
            InitialPlacement::Random(seed) => random_placement(pcn, mesh, seed)?,
        };
        let init_elapsed = t0.elapsed();

        let t1 = Instant::now();
        let fd_stats = match &self.fd {
            Some(cfg) => Some(force_directed(pcn, &mut placement, cfg)?),
            None => None,
        };
        let fd_elapsed = t1.elapsed();

        Ok(MapOutcome { placement, fd_stats, init_elapsed, fd_elapsed })
    }

    fn curve_init(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        curve: &dyn SpaceFillingCurve,
    ) -> Result<Placement, CoreError> {
        let order = toposort(pcn);
        sequence_placement(&order, curve, mesh)
    }
}

impl Default for Mapper {
    fn default() -> Self {
        Mapper::builder().build()
    }
}

impl fmt::Display for Mapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.fd {
            Some(cfg) => write!(f, "{:?} + FD({:?}, lambda={})", self.init, cfg.potential, cfg.lambda),
            None => write!(f, "{:?} (no FD)", self.init),
        }
    }
}

/// Builder for [`Mapper`].
#[derive(Debug, Clone)]
pub struct MapperBuilder {
    init: InitialPlacement,
    fd_enabled: bool,
    fd: FdConfig,
}

impl Default for MapperBuilder {
    fn default() -> Self {
        Self { init: InitialPlacement::Hilbert, fd_enabled: true, fd: FdConfig::default() }
    }
}

impl MapperBuilder {
    /// Sets the initial-placement strategy (default: Hilbert).
    pub fn initial_placement(mut self, init: InitialPlacement) -> Self {
        self.init = init;
        self
    }

    /// Enables or disables the FD phase (default: enabled).
    pub fn fd_enabled(mut self, enabled: bool) -> Self {
        self.fd_enabled = enabled;
        self
    }

    /// Sets the FD potential field (default: `u_c`, eq. 21).
    pub fn potential(mut self, potential: Potential) -> Self {
        self.fd.potential = potential;
        self
    }

    /// Sets the λ queue fraction (default: 0.3, §4.5).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        self.fd.lambda = lambda;
        self
    }

    /// Caps FD iterations (default: unlimited; convergence is
    /// guaranteed).
    pub fn max_iterations(mut self, cap: u64) -> Self {
        self.fd.max_iterations = Some(cap);
        self
    }

    /// Caps FD wall-clock time (default: unlimited).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.fd.time_budget = Some(budget);
        self
    }

    /// Finalizes the mapper.
    pub fn build(self) -> Mapper {
        Mapper { init: self.init, fd: self.fd_enabled.then_some(self.fd) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::CostModel;
    use snnmap_metrics::evaluate;
    use snnmap_model::generators::random_pcn;

    #[test]
    fn default_is_paper_method_j() {
        let m = Mapper::default();
        assert_eq!(m.initial_placement(), InitialPlacement::Hilbert);
        let fd = m.fd_config().unwrap();
        assert_eq!(fd.potential, Potential::L2Squared);
        assert_eq!(fd.lambda, 0.3);
    }

    #[test]
    fn all_initializations_produce_complete_placements() {
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        for init in [
            InitialPlacement::Hilbert,
            InitialPlacement::ZigZag,
            InitialPlacement::Circle,
            InitialPlacement::Serpentine,
            InitialPlacement::Random(3),
        ] {
            let out = Mapper::builder()
                .initial_placement(init)
                .fd_enabled(false)
                .build()
                .map(&pcn, mesh)
                .unwrap();
            assert!(out.placement.is_complete(), "{init:?}");
            out.placement.check_consistency().unwrap();
        }
    }

    #[test]
    fn full_pipeline_beats_initial_only() {
        let pcn = random_pcn(100, 5.0, 9).unwrap();
        let mesh = Mesh::new(10, 10).unwrap();
        let cost = CostModel::paper_target();
        let init_only =
            Mapper::builder().fd_enabled(false).build().map(&pcn, mesh).unwrap();
        let full = Mapper::builder().build().map(&pcn, mesh).unwrap();
        let a = evaluate(&pcn, &init_only.placement, cost).unwrap();
        let b = evaluate(&pcn, &full.placement, cost).unwrap();
        assert!(b.energy <= a.energy, "FD must not worsen energy");
    }

    #[test]
    fn mesh_too_small_is_reported() {
        let pcn = random_pcn(100, 4.0, 2).unwrap();
        assert!(matches!(
            Mapper::default().map(&pcn, Mesh::new(9, 9).unwrap()),
            Err(CoreError::MeshTooSmall { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn builder_rejects_bad_lambda() {
        let _ = Mapper::builder().lambda(0.0);
    }

    #[test]
    fn display_summarizes_configuration() {
        let m = Mapper::default();
        let s = m.to_string();
        assert!(s.contains("Hilbert"));
        assert!(s.contains("0.3"));
        let m = Mapper::builder().fd_enabled(false).build();
        assert!(m.to_string().contains("no FD"));
    }
}
