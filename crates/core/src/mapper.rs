//! The end-to-end mapping pipeline (Figure 3).

use std::fmt;
use std::time::{Duration, Instant};

use snnmap_curves::{Serpentine, SpaceFillingCurve, Spiral, ZigZag};
use snnmap_hw::{FaultMap, Mesh, Placement};
use snnmap_model::Pcn;
use snnmap_trace::{
    time_phase, NoopSink, PhaseEvent, RunEvent, TraceEvent, TraceSink,
};

use crate::fd::force_directed_impl;
use crate::hsc::hsc_sequence_impl;
use crate::{
    par, random_placement, random_placement_masked, sequence_placement,
    sequence_placement_masked, toposort, CoreError, FdConfig, FdStats, Potential,
};

/// How the initial placement is produced (step 1 of Figure 3; the
/// non-Hilbert variants are the comparison methods of Figures 6 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitialPlacement {
    /// Topological sort laid along the Hilbert curve (generalized to
    /// arbitrary rectangles) — the paper's method.
    Hilbert,
    /// Topological sort along the diagonal ZigZag scan.
    ZigZag,
    /// Topological sort along the outside-in spiral ("Circle").
    Circle,
    /// Topological sort along a row-serpentine.
    Serpentine,
    /// Uniformly random placement with the given seed (the baseline and
    /// the initialization of Figure 8's methods e/g/i).
    Random(u64),
}

/// The result of [`Mapper::map`]: the final placement plus phase
/// statistics.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// The final (complete) placement.
    pub placement: Placement,
    /// Statistics of the FD phase, if it ran.
    pub fd_stats: Option<FdStats>,
    /// Wall-clock time of the initial-placement phase.
    pub init_elapsed: Duration,
    /// Wall-clock time of the FD phase (zero if disabled).
    pub fd_elapsed: Duration,
}

/// The paper's complete mapping approach: initial placement followed by
/// optional Force-Directed refinement.
///
/// The default configuration is the paper's best method (method *j* of
/// Figure 8): Hilbert initialization and FD with the `u_c = x² + y²`
/// potential at λ = 0.3.
///
/// # Examples
///
/// ```
/// use snnmap_core::{InitialPlacement, Mapper, Potential};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(100, 4.0, 5)?;
/// let mesh = Mesh::square_for(100)?;
///
/// // The paper's method j.
/// let outcome = Mapper::builder().build().map(&pcn, mesh)?;
/// assert!(outcome.placement.is_complete());
///
/// // Initial placement only (method b of Figure 8).
/// let hsc_only = Mapper::builder().fd_enabled(false).build().map(&pcn, mesh)?;
/// assert!(hsc_only.fd_stats.is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mapper {
    init: InitialPlacement,
    fd: Option<FdConfig>,
    faults: Option<FaultMap>,
    threads: usize,
}

impl Mapper {
    /// Starts building a mapper; defaults to Hilbert + FD(`u_c`, λ=0.3).
    pub fn builder() -> MapperBuilder {
        MapperBuilder::default()
    }

    /// The configured initial-placement strategy.
    pub fn initial_placement(&self) -> InitialPlacement {
        self.init
    }

    /// The configured FD phase, if enabled.
    pub fn fd_config(&self) -> Option<&FdConfig> {
        self.fd.as_ref()
    }

    /// The configured hardware fault map, if any.
    pub fn fault_map(&self) -> Option<&FaultMap> {
        self.faults.as_ref()
    }

    /// The configured worker-thread count (`0` = auto; see
    /// [`crate::par::resolve_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps a PCN onto a mesh. When a fault map is configured (see
    /// [`MapperBuilder::fault_map`]), every phase avoids dead cores: the
    /// initial curve/random placement uses only healthy cores and the FD
    /// refinement never swaps into a dead one.
    ///
    /// # Errors
    ///
    /// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores;
    /// [`CoreError::InsufficientCores`] if it outnumbers the *healthy*
    /// cores under the configured fault map; curve errors cannot occur
    /// (generalized Hilbert covers every mesh), but propagate as
    /// [`CoreError::Curve`] if they do.
    pub fn map(&self, pcn: &Pcn, mesh: Mesh) -> Result<MapOutcome, CoreError> {
        self.map_traced(pcn, mesh, &mut NoopSink)
    }

    /// [`Mapper::map`] with trace instrumentation: emits a `run` header,
    /// per-phase spans (`toposort`, `hsc_init`/`curve_init`/`random_init`,
    /// `fd`) and the FD engine's convergence telemetry into `sink`.
    ///
    /// Zero-cost when disabled: every probe is guarded by
    /// [`TraceSink::enabled`], and [`Mapper::map`] delegates here with
    /// [`NoopSink`], whose statically-false `enabled()` lets
    /// monomorphization delete the instrumentation — the placement is
    /// bit-identical with and without tracing by construction.
    ///
    /// # Errors
    ///
    /// As [`Mapper::map`].
    ///
    /// # Examples
    ///
    /// ```
    /// use snnmap_core::Mapper;
    /// use snnmap_hw::Mesh;
    /// use snnmap_model::generators::random_pcn;
    /// use snnmap_trace::{MemorySink, TraceEvent};
    ///
    /// let pcn = random_pcn(100, 4.0, 5)?;
    /// let mesh = Mesh::square_for(100)?;
    /// let mut sink = MemorySink::new();
    /// let traced = Mapper::builder().build().map_traced(&pcn, mesh, &mut sink)?;
    /// let plain = Mapper::builder().build().map(&pcn, mesh)?;
    /// assert_eq!(traced.placement, plain.placement);
    /// assert!(matches!(sink.events()[0], TraceEvent::Run(_)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn map_traced<S: TraceSink + ?Sized>(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        sink: &mut S,
    ) -> Result<MapOutcome, CoreError> {
        let fm = self.faults.as_ref();
        let threads_resolved = par::resolve_threads(self.threads);
        if sink.enabled() {
            sink.record(&TraceEvent::Run(RunEvent {
                tool: "map".to_owned(),
                clusters: pcn.num_clusters(),
                connections: pcn.num_connections(),
                mesh_rows: mesh.rows(),
                mesh_cols: mesh.cols(),
                threads_requested: self.threads,
                threads_resolved,
            }));
        }

        let t0 = Instant::now();
        let mut placement = match (self.init, fm) {
            (InitialPlacement::Hilbert, _) => {
                let order = time_phase(sink, "toposort", || toposort(pcn));
                time_phase(sink, "hsc_init", || {
                    hsc_sequence_impl(&order, mesh, fm, threads_resolved)
                })?
            }
            (InitialPlacement::ZigZag, _) => self.curve_init(pcn, mesh, &ZigZag, sink)?,
            (InitialPlacement::Circle, _) => self.curve_init(pcn, mesh, &Spiral, sink)?,
            (InitialPlacement::Serpentine, _) => {
                self.curve_init(pcn, mesh, &Serpentine, sink)?
            }
            (InitialPlacement::Random(seed), None) => {
                time_phase(sink, "random_init", || random_placement(pcn, mesh, seed))?
            }
            (InitialPlacement::Random(seed), Some(fm)) => {
                time_phase(sink, "random_init", || {
                    random_placement_masked(pcn, mesh, seed, fm)
                })?
            }
        };
        let init_elapsed = t0.elapsed();

        let t1 = Instant::now();
        let fd_alloc0 = sink.enabled().then(snnmap_trace::alloc_snapshot);
        let fd_stats = match &self.fd {
            Some(cfg) => Some(force_directed_impl(pcn, &mut placement, cfg, fm, sink)?),
            None => None,
        };
        let fd_elapsed = t1.elapsed();
        if sink.enabled() && self.fd.is_some() {
            let da = snnmap_trace::alloc_snapshot()
                .since(fd_alloc0.unwrap_or_default());
            sink.record(&TraceEvent::Phase(PhaseEvent {
                name: "fd".to_owned(),
                wall_ns: u64::try_from(fd_elapsed.as_nanos()).unwrap_or(u64::MAX),
                alloc_bytes: da.bytes,
                allocs: da.allocs,
            }));
        }

        Ok(MapOutcome { placement, fd_stats, init_elapsed, fd_elapsed })
    }

    fn curve_init<S: TraceSink + ?Sized>(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        curve: &dyn SpaceFillingCurve,
        sink: &mut S,
    ) -> Result<Placement, CoreError> {
        let order = time_phase(sink, "toposort", || toposort(pcn));
        time_phase(sink, "curve_init", || match self.faults.as_ref() {
            Some(fm) => sequence_placement_masked(&order, curve, mesh, fm),
            None => sequence_placement(&order, curve, mesh),
        })
    }
}

impl Default for Mapper {
    fn default() -> Self {
        Mapper::builder().build()
    }
}

impl fmt::Display for Mapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.fd {
            Some(cfg) => write!(f, "{:?} + FD({:?}, lambda={})", self.init, cfg.potential, cfg.lambda),
            None => write!(f, "{:?} (no FD)", self.init),
        }
    }
}

/// Builder for [`Mapper`].
#[derive(Debug, Clone)]
pub struct MapperBuilder {
    init: InitialPlacement,
    fd_enabled: bool,
    fd: FdConfig,
    faults: Option<FaultMap>,
    threads: usize,
}

impl Default for MapperBuilder {
    fn default() -> Self {
        Self {
            init: InitialPlacement::Hilbert,
            fd_enabled: true,
            fd: FdConfig::default(),
            faults: None,
            threads: 0,
        }
    }
}

impl MapperBuilder {
    /// Sets the initial-placement strategy (default: Hilbert).
    pub fn initial_placement(mut self, init: InitialPlacement) -> Self {
        self.init = init;
        self
    }

    /// Enables or disables the FD phase (default: enabled).
    pub fn fd_enabled(mut self, enabled: bool) -> Self {
        self.fd_enabled = enabled;
        self
    }

    /// Sets the FD potential field (default: `u_c`, eq. 21).
    pub fn potential(mut self, potential: Potential) -> Self {
        self.fd.potential = potential;
        self
    }

    /// Sets the λ queue fraction (default: 0.3, §4.5).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        self.fd.lambda = lambda;
        self
    }

    /// Caps FD iterations (default: unlimited; convergence is
    /// guaranteed).
    pub fn max_iterations(mut self, cap: u64) -> Self {
        self.fd.max_iterations = Some(cap);
        self
    }

    /// Caps FD wall-clock time (default: unlimited).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.fd.time_budget = Some(budget);
        self
    }

    /// Installs a hardware fault map: the whole pipeline will place and
    /// refine on healthy cores only (default: none, fault-free hardware).
    pub fn fault_map(mut self, faults: FaultMap) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets the worker-thread count for both the Hilbert traversal and
    /// the FD engine (default `0` = auto: `SNNMAP_THREADS`, else the
    /// machine's available parallelism).
    ///
    /// The pipeline produces **bit-identical placements for every thread
    /// count** — this knob only trades wall-clock time for cores.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Finalizes the mapper.
    pub fn build(self) -> Mapper {
        let mut fd = self.fd;
        fd.threads = self.threads;
        Mapper {
            init: self.init,
            fd: self.fd_enabled.then_some(fd),
            faults: self.faults,
            threads: self.threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::CostModel;
    use snnmap_metrics::evaluate;
    use snnmap_model::generators::random_pcn;

    #[test]
    fn default_is_paper_method_j() {
        let m = Mapper::default();
        assert_eq!(m.initial_placement(), InitialPlacement::Hilbert);
        let fd = m.fd_config().unwrap();
        assert_eq!(fd.potential, Potential::L2Squared);
        assert_eq!(fd.lambda, 0.3);
    }

    #[test]
    fn all_initializations_produce_complete_placements() {
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        for init in [
            InitialPlacement::Hilbert,
            InitialPlacement::ZigZag,
            InitialPlacement::Circle,
            InitialPlacement::Serpentine,
            InitialPlacement::Random(3),
        ] {
            let out = Mapper::builder()
                .initial_placement(init)
                .fd_enabled(false)
                .build()
                .map(&pcn, mesh)
                .unwrap();
            assert!(out.placement.is_complete(), "{init:?}");
            out.placement.check_consistency().unwrap();
        }
    }

    #[test]
    fn full_pipeline_beats_initial_only() {
        let pcn = random_pcn(100, 5.0, 9).unwrap();
        let mesh = Mesh::new(10, 10).unwrap();
        let cost = CostModel::paper_target();
        let init_only =
            Mapper::builder().fd_enabled(false).build().map(&pcn, mesh).unwrap();
        let full = Mapper::builder().build().map(&pcn, mesh).unwrap();
        let a = evaluate(&pcn, &init_only.placement, cost).unwrap();
        let b = evaluate(&pcn, &full.placement, cost).unwrap();
        assert!(b.energy <= a.energy, "FD must not worsen energy");
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let pcn = random_pcn(120, 5.0, 4).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let reference = Mapper::builder().threads(1).build().map(&pcn, mesh).unwrap();
        for threads in [2, 4, 8] {
            let m = Mapper::builder().threads(threads).build();
            assert_eq!(m.threads(), threads);
            let out = m.map(&pcn, mesh).unwrap();
            assert_eq!(out.placement, reference.placement, "threads={threads}");
            assert_eq!(
                out.fd_stats.as_ref().unwrap().swaps,
                reference.fd_stats.as_ref().unwrap().swaps,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn mesh_too_small_is_reported() {
        let pcn = random_pcn(100, 4.0, 2).unwrap();
        assert!(matches!(
            Mapper::default().map(&pcn, Mesh::new(9, 9).unwrap()),
            Err(CoreError::MeshTooSmall { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn builder_rejects_bad_lambda() {
        let _ = Mapper::builder().lambda(0.0);
    }

    #[test]
    fn faulty_hardware_is_avoided_by_every_initialization() {
        use snnmap_hw::{FaultInjector, FaultPattern};
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let fm = FaultInjector::new(42)
            .inject(mesh, &FaultPattern::Uniform { core_rate: 0.08, link_rate: 0.0 })
            .unwrap();
        assert!(fm.num_dead_cores() > 0);
        for init in [
            InitialPlacement::Hilbert,
            InitialPlacement::ZigZag,
            InitialPlacement::Circle,
            InitialPlacement::Serpentine,
            InitialPlacement::Random(3),
        ] {
            let out = Mapper::builder()
                .initial_placement(init)
                .fault_map(fm.clone())
                .build()
                .map(&pcn, mesh)
                .unwrap();
            assert!(out.placement.is_complete(), "{init:?}");
            out.placement.check_consistency().unwrap();
            for c in 0..50u32 {
                let coord = out.placement.coord_of(c).unwrap();
                assert!(!fm.is_dead(coord), "{init:?}: cluster {c} on dead core {coord}");
            }
            if let Some(stats) = out.fd_stats {
                assert!(stats.final_energy <= stats.initial_energy + 1e-9, "{init:?}");
            }
        }
    }

    #[test]
    fn traced_map_matches_untraced_and_orders_events() {
        use snnmap_trace::MemorySink;
        let pcn = random_pcn(120, 5.0, 4).unwrap();
        let mesh = Mesh::new(16, 16).unwrap();
        let mapper = Mapper::builder().threads(2).build();
        let plain = mapper.map(&pcn, mesh).unwrap();
        let mut sink = MemorySink::new();
        let traced = mapper.map_traced(&pcn, mesh, &mut sink).unwrap();
        assert_eq!(traced.placement, plain.placement);
        assert_eq!(traced.fd_stats, plain.fd_stats);

        let names: Vec<&str> = sink.events().iter().map(|e| e.name()).collect();
        // run, toposort, hsc_init, fd_config, sweeps…, fd_done, par, fd.
        assert_eq!(&names[..3], &["run", "phase", "phase"]);
        assert_eq!(names[3], "fd_config");
        assert_eq!(*names.last().unwrap(), "phase");
        let sweeps = names.iter().filter(|n| **n == "fd_sweep").count() as u64;
        assert_eq!(sweeps, traced.fd_stats.unwrap().iterations);
        assert!(names.contains(&"fd_done"));
        assert!(names.contains(&"par"));

        // The per-sweep energy telemetry must agree with FdStats and
        // descend monotonically (exact tension mode).
        let energies: Vec<f64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                snnmap_trace::TraceEvent::FdSweep(s) => Some(s.energy),
                _ => None,
            })
            .collect();
        let stats = traced.fd_stats.unwrap();
        assert_eq!(energies.last().copied().unwrap().to_bits(), stats.final_energy.to_bits());
        for w in energies.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "energy must not increase: {w:?}");
        }
    }

    #[test]
    fn traced_map_covers_every_initialization_kind() {
        use snnmap_trace::{MemorySink, TraceEvent};
        let pcn = random_pcn(50, 4.0, 1).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        for (init, expect) in [
            (InitialPlacement::Hilbert, "hsc_init"),
            (InitialPlacement::ZigZag, "curve_init"),
            (InitialPlacement::Circle, "curve_init"),
            (InitialPlacement::Serpentine, "curve_init"),
            (InitialPlacement::Random(3), "random_init"),
        ] {
            let mut sink = MemorySink::new();
            let out = Mapper::builder()
                .initial_placement(init)
                .build()
                .map_traced(&pcn, mesh, &mut sink)
                .unwrap();
            assert!(out.placement.is_complete(), "{init:?}");
            let has_phase = sink.events().iter().any(|e| {
                matches!(e, TraceEvent::Phase(p) if p.name == expect)
            });
            assert!(has_phase, "{init:?} should emit a {expect} phase");
        }
    }

    #[test]
    fn display_summarizes_configuration() {
        let m = Mapper::default();
        let s = m.to_string();
        assert!(s.contains("Hilbert"));
        assert!(s.contains("0.3"));
        let m = Mapper::builder().fd_enabled(false).build();
        assert!(m.to_string().contains("no FD"));
    }
}
