//! Topological sorting of the PCN (Algorithm 2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use snnmap_model::Pcn;

/// Orders the clusters of a PCN topologically, returning the sequence
/// `order` with `order[p]` = the cluster visited at position `p`
/// (the inverse of the paper's `Seq : V_P → ℕ`).
///
/// This is Kahn's algorithm with two of the paper's refinements
/// (Algorithm 2):
///
/// * among ready clusters, the one with the smallest index is taken
///   first (deterministic output; for layered networks the index order
///   *is* the data-flow order, so this keeps layers contiguous),
/// * when the ready set empties while unvisited clusters remain — the
///   graph has a cycle — the smallest-index unvisited cluster is forced
///   out, which lets the sort handle arbitrary (non-DAG) SNN topologies.
///
/// The result is always a permutation of `0..num_clusters`.
///
/// # Examples
///
/// ```
/// use snnmap_core::toposort;
/// use snnmap_model::PcnBuilder;
///
/// // A diamond: 0 -> {1, 2} -> 3.
/// let mut b = PcnBuilder::new();
/// for _ in 0..4 { b.add_cluster(1, 1); }
/// b.add_edge(0, 1, 1.0)?;
/// b.add_edge(0, 2, 1.0)?;
/// b.add_edge(1, 3, 1.0)?;
/// b.add_edge(2, 3, 1.0)?;
/// assert_eq!(toposort(&b.build()?), vec![0, 1, 2, 3]);
/// # Ok::<(), snnmap_model::ModelError>(())
/// ```
pub fn toposort(pcn: &Pcn) -> Vec<u32> {
    let n = pcn.num_clusters();
    let mut in_deg: Vec<u64> = (0..n).map(|c| pcn.in_degree(c)).collect();
    let mut seq_set = vec![false; n as usize];
    let mut order = Vec::with_capacity(n as usize);
    let mut ready: BinaryHeap<Reverse<u32>> =
        (0..n).filter(|&c| in_deg[c as usize] == 0).map(Reverse).collect();
    // Cursor for the non-DAG fallback: the smallest index not yet
    // sequenced. Only ever advances, so the fallback is amortized O(V).
    let mut cursor = 0u32;

    while (order.len() as u32) < n {
        let next = loop {
            match ready.pop() {
                Some(Reverse(c)) if !seq_set[c as usize] => break Some(c),
                Some(_) => continue, // stale heap entry
                None => break None,
            }
        };
        let c = match next {
            Some(c) => c,
            None => {
                // Cycle: force out the smallest unsequenced cluster.
                while seq_set[cursor as usize] {
                    cursor += 1;
                }
                cursor
            }
        };
        seq_set[c as usize] = true;
        order.push(c);
        for (t, _) in pcn.out_edges(c) {
            let d = &mut in_deg[t as usize];
            *d = d.saturating_sub(1);
            if *d == 0 && !seq_set[t as usize] {
                ready.push(Reverse(t));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::{generators::random_pcn, PcnBuilder};

    fn pcn_from_edges(n: u32, edges: &[(u32, u32)]) -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..n {
            b.add_cluster(1, 1);
        }
        for &(f, t) in edges {
            b.add_edge(f, t, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    fn assert_permutation(order: &[u32], n: u32) {
        assert_eq!(order.len() as u32, n);
        let mut seen = vec![false; n as usize];
        for &c in order {
            assert!(!seen[c as usize], "cluster {c} appears twice");
            seen[c as usize] = true;
        }
    }

    #[test]
    fn respects_dag_edges() {
        let pcn = pcn_from_edges(6, &[(5, 0), (0, 3), (3, 1), (1, 2), (2, 4)]);
        let order = toposort(&pcn);
        assert_permutation(&order, 6);
        let pos = |c: u32| order.iter().position(|&x| x == c).unwrap();
        for (f, t, _) in pcn.iter_edges() {
            assert!(pos(f) < pos(t), "edge {f}->{t} violated: {order:?}");
        }
    }

    #[test]
    fn smallest_index_first_among_ready() {
        // 0 and 2 are both sources; 0 must come first, then its children
        // compete by index.
        let pcn = pcn_from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(toposort(&pcn), vec![0, 1, 2, 3]);
    }

    #[test]
    fn handles_pure_cycle() {
        let pcn = pcn_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let order = toposort(&pcn);
        assert_permutation(&order, 3);
        // The fallback forces the smallest index first.
        assert_eq!(order[0], 0);
    }

    #[test]
    fn handles_cycle_with_tail() {
        // 1 <-> 2 cycle feeding 3, with source 0.
        let pcn = pcn_from_edges(4, &[(1, 2), (2, 1), (1, 3), (0, 3)]);
        let order = toposort(&pcn);
        assert_permutation(&order, 4);
        let pos = |c: u32| order.iter().position(|&x| x == c).unwrap();
        assert!(pos(1) < pos(3));
    }

    #[test]
    fn isolated_clusters_in_index_order() {
        let pcn = pcn_from_edges(5, &[]);
        assert_eq!(toposort(&pcn), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_graphs_always_yield_permutations() {
        for seed in 0..10 {
            let pcn = random_pcn(200, 5.0, seed).unwrap();
            let order = toposort(&pcn);
            assert_permutation(&order, 200);
        }
    }

    #[test]
    fn layered_pcn_keeps_layer_order() {
        // Clusters 0..4 in a chain by pairs (layer structure): toposort is
        // the identity, i.e. the data-flow order.
        let pcn = pcn_from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (2, 4), (3, 5)]);
        assert_eq!(toposort(&pcn), vec![0, 1, 2, 3, 4, 5]);
    }
}
