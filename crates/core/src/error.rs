//! Error type for the mapping pipeline.

use std::error::Error;
use std::fmt;

use snnmap_curves::CurveError;
use snnmap_hw::HwError;

/// Errors produced by the placement pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The mesh has fewer cores than the PCN has clusters.
    MeshTooSmall {
        /// Clusters to place.
        clusters: u32,
        /// Cores available.
        cores: usize,
    },
    /// An operation required a complete placement but some clusters are
    /// unplaced.
    IncompletePlacement {
        /// Clusters placed.
        placed: u32,
        /// Total clusters.
        total: u32,
    },
    /// The mesh has enough cores in total, but too many are dead for the
    /// PCN to fit on the survivors.
    InsufficientCores {
        /// Clusters to place.
        clusters: u32,
        /// Healthy (usable) cores.
        healthy: usize,
        /// Total cores including dead ones.
        total: usize,
    },
    /// A cluster fits on no remaining core of the board: every healthy
    /// unoccupied core's capacity vector is exceeded by the cluster's
    /// neuron or synapse demand.
    InsufficientCapacity {
        /// The cluster that fits nowhere.
        cluster: u32,
        /// Its neuron demand.
        neurons: u32,
        /// Its synapse demand.
        synapses: u64,
    },
    /// The force-directed sweep fraction λ was outside `(0, 1]`.
    InvalidLambda {
        /// The rejected value.
        lambda: f64,
    },
    /// A PCN and a placement disagree on the number of clusters.
    ClusterCountMismatch {
        /// Clusters in the PCN.
        pcn: u32,
        /// Clusters the placement tracks.
        placement: u32,
    },
    /// A parallel worker closure panicked; the run stopped at the last
    /// consistent sweep boundary (with a checkpoint flushed when one was
    /// requested) instead of aborting the process.
    WorkerPanicked {
        /// The panic message of the poisoned chunk.
        message: String,
    },
    /// The caller-supplied checkpoint writer reported a failure.
    CheckpointFailed {
        /// The writer's error message.
        message: String,
    },
    /// A `FdRunOpts` field was inconsistent with the run it was applied
    /// to (wrong force-table length, region mask of the wrong size, …).
    InvalidRunOpts {
        /// What was inconsistent.
        message: String,
    },
    /// A hardware-layer error (out-of-bounds placement, occupancy
    /// violation, …).
    Hw(HwError),
    /// A space-filling-curve error (e.g. Hilbert on a non-2^k mesh).
    Curve(CurveError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MeshTooSmall { clusters, cores } => {
                write!(f, "{clusters} clusters cannot be placed on {cores} cores")
            }
            CoreError::IncompletePlacement { placed, total } => {
                write!(f, "placement covers {placed} of {total} clusters")
            }
            CoreError::InsufficientCores { clusters, healthy, total } => {
                write!(
                    f,
                    "{clusters} clusters cannot fit on {healthy} healthy of {total} cores"
                )
            }
            CoreError::InsufficientCapacity { cluster, neurons, synapses } => {
                write!(
                    f,
                    "cluster {cluster} ({neurons} neurons, {synapses} synapses) \
                     fits no remaining core on the board"
                )
            }
            CoreError::InvalidLambda { lambda } => {
                write!(f, "lambda must be in (0, 1], got {lambda}")
            }
            CoreError::ClusterCountMismatch { pcn, placement } => {
                write!(f, "PCN has {pcn} clusters but placement tracks {placement}")
            }
            CoreError::WorkerPanicked { message } => {
                write!(f, "parallel worker panicked: {message}")
            }
            CoreError::CheckpointFailed { message } => {
                write!(f, "checkpoint write failed: {message}")
            }
            CoreError::InvalidRunOpts { message } => {
                write!(f, "invalid run options: {message}")
            }
            CoreError::Hw(e) => write!(f, "hardware error: {e}"),
            CoreError::Curve(e) => write!(f, "curve error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Hw(e) => Some(e),
            CoreError::Curve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HwError> for CoreError {
    fn from(e: HwError) -> Self {
        CoreError::Hw(e)
    }
}

impl From<CurveError> for CoreError {
    fn from(e: CurveError) -> Self {
        CoreError::Curve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::Coord;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::MeshTooSmall { clusters: 10, cores: 9 };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());
        let e = CoreError::from(HwError::OutOfBounds { coord: Coord::new(1, 1) });
        assert!(e.source().is_some());
        let e = CoreError::WorkerPanicked { message: "chunk 3 died".into() };
        assert!(e.to_string().contains("chunk 3 died"));
        assert!(e.source().is_none());
        let e = CoreError::CheckpointFailed { message: "disk full".into() };
        assert!(e.to_string().contains("disk full"));
        let e = CoreError::InvalidRunOpts { message: "bad region len".into() };
        assert!(e.to_string().contains("bad region len"));
    }
}
