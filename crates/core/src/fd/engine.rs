//! The Force-Directed engine (Algorithm 3).

use std::time::{Duration, Instant};

use snnmap_hw::{Coord, FaultMap, HwError, Mesh, Placement};
use snnmap_model::Pcn;

use crate::{CoreError, Potential};

/// How the tension of a connected adjacent pair is computed.
///
/// A swap of adjacent clusters preserves the distance of any edge
/// *between* them, but each cluster's directed force counts that mutual
/// edge as if the other endpoint stayed put — so summing the two forces
/// (eq. 30 as written) double-counts it. [`TensionMode::Exact`] corrects
/// the sum so tension equals the exact system-energy delta of the swap,
/// preserving the monotone-descent convergence argument (eq. 31).
/// [`TensionMode::PaperNaive`] keeps the uncorrected sum for ablation:
/// it can claim positive tension on swaps that actually increase energy,
/// so runs in this mode are automatically iteration-capped (oscillation
/// is otherwise possible on heavily connected neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TensionMode {
    /// Correct the mutual-edge double count (the default; used for all
    /// headline results).
    #[default]
    Exact,
    /// Algorithm 3's literal `Force + Force` sum, for ablation.
    PaperNaive,
}

/// Tensions at or below this threshold are treated as zero: swaps must
/// strictly reduce the system energy (eq. 31) for the monotone-descent
/// convergence argument to survive floating-point noise.
const TENSION_EPS: f64 = 1e-9;

/// Configuration of the Force-Directed algorithm.
///
/// # Examples
///
/// ```
/// use snnmap_core::{FdConfig, Potential};
///
/// let cfg = FdConfig { potential: Potential::L1, ..FdConfig::default() };
/// assert_eq!(cfg.lambda, 0.3); // the paper's practical value (§4.5)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdConfig {
    /// Potential field shape (§4.4.2).
    pub potential: Potential,
    /// Fraction of the sorted queue swapped per iteration (§4.5 fixes
    /// 30% as the practical speed/quality balance).
    pub lambda: f64,
    /// Optional hard cap on iterations (the algorithm otherwise runs to
    /// convergence, which eq. 31 guarantees is finite).
    pub max_iterations: Option<u64>,
    /// Optional wall-clock budget; the algorithm stops at the end of the
    /// iteration during which the budget expires.
    pub time_budget: Option<Duration>,
    /// Tension bookkeeping: exact swap delta vs the paper's naive force
    /// sum (ablation).
    pub tension_mode: TensionMode,
}

impl Default for FdConfig {
    fn default() -> Self {
        Self {
            potential: Potential::default(),
            lambda: 0.3,
            max_iterations: None,
            time_budget: None,
            tension_mode: TensionMode::Exact,
        }
    }
}

/// Outcome statistics of one Force-Directed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdStats {
    /// Sweeps of the positive-tension queue performed.
    pub iterations: u64,
    /// Pair swaps applied.
    pub swaps: u64,
    /// System potential energy of the input placement (eq. 23).
    pub initial_energy: f64,
    /// System potential energy at termination.
    pub final_energy: f64,
    /// `true` if the queue emptied (full convergence); `false` if an
    /// iteration or time cap fired first.
    pub converged: bool,
}

/// Direction encoding shared with the paper: `UP, DOWN, LEFT, RIGHT`.
const DIRS: [(i32, i32); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
const DOWN: usize = 1;
const RIGHT: usize = 3;

#[inline]
fn opposite(d: usize) -> usize {
    match d {
        0 => 1,
        1 => 0,
        2 => 3,
        _ => 2,
    }
}

/// Runs the Force-Directed algorithm (Algorithm 3) on a complete
/// placement, refining it in place.
///
/// Clusters are particles; each connection pulls its endpoints together
/// with a strength given by the potential field and the connection's
/// traffic weight. Adjacent core pairs whose occupants would lower the
/// system energy when exchanged carry *positive tension*; every
/// iteration swaps the top-λ fraction of the positive-tension queue
/// (re-checking each pair just before its swap, §4.5 design choice 1),
/// then rebuilds tensions only around affected clusters (design
/// choice 3). Iteration continues until no positive tension remains.
///
/// Pairs with one empty core are supported (the swap is a move), which
/// handles the paper's non-full systems.
///
/// # Errors
///
/// [`CoreError::IncompletePlacement`] if any cluster is unplaced.
///
/// # Examples
///
/// ```
/// use snnmap_core::{force_directed, random_placement, FdConfig};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(64, 4.0, 2)?;
/// let mesh = Mesh::new(8, 8)?;
/// let mut placement = random_placement(&pcn, mesh, 0)?;
/// let stats = force_directed(&pcn, &mut placement, &FdConfig::default())?;
/// assert!(stats.final_energy <= stats.initial_energy);
/// assert!(stats.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn force_directed(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
) -> Result<FdStats, CoreError> {
    force_directed_impl(pcn, placement, config, None)
}

/// Fault-aware [`force_directed`]: swaps into or out of dead cores are
/// never considered (their pairs carry zero tension), so the refinement
/// explores only the healthy subgraph while keeping the monotone
/// energy-descent guarantee — dead cores start empty and stay empty.
///
/// # Errors
///
/// [`HwError::FaultyCore`] (wrapped in [`CoreError::Hw`]) if the input
/// placement already occupies a dead core; otherwise as
/// [`force_directed`].
pub fn force_directed_masked(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
    faults: &FaultMap,
) -> Result<FdStats, CoreError> {
    force_directed_impl(pcn, placement, config, Some(faults))
}

fn force_directed_impl(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
    faults: Option<&FaultMap>,
) -> Result<FdStats, CoreError> {
    if !(config.lambda > 0.0 && config.lambda <= 1.0) {
        return Err(CoreError::InvalidLambda { lambda: config.lambda });
    }
    let mut engine =
        Engine::new(pcn, placement, config.potential, config.tension_mode, faults)?;
    let initial_energy = engine.system_energy();
    let start = Instant::now();
    // Naive tension can oscillate (it may accept energy-increasing
    // swaps), so cap its iterations unless the caller already did.
    let max_iterations = match (config.tension_mode, config.max_iterations) {
        (TensionMode::PaperNaive, None) => Some(1_000),
        (_, cap) => cap,
    };

    // Build the initial positive-tension queue over all adjacent pairs.
    let mut queue: Vec<(f64, u64)> = Vec::new();
    for p in 0..engine.mesh.len() {
        for d in [DOWN, RIGHT] {
            if let Some(key) = engine.pair_key(p, d) {
                let t = engine.tension(key);
                if t > TENSION_EPS {
                    queue.push((t, key));
                }
            }
        }
    }
    sort_queue(&mut queue);

    let mut iterations = 0u64;
    let mut swaps = 0u64;
    let mut converged = true;
    while !queue.is_empty() {
        if let Some(cap) = max_iterations {
            if iterations >= cap {
                converged = false;
                break;
            }
        }
        if let Some(budget) = config.time_budget {
            if start.elapsed() >= budget {
                converged = false;
                break;
            }
        }
        iterations += 1;

        let take = ((config.lambda * queue.len() as f64).ceil() as usize).clamp(1, queue.len());
        let mut affected: Vec<u32> = Vec::new();
        for &(_, key) in queue.iter().take(take) {
            // Check before the swap: earlier swaps this iteration may have
            // flipped this pair's tension (§4.5 design choice 1).
            let t = engine.tension(key);
            if t <= TENSION_EPS {
                continue;
            }
            engine.swap(key, &mut affected)?;
            swaps += 1;
        }

        // Build the next queue: all current pairs plus every pair touching
        // an affected cluster's position.
        let mut keys: Vec<u64> = queue.iter().map(|&(_, k)| k).collect();
        affected.sort_unstable();
        affected.dedup();
        for &c in &affected {
            let p = engine.pos_index(c);
            for d in 0..4 {
                if let Some(key) = engine.pair_key_any(p, d) {
                    keys.push(key);
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        queue.clear();
        for key in keys {
            let t = engine.tension(key);
            if t > TENSION_EPS {
                queue.push((t, key));
            }
        }
        sort_queue(&mut queue);
    }

    let final_energy = engine.system_energy();
    Ok(FdStats { iterations, swaps, initial_energy, final_energy, converged })
}

fn sort_queue(queue: &mut [(f64, u64)]) {
    // Highest tension first; key as deterministic tie-breaker. total_cmp
    // keeps the order well-defined even if a weight ever produces a NaN.
    queue.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
}

/// The mutable state of one FD run: the placement's grids plus the
/// per-position force arrays of eq. 27, maintained incrementally.
struct Engine<'a> {
    pcn: &'a Pcn,
    placement: &'a mut Placement,
    mesh: Mesh,
    potential: Potential,
    tension_mode: TensionMode,
    unit_step: f64,
    /// `force[p][d]`: energy reduction from moving the cluster at
    /// position `p` one step in direction `d` (0 for empty positions).
    force: Vec<[f64; 4]>,
    /// `pos[c]`: mesh index of cluster `c`, maintained across swaps so
    /// lookups never have to unwrap an `Option` on the hot path.
    pos: Vec<usize>,
    /// `dead[p]`: position `p` is a dead core (empty when fault-free).
    dead: Vec<bool>,
}

impl<'a> Engine<'a> {
    fn new(
        pcn: &'a Pcn,
        placement: &'a mut Placement,
        potential: Potential,
        tension_mode: TensionMode,
        faults: Option<&FaultMap>,
    ) -> Result<Self, CoreError> {
        let mesh = placement.mesh();
        if placement.len() != pcn.num_clusters() {
            return Err(CoreError::ClusterCountMismatch {
                pcn: pcn.num_clusters(),
                placement: placement.len(),
            });
        }
        let dead: Vec<bool> = match faults {
            Some(fm) => {
                if fm.mesh() != mesh {
                    return Err(CoreError::Hw(HwError::InvalidFaultSpec {
                        message: format!(
                            "fault map covers {} but placement targets {mesh}",
                            fm.mesh()
                        ),
                    }));
                }
                mesh.iter().map(|c| fm.is_dead(c)).collect()
            }
            None => Vec::new(),
        };
        let mut pos = vec![0usize; placement.len() as usize];
        for c in 0..placement.len() {
            let Some(coord) = placement.coord_of(c) else {
                return Err(CoreError::IncompletePlacement {
                    placed: placement.placed_count(),
                    total: placement.len(),
                });
            };
            let p = mesh.index_of(coord);
            if !dead.is_empty() && dead[p] {
                return Err(CoreError::Hw(HwError::FaultyCore { coord }));
            }
            pos[c as usize] = p;
        }
        let mut engine = Self {
            pcn,
            placement,
            mesh,
            potential,
            tension_mode,
            unit_step: potential.unit_step(),
            force: vec![[0.0; 4]; mesh.len()],
            pos,
            dead,
        };
        for p in 0..mesh.len() {
            engine.rebuild_force(p);
        }
        Ok(engine)
    }

    #[inline]
    fn coord(&self, p: usize) -> Coord {
        self.mesh.coord_of_index(p)
    }

    #[inline]
    fn pos_index(&self, cluster: u32) -> usize {
        self.pos[cluster as usize]
    }

    #[inline]
    fn is_dead_pos(&self, p: usize) -> bool {
        !self.dead.is_empty() && self.dead[p]
    }

    /// Neighbour position of `p` in direction `d`, if inside the mesh.
    #[inline]
    fn step(&self, p: usize, d: usize) -> Option<usize> {
        let c = self.coord(p);
        let (dx, dy) = DIRS[d];
        let x = c.x as i32 + dx;
        let y = c.y as i32 + dy;
        if x < 0 || y < 0 || x >= self.mesh.rows() as i32 || y >= self.mesh.cols() as i32 {
            return None;
        }
        Some(self.mesh.index_of(Coord::new(x as u16, y as u16)))
    }

    /// Canonical key of the adjacent pair `(p, step(p, d))`, encoding the
    /// smaller position and its DOWN/RIGHT direction. `None` when the
    /// step leaves the mesh.
    #[inline]
    fn pair_key(&self, p: usize, d: usize) -> Option<u64> {
        debug_assert!(d == DOWN || d == RIGHT);
        self.step(p, d)?;
        Some((p as u64) << 1 | u64::from(d == RIGHT))
    }

    /// Canonical pair key for any direction (normalizing UP/LEFT to the
    /// neighbour's DOWN/RIGHT).
    #[inline]
    fn pair_key_any(&self, p: usize, d: usize) -> Option<u64> {
        let q = self.step(p, d)?;
        match d {
            DOWN | RIGHT => self.pair_key(p, d),
            0 => self.pair_key(q, DOWN),
            _ => self.pair_key(q, RIGHT),
        }
    }

    #[inline]
    fn decode(&self, key: u64) -> (usize, usize) {
        let p = (key >> 1) as usize;
        let d = if key & 1 == 1 { RIGHT } else { DOWN };
        (p, d)
    }

    /// Potential between two absolute positions.
    #[inline]
    fn u(&self, a: Coord, b: Coord) -> f64 {
        self.potential.value(a.x as i32 - b.x as i32, a.y as i32 - b.y as i32)
    }

    /// System total potential energy (eq. 23).
    fn system_energy(&self) -> f64 {
        let mut es = 0.0;
        for c in 0..self.pcn.num_clusters() {
            let pc = self.coord(self.pos_index(c));
            for (t, w) in self.pcn.out_edges(c) {
                let pt = self.coord(self.pos_index(t));
                es += w as f64 * self.u(pc, pt);
            }
        }
        es
    }

    /// Rebuilds the four directed forces of the cluster at position `p`
    /// (eq. 27), or zeroes them if `p` is empty.
    fn rebuild_force(&mut self, p: usize) {
        let mut f = [0.0f64; 4];
        if let Some(c) = self.placement.cluster_at(self.coord(p)) {
            let here = self.coord(p);
            for (d, slot) in f.iter_mut().enumerate() {
                let Some(q) = self.step(p, d) else { continue };
                let there = self.coord(q);
                let mut sum = 0.0;
                for (t, w) in self.pcn.out_edges(c) {
                    let pt = self.coord(self.pos_index(t));
                    sum += w as f64 * (self.u(pt, here) - self.u(pt, there));
                }
                for (s, w) in self.pcn.in_edges(c) {
                    let ps = self.coord(self.pos_index(s));
                    sum += w as f64 * (self.u(ps, here) - self.u(ps, there));
                }
                *slot = sum;
            }
        }
        self.force[p] = f;
    }

    /// Total traffic on the (up to two) directed connections between two
    /// clusters.
    #[inline]
    fn mutual_weight(&self, a: u32, b: u32) -> f64 {
        self.pcn.edge_weight(a, b).unwrap_or(0.0) as f64
            + self.pcn.edge_weight(b, a).unwrap_or(0.0) as f64
    }

    /// The tension of an adjacent pair (eq. 30): the exact system-energy
    /// reduction its swap would produce. For a connected pair the naive
    /// sum of the two forces double-counts the mutual edge (whose length
    /// a swap preserves), so that term is corrected out.
    fn tension(&self, key: u64) -> f64 {
        let (p, d) = self.decode(key);
        let Some(q) = self.step(p, d) else { return 0.0 };
        // A pair touching a dead core carries no tension: dead cores stay
        // empty, and forbidding these swaps keeps descent monotone over
        // the healthy subgraph.
        if self.is_dead_pos(p) || self.is_dead_pos(q) {
            return 0.0;
        }
        let cu = self.placement.cluster_at(self.coord(p));
        let cv = self.placement.cluster_at(self.coord(q));
        match (cu, cv) {
            (None, None) => 0.0,
            (Some(_), None) => self.force[p][d],
            (None, Some(_)) => self.force[q][opposite(d)],
            (Some(u), Some(v)) => {
                let naive = self.force[p][d] + self.force[q][opposite(d)];
                match self.tension_mode {
                    TensionMode::Exact => {
                        naive - 2.0 * self.mutual_weight(u, v) * self.unit_step
                    }
                    TensionMode::PaperNaive => naive,
                }
            }
        }
    }

    /// Swaps the occupants of a pair and maintains the force arrays:
    /// full rebuilds at the two positions, O(1)-per-edge patches at every
    /// graph neighbour (Algorithm 3 lines 20–26). Appends moved and
    /// affected clusters to `affected`.
    fn swap(&mut self, key: u64, affected: &mut Vec<u32>) -> Result<(), CoreError> {
        let (p, d) = self.decode(key);
        let Some(q) = self.step(p, d) else { return Ok(()) };
        let (pc, qc) = (self.coord(p), self.coord(q));
        let cu = self.placement.cluster_at(pc);
        let cv = self.placement.cluster_at(qc);
        self.placement.swap_cores(pc, qc)?;
        if let Some(u) = cu {
            self.pos[u as usize] = q;
        }
        if let Some(v) = cv {
            self.pos[v as usize] = p;
        }

        // Patch neighbours before rebuilding the pair's own forces (the
        // patches only touch other positions).
        if let Some(u) = cu {
            self.patch_neighbors(u, pc, qc, cv, affected);
            affected.push(u);
        }
        if let Some(v) = cv {
            self.patch_neighbors(v, qc, pc, cu, affected);
            affected.push(v);
        }
        self.rebuild_force(p);
        self.rebuild_force(q);
        Ok(())
    }

    /// After `moved` relocated `from → to`, adjust the force of each of
    /// its graph neighbours by the per-edge delta (skipping `other`, the
    /// second moved cluster, whose position gets a full rebuild).
    fn patch_neighbors(
        &mut self,
        moved: u32,
        from: Coord,
        to: Coord,
        other: Option<u32>,
        affected: &mut Vec<u32>,
    ) {
        // Collect both edge directions; weights enter the force formula
        // identically either way.
        let neighbors: Vec<(u32, f64)> = self
            .pcn
            .out_edges(moved)
            .map(|(t, w)| (t, w as f64))
            .chain(self.pcn.in_edges(moved).map(|(s, w)| (s, w as f64)))
            .collect();
        for (k, w) in neighbors {
            if k == moved || Some(k) == other {
                continue;
            }
            let pki = self.pos_index(k);
            let pk = self.coord(pki);
            for d in 0..4 {
                let Some(qi) = self.step(pki, d) else { continue };
                let there = self.coord(qi);
                // Force term of edge (k, moved) in direction d changed
                // from the `from` position to the `to` position.
                self.force[pki][d] += w
                    * ((self.u(to, pk) - self.u(to, there))
                        - (self.u(from, pk) - self.u(from, there)));
            }
            affected.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hsc_placement, random_placement};
    use snnmap_hw::CostModel;
    use snnmap_metrics::energy;
    use snnmap_model::generators::random_pcn;
    use snnmap_model::PcnBuilder;

    fn small_pcn() -> Pcn {
        random_pcn(64, 4.0, 42).unwrap()
    }

    #[test]
    fn energy_never_increases_and_converges() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        for potential in [
            Potential::L1,
            Potential::L1Squared,
            Potential::L2Squared,
            Potential::energy_model(CostModel::paper_target()),
        ] {
            let mut p = random_placement(&pcn, mesh, 1).unwrap();
            let cfg = FdConfig { potential, ..FdConfig::default() };
            let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
            assert!(stats.converged);
            assert!(
                stats.final_energy <= stats.initial_energy + 1e-9,
                "{potential:?}: {} > {}",
                stats.final_energy,
                stats.initial_energy
            );
            p.check_consistency().unwrap();
        }
    }

    #[test]
    fn tracked_energy_matches_recomputation() {
        // The incremental force/tension bookkeeping must agree with a
        // from-scratch energy computation at the end.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 3).unwrap();
        let cfg = FdConfig::default();
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        let mut scratch = p.clone();
        let engine =
            Engine::new(&pcn, &mut scratch, cfg.potential, TensionMode::Exact, None).unwrap();
        assert!((engine.system_energy() - stats.final_energy).abs() < 1e-6);
    }

    #[test]
    fn eq26_energy_model_potential_equals_mec() {
        // eq. 26: with the energy-model potential, FD system energy is
        // exactly the M_ec metric.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = random_placement(&pcn, mesh, 5).unwrap();
        let cfg = FdConfig { potential: Potential::energy_model(cost), ..FdConfig::default() };
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        let mec = energy(&pcn, &p, cost).unwrap();
        assert!(
            (stats.final_energy - mec).abs() < 1e-6 * mec.max(1.0),
            "{} vs {}",
            stats.final_energy,
            mec
        );
    }

    #[test]
    fn improves_random_placements() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = random_placement(&pcn, mesh, 7).unwrap();
        let before = energy(&pcn, &p, cost).unwrap();
        force_directed(
            &pcn,
            &mut p,
            &FdConfig { potential: Potential::energy_model(cost), ..FdConfig::default() },
        )
        .unwrap();
        let after = energy(&pcn, &p, cost).unwrap();
        assert!(after < before, "FD should improve a random placement: {after} vs {before}");
    }

    #[test]
    fn improves_hsc_placements_further() {
        // §5.2 observation 2: FD on top of HSC improves the metrics
        // further.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = hsc_placement(&pcn, mesh).unwrap();
        let before = energy(&pcn, &p, cost).unwrap();
        force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        let after = energy(&pcn, &p, cost).unwrap();
        assert!(after <= before);
    }

    #[test]
    fn partial_occupancy_moves_into_empty_cores() {
        // Two connected clusters placed at opposite corners of an
        // otherwise empty mesh must be pulled together through empty
        // cells.
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        b.add_cluster(1, 1);
        b.add_edge(0, 1, 10.0).unwrap();
        let pcn = b.build().unwrap();
        let mesh = Mesh::new(5, 5).unwrap();
        let mut p = Placement::new_unplaced(mesh, 2);
        p.place(0, Coord::new(0, 0)).unwrap();
        p.place(1, Coord::new(4, 4)).unwrap();
        let stats = force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        assert!(stats.converged);
        assert_eq!(p.distance(0, 1).unwrap(), 1, "clusters should end adjacent");
    }

    #[test]
    fn incomplete_placement_errors() {
        let pcn = small_pcn();
        let mut p = Placement::new_unplaced(Mesh::new(8, 8).unwrap(), 64);
        assert!(matches!(
            force_directed(&pcn, &mut p, &FdConfig::default()),
            Err(CoreError::IncompletePlacement { placed: 0, total: 64 })
        ));
    }

    #[test]
    fn iteration_cap_stops_early() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 11).unwrap();
        let stats = force_directed(
            &pcn,
            &mut p,
            &FdConfig { max_iterations: Some(1), ..FdConfig::default() },
        )
        .unwrap();
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn converged_state_has_no_positive_tension() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 13).unwrap();
        force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        let mut scratch = p.clone();
        let engine =
            Engine::new(&pcn, &mut scratch, Potential::default(), TensionMode::Exact, None)
                .unwrap();
        for pos in 0..mesh.len() {
            for d in [DOWN, RIGHT] {
                if let Some(key) = engine.pair_key(pos, d) {
                    assert!(
                        engine.tension(key) <= TENSION_EPS,
                        "positive tension survived at pos {pos} dir {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_given_same_input() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut a = random_placement(&pcn, mesh, 17).unwrap();
        let mut b = a.clone();
        let sa = force_directed(&pcn, &mut a, &FdConfig::default()).unwrap();
        let sb = force_directed(&pcn, &mut b, &FdConfig::default()).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    #[test]
    fn naive_tension_mode_runs_and_reports_true_energy() {
        // The ablation mode: tensions may overestimate, but final_energy
        // is recomputed from scratch so the report stays truthful, and
        // the automatic iteration cap bounds any oscillation.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = random_placement(&pcn, mesh, 21).unwrap();
        let cfg = FdConfig {
            potential: Potential::energy_model(cost),
            tension_mode: TensionMode::PaperNaive,
            ..FdConfig::default()
        };
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        let mec = energy(&pcn, &p, cost).unwrap();
        assert!((stats.final_energy - mec).abs() < 1e-6 * mec.max(1.0));
        // Naive tension still improves a random start in practice.
        assert!(stats.final_energy < stats.initial_energy);
        p.check_consistency().unwrap();
    }

    #[test]
    fn exact_tension_never_loses_to_naive() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let run = |mode| {
            let mut p = random_placement(&pcn, mesh, 23).unwrap();
            let cfg = FdConfig {
                potential: Potential::energy_model(cost),
                tension_mode: mode,
                ..FdConfig::default()
            };
            force_directed(&pcn, &mut p, &cfg).unwrap();
            energy(&pcn, &p, cost).unwrap()
        };
        let exact = run(TensionMode::Exact);
        let naive = run(TensionMode::PaperNaive);
        assert!(exact <= naive * 1.05, "exact {exact} vs naive {naive}");
    }

    #[test]
    fn masked_fd_never_touches_dead_cores_and_descends() {
        let pcn = random_pcn(40, 4.0, 9).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut fm = FaultMap::new(mesh);
        for i in 0..6u16 {
            fm.kill_core(Coord::new(i, (i * 3) % 8)).unwrap();
        }
        let mut p = crate::random_placement_masked(&pcn, mesh, 31, &fm).unwrap();
        let stats =
            force_directed_masked(&pcn, &mut p, &FdConfig::default(), &fm).unwrap();
        assert!(stats.converged);
        assert!(stats.final_energy <= stats.initial_energy + 1e-9);
        p.check_consistency().unwrap();
        for c in 0..40u32 {
            assert!(!fm.is_dead(p.coord_of(c).unwrap()), "cluster {c} landed on a dead core");
        }
    }

    #[test]
    fn masked_fd_rejects_placement_on_dead_core() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 2).unwrap();
        let mut fm = FaultMap::new(mesh);
        // Kill the core cluster 0 sits on: the input is already invalid.
        let c0 = p.coord_of(0).unwrap();
        fm.kill_core(c0).unwrap();
        assert!(matches!(
            force_directed_masked(&pcn, &mut p, &FdConfig::default(), &fm),
            Err(CoreError::Hw(HwError::FaultyCore { coord })) if coord == c0
        ));
    }

    #[test]
    fn bad_lambda_is_a_typed_error() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 2).unwrap();
        for lambda in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                force_directed(&pcn, &mut p, &FdConfig { lambda, ..FdConfig::default() }),
                Err(CoreError::InvalidLambda { .. })
            ));
        }
    }

    #[test]
    fn lambda_extremes_still_converge() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        for lambda in [0.05, 1.0] {
            let mut p = random_placement(&pcn, mesh, 19).unwrap();
            let stats = force_directed(
                &pcn,
                &mut p,
                &FdConfig { lambda, ..FdConfig::default() },
            )
            .unwrap();
            assert!(stats.converged, "lambda={lambda}");
        }
    }
}
