//! The Force-Directed engine (Algorithm 3).
//!
//! The hot path is organised for million-core meshes:
//!
//! * **SoA coordinate layout** — cluster coordinates live in two dense
//!   `cx`/`cy` arrays of the kernel's scalar type (and the static mesh
//!   coordinate table in split `mesh_x`/`mesh_y` arrays), so the force
//!   and energy loops stream contiguous floats through branch-free
//!   distance kernels (see [`crate::fd::potential`]) instead of
//!   gathering `(x, y)` structs through the position table;
//! * a packed per-cluster *hot record* (`signature + force`) so a swap's
//!   neighbour patch touches one cache line per graph neighbour;
//! * a merged out+in adjacency CSR — each patch/rebuild walks a single
//!   contiguous row, and the mutual-edge correction is a short row scan
//!   instead of two binary searches;
//! * a per-pair **score table** refreshed by stamped-position scans —
//!   each sweep recomputes, in parallel, exactly the pairs whose
//!   endpoint positions a swap touched and copies every other cached
//!   tension forward; there is no serial dirty-list building, sorting or
//!   carried-queue scanning between the parallel phases, which is what
//!   makes the sweep loop scale past one core (Amdahl: the only serial
//!   part left is the order-dependent swap application itself);
//! * `select_nth_unstable`-based top-λ selection instead of sorting the
//!   whole queue every sweep;
//! * the placement itself is untouched during sweeps; the result is
//!   committed once at the end via [`Placement::set_coords`];
//! * every parallel phase runs on [`crate::par`]'s scoped-thread
//!   helpers, merged in deterministic key/block order, with per-sweep
//!   granularity steered by measured-throughput [`par::Tuner`]s — so the
//!   result is bit-identical for every thread count and the thread count
//!   only ever changes wall-clock time.

use std::cmp::Ordering;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snnmap_hw::{Board, Coord, FaultMap, HwError, Mesh, Placement};
use snnmap_model::Pcn;
use snnmap_trace::{
    CheckpointEvent, FdConfigEvent, FdDoneEvent, FdSweepEvent, NoopSink, ObjectiveEvent, ParEvent,
    ResumeEvent, ReweightEvent, TraceEvent, TraceSink,
};

use crate::fd::potential::{with_kernel, CoordF, PotKernel};
use crate::objective::{Objective, ObjectiveState, ReweightOutcome, SweepReweighter};
use crate::{par, CoreError, Potential};

/// How the tension of a connected adjacent pair is computed.
///
/// A swap of adjacent clusters preserves the distance of any edge
/// *between* them, but each cluster's directed force counts that mutual
/// edge as if the other endpoint stayed put — so summing the two forces
/// (eq. 30 as written) double-counts it. [`TensionMode::Exact`] corrects
/// the sum so tension equals the exact system-energy delta of the swap,
/// preserving the monotone-descent convergence argument (eq. 31).
/// [`TensionMode::PaperNaive`] keeps the uncorrected sum for ablation:
/// it can claim positive tension on swaps that actually increase energy,
/// so runs in this mode are automatically iteration-capped (oscillation
/// is otherwise possible on heavily connected neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TensionMode {
    /// Correct the mutual-edge double count (the default; used for all
    /// headline results).
    #[default]
    Exact,
    /// Algorithm 3's literal `Force + Force` sum, for ablation.
    PaperNaive,
}

/// Tensions at or below this threshold are treated as zero: swaps must
/// strictly reduce the system energy (eq. 31) for the monotone-descent
/// convergence argument to survive floating-point noise.
const TENSION_EPS: f64 = 1e-9;

/// Fixed block size of the system-energy reduction. Partial sums are
/// taken per block and combined in block order, so the total (including
/// its floating-point rounding) never depends on the thread count.
const ENERGY_BLOCK: usize = 4096;

/// Configuration of the Force-Directed algorithm.
///
/// # Examples
///
/// ```
/// use snnmap_core::{FdConfig, Potential};
///
/// let cfg = FdConfig { potential: Potential::L1, ..FdConfig::default() };
/// assert_eq!(cfg.lambda, 0.3); // the paper's practical value (§4.5)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdConfig {
    /// Potential field shape (§4.4.2).
    pub potential: Potential,
    /// Fraction of the sorted queue swapped per iteration (§4.5 fixes
    /// 30% as the practical speed/quality balance).
    pub lambda: f64,
    /// Optional hard cap on iterations (the algorithm otherwise runs to
    /// convergence, which eq. 31 guarantees is finite).
    pub max_iterations: Option<u64>,
    /// Optional wall-clock budget; the algorithm stops at the end of the
    /// iteration during which the budget expires.
    pub time_budget: Option<Duration>,
    /// Tension bookkeeping: exact swap delta vs the paper's naive force
    /// sum (ablation).
    pub tension_mode: TensionMode,
    /// Worker threads for the parallel phases. `0` means auto: the
    /// `SNNMAP_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism (see
    /// [`crate::par::resolve_threads`]). The refined placement and the
    /// returned [`FdStats`] are bit-identical for every value.
    pub threads: usize,
    /// What the descent minimizes. The default, [`Objective::Energy`],
    /// adds zero state and zero floating-point work to the tension path
    /// — historical placements and digests are reproduced exactly. With
    /// a congestion/composite objective, [`FdStats`] energies still
    /// report *pure* energy (so runs stay comparable), while the queue
    /// and convergence follow the composite tension.
    pub objective: Objective,
    /// Sim-in-the-loop cadence: every `k` sweeps the engine asks the
    /// [`FdRunOpts::reweighter`] hook (or, absent a hook, its own
    /// congestion map) for router heat and folds it into the congestion
    /// term's weight field, then rescores everything. Requires a
    /// non-energy objective; incompatible with checkpointing/resume
    /// (the weight field is not part of [`FdCheckpoint`]).
    pub reweight_every: Option<u64>,
}

impl Default for FdConfig {
    fn default() -> Self {
        Self {
            potential: Potential::default(),
            lambda: 0.3,
            max_iterations: None,
            time_budget: None,
            tension_mode: TensionMode::Exact,
            threads: 0,
            objective: Objective::Energy,
            reweight_every: None,
        }
    }
}

/// Outcome statistics of one Force-Directed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdStats {
    /// Sweeps of the positive-tension queue performed (cumulative across
    /// resumes).
    pub iterations: u64,
    /// Pair swaps applied (cumulative across resumes).
    pub swaps: u64,
    /// System potential energy of the input placement (eq. 23).
    pub initial_energy: f64,
    /// System potential energy at termination.
    pub final_energy: f64,
    /// `true` if the queue emptied (full convergence); `false` if an
    /// iteration cap, deadline or cancellation fired first.
    pub converged: bool,
    /// Why the run stopped (refines `converged`).
    pub stop: StopReason,
}

/// Why a Force-Directed run returned.
///
/// Every reason is a *successful* anytime outcome: the returned placement
/// is complete, valid, and — by monotone energy descent (eq. 31) — no
/// worse than the input placement, whichever reason fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The positive-tension queue emptied: no swap can lower the energy.
    Converged,
    /// A wall-clock limit fired ([`RunBudget::deadline`] or
    /// [`FdConfig::time_budget`]).
    DeadlineExpired,
    /// A sweep cap fired ([`RunBudget::max_sweeps`] or
    /// [`FdConfig::max_iterations`]).
    SweepCapReached,
    /// The [`RunBudget::cancel`] flag was raised.
    Cancelled,
}

impl StopReason {
    /// Stable lower-snake-case label (used in traces, CLI output, and
    /// the serve daemon's job-status JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::DeadlineExpired => "deadline_expired",
            StopReason::SweepCapReached => "sweep_cap_reached",
            StopReason::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cooperative stop conditions, checked at sweep boundaries.
///
/// All three limits compose (first to fire wins) and all make FD an
/// *anytime* algorithm: hitting a limit is not an error, the run returns
/// its best-so-far placement tagged with the [`StopReason`].
///
/// The deadline clock starts when the run (or resumed run) enters the
/// engine; it is per-invocation, not cumulative across resumes.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock limit for this invocation.
    pub deadline: Option<Duration>,
    /// Cap on *total* sweeps — a resumed run counts the checkpoint's
    /// sweeps toward it, so the cap means the same thing whether or not
    /// the run was interrupted.
    pub max_sweeps: Option<u64>,
    /// Cooperative cancellation: raise the flag from another thread and
    /// the run stops at the next sweep boundary.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// A consistent snapshot of a Force-Directed run at a sweep boundary.
///
/// Carries everything a bit-exact resume needs. The force table is part
/// of the snapshot because forces are maintained *incrementally* during
/// sweeps: floating-point addition is non-associative, so a from-scratch
/// force rebuild would differ from the incrementally patched values in
/// the low bits — restoring the table verbatim is what makes a resumed
/// run byte-identical to the uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct FdCheckpoint {
    /// The mesh the run targets.
    pub mesh: Mesh,
    /// Coordinate of every cluster at the snapshot.
    pub coords: Vec<Coord>,
    /// The incrementally maintained force record of every cluster
    /// (eq. 27), `[UP, DOWN, LEFT, RIGHT]`.
    pub forces: Vec<[f64; 4]>,
    /// Sweeps completed.
    pub sweeps: u64,
    /// Swaps applied.
    pub swaps: u64,
    /// System energy of the *original* input placement.
    pub initial_energy: f64,
    /// System energy at the snapshot.
    pub energy: f64,
}

/// Resume state extracted from a checkpoint ([`FdRunOpts::resume`]).
///
/// Deliberately excludes coordinates: the caller restores those into the
/// [`Placement`] it passes in (see `Mapper::resume`), keeping this type a
/// pure engine-state overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct FdResume {
    /// Sweeps already completed (seeds the sweep counter).
    pub sweeps: u64,
    /// Swaps already applied (seeds the swap counter).
    pub swaps: u64,
    /// System energy of the original input placement.
    pub initial_energy: f64,
    /// Force table to restore verbatim (see [`FdCheckpoint::forces`]).
    pub forces: Vec<[f64; 4]>,
}

impl FdResume {
    /// Extracts the engine-state overlay of `checkpoint`.
    pub fn from_checkpoint(checkpoint: &FdCheckpoint) -> Self {
        FdResume {
            sweeps: checkpoint.sweeps,
            swaps: checkpoint.swaps,
            initial_energy: checkpoint.initial_energy,
            forces: checkpoint.forces.clone(),
        }
    }
}

/// A caller-supplied checkpoint writer ([`FdRunOpts::on_checkpoint`]):
/// receives each flushed snapshot; an `Err` aborts the run.
pub type CheckpointWriter<'h> = dyn FnMut(&FdCheckpoint) -> Result<(), String> + 'h;

/// Per-run options of [`force_directed_budgeted`]: budget, resume state,
/// checkpoint cadence and an optional region restriction.
#[derive(Default)]
pub struct FdRunOpts<'h> {
    /// Cooperative stop conditions (default: run to convergence).
    pub budget: RunBudget,
    /// Resume from a checkpoint instead of starting fresh. The caller
    /// must have restored the checkpoint's coordinates into the
    /// placement; energies and counters are seeded from here.
    pub resume: Option<FdResume>,
    /// Flush a checkpoint every N completed sweeps (in addition to the
    /// flush on every budgeted stop). Must be positive; ignored without
    /// [`FdRunOpts::on_checkpoint`].
    pub checkpoint_every: Option<u64>,
    /// Checkpoint writer. Called at each flush point; an `Err` aborts the
    /// run with [`CoreError::CheckpointFailed`]. After a worker panic the
    /// writer is invoked best-effort before the error returns.
    pub on_checkpoint: Option<&'h mut CheckpointWriter<'h>>,
    /// Restrict swaps to a region: `region[p]` says mesh index `p` may
    /// take part. Pairs with an endpoint outside carry zero tension, so
    /// everything outside the region stays exactly where it is (used by
    /// incremental fault repair). Length must equal the mesh size.
    pub region: Option<Vec<bool>>,
    /// Enforce a board's per-core capacities: a swap that would land a
    /// cluster on a core whose [`snnmap_hw::CoreConstraints`] cannot
    /// admit it carries zero tension, exactly like a dead-core pair — so
    /// every intermediate placement of the run stays capacity-feasible.
    /// The filter is a pure function of occupancy and the static capacity
    /// tables, which preserves the engine's bit-determinism across thread
    /// counts. The board's mesh must equal the placement's.
    pub board: Option<&'h Board>,
    /// Sim-in-the-loop heat source, consulted every
    /// [`FdConfig::reweight_every`] sweeps. `None` with a reweight
    /// cadence set falls back to the engine's own incremental congestion
    /// map (`source: "self"`). The hook runs serially at the sweep
    /// boundary, so a deterministic implementation (e.g. a seeded
    /// `NocSim`) keeps the run byte-identical across thread counts.
    pub reweighter: Option<&'h mut dyn SweepReweighter>,
}

impl fmt::Debug for FdRunOpts<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FdRunOpts")
            .field("budget", &self.budget)
            .field("resume", &self.resume.as_ref().map(|r| r.sweeps))
            .field("checkpoint_every", &self.checkpoint_every)
            .field("on_checkpoint", &self.on_checkpoint.is_some())
            .field("region", &self.region.as_ref().map(Vec::len))
            .field("board", &self.board.is_some())
            .field("reweighter", &self.reweighter.is_some())
            .finish()
    }
}

/// Direction encoding shared with the paper: `UP = 0, DOWN = 1,
/// LEFT = 2, RIGHT = 3`.
const DOWN: usize = 1;
const RIGHT: usize = 3;

/// Occupant-table sentinel for an empty core.
const EMPTY: u32 = u32::MAX;

#[inline]
fn opposite(d: usize) -> usize {
    match d {
        0 => 1,
        1 => 0,
        2 => 3,
        _ => 2,
    }
}

/// Queue order: highest tension first; key as deterministic tie-breaker.
/// `total_cmp` keeps the order well-defined even if a weight ever
/// produces a NaN, and — because keys are unique — makes the order a
/// strict total order, so partial (top-λ) selection yields exactly the
/// prefix a full sort would.
#[inline]
fn cmp_entries(a: &(f64, u64), b: &(f64, u64)) -> Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Sorts the exact top-`take` of the queue (by [`cmp_entries`]) into
/// `queue[..take]`, leaving the tail in an unspecified — but
/// deterministic, thread-count independent — order.
///
/// Large queues skip `select_nth_unstable`'s full pivoting passes: a
/// strided sample estimates the cutoff tension, one streaming pass
/// partitions everything at-or-above that threshold to the front, and
/// only that slice is sorted. The threshold rank is biased deep by ~2σ
/// of the sample-quantile error, so the partition almost always captures
/// the true top-`take`; when the estimate still undershoots (`m < take`)
/// it falls back to the exact selector, so the result is exact either
/// way. Because [`cmp_entries`] is a strict total order, "the top-`take`
/// set" is unique — the sorted prefix is byte-for-byte the one a full
/// sort would produce, and downstream sweep logic (which consumes the
/// prefix, and the tail only as a set) cannot observe the change.
fn select_top(queue: &mut [(f64, u64)], take: usize) {
    const SAMPLE: usize = 256;
    let len = queue.len();
    if take < len && len >= 4 * SAMPLE {
        let stride = len / SAMPLE;
        let mut sample: Vec<(f64, u64)> = (0..SAMPLE).map(|i| queue[i * stride]).collect();
        sample.sort_unstable_by(cmp_entries);
        // Bernoulli quantile error at s = 256 is σ ≤ 1/32 of the queue;
        // overshooting the rank by 2σ (= s/16) makes undershoot rare
        // while keeping the expected over-collection ≲ 6% of the queue.
        let frac = take as f64 / len as f64;
        let rank = ((frac * SAMPLE as f64).ceil() as usize + SAMPLE / 16).min(SAMPLE - 1);
        let pivot = sample[rank];
        let mut m = 0;
        for i in 0..len {
            if cmp_entries(&queue[i], &pivot) != Ordering::Greater {
                queue.swap(m, i);
                m += 1;
            }
        }
        if m >= take {
            queue[..m].sort_unstable_by(cmp_entries);
            return;
        }
    }
    if take < len {
        queue.select_nth_unstable_by(take - 1, cmp_entries);
    }
    queue[..take].sort_unstable_by(cmp_entries);
}

/// Runs the Force-Directed algorithm (Algorithm 3) on a complete
/// placement, refining it in place.
///
/// Clusters are particles; each connection pulls its endpoints together
/// with a strength given by the potential field and the connection's
/// traffic weight. Adjacent core pairs whose occupants would lower the
/// system energy when exchanged carry *positive tension*; every
/// iteration swaps the top-λ fraction of the positive-tension queue
/// (re-checking each pair just before its swap, §4.5 design choice 1),
/// then re-scores tensions only around affected clusters (design
/// choice 3). Iteration continues until no positive tension remains.
///
/// Pairs with one empty core are supported (the swap is a move), which
/// handles the paper's non-full systems.
///
/// # Errors
///
/// [`CoreError::IncompletePlacement`] if any cluster is unplaced.
///
/// # Examples
///
/// ```
/// use snnmap_core::{force_directed, random_placement, FdConfig};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
///
/// let pcn = random_pcn(64, 4.0, 2)?;
/// let mesh = Mesh::new(8, 8)?;
/// let mut placement = random_placement(&pcn, mesh, 0)?;
/// let stats = force_directed(&pcn, &mut placement, &FdConfig::default())?;
/// assert!(stats.final_energy <= stats.initial_energy);
/// assert!(stats.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn force_directed(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
) -> Result<FdStats, CoreError> {
    force_directed_impl(pcn, placement, config, None, None, &mut FdRunOpts::default(), &mut NoopSink)
}

/// The fully-general Force-Directed entry point: optional fault mask,
/// cooperative [`RunBudget`], checkpoint/resume and region restriction
/// via [`FdRunOpts`], trace instrumentation via `sink`.
///
/// Whatever stops the run — convergence, deadline, sweep cap or
/// cancellation — the placement left in `placement` is complete, valid
/// and no worse (in system energy) than the input: budget expiry is an
/// anytime outcome tagged in [`FdStats::stop`], never an error.
///
/// # Errors
///
/// As [`force_directed`] / [`force_directed_masked`], plus
/// [`CoreError::InvalidRunOpts`] for inconsistent options (zero
/// `checkpoint_every`, wrong resume force-table or region length),
/// [`CoreError::CheckpointFailed`] when the checkpoint writer fails, and
/// [`CoreError::WorkerPanicked`] when a parallel worker panics (the
/// checkpoint writer is invoked best-effort first; the placement is left
/// untouched).
///
/// # Examples
///
/// ```
/// use snnmap_core::{force_directed_budgeted, random_placement, FdConfig, FdRunOpts, RunBudget};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
/// use snnmap_trace::NoopSink;
///
/// let pcn = random_pcn(64, 4.0, 2)?;
/// let mut placement = random_placement(&pcn, Mesh::new(8, 8)?, 0)?;
/// let mut opts = FdRunOpts {
///     budget: RunBudget { max_sweeps: Some(3), ..RunBudget::default() },
///     ..FdRunOpts::default()
/// };
/// let stats = force_directed_budgeted(
///     &pcn, &mut placement, &FdConfig::default(), None, &mut opts, &mut NoopSink,
/// )?;
/// assert!(stats.iterations <= 3);
/// assert!(stats.final_energy <= stats.initial_energy);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn force_directed_budgeted<S: TraceSink + ?Sized>(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
    faults: Option<&FaultMap>,
    opts: &mut FdRunOpts<'_>,
    sink: &mut S,
) -> Result<FdStats, CoreError> {
    force_directed_impl(pcn, placement, config, faults, None, opts, sink)
}

/// [`force_directed`] with trace instrumentation: emits an `fd_config`
/// header, one `fd_sweep` convergence record per sweep (queue size,
/// λ cutoff, swaps applied, dirty/carried pair counts, post-sweep system
/// energy), an `fd_done` summary and a `par` thread-pool utilization
/// delta into `sink`.
///
/// The instrumentation is zero-cost when disabled: every probe — the
/// per-sweep energy recomputation included — is guarded by
/// [`TraceSink::enabled`], and with [`NoopSink`] (what
/// [`force_directed`] passes) monomorphization removes it entirely, so
/// the refined placement and [`FdStats`] are bit-identical with and
/// without tracing by construction.
///
/// # Errors
///
/// As [`force_directed`].
pub fn force_directed_traced<S: TraceSink + ?Sized>(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
    sink: &mut S,
) -> Result<FdStats, CoreError> {
    force_directed_impl(pcn, placement, config, None, None, &mut FdRunOpts::default(), sink)
}

/// [`force_directed_masked`] with trace instrumentation; see
/// [`force_directed_traced`].
///
/// # Errors
///
/// As [`force_directed_masked`].
pub fn force_directed_masked_traced<S: TraceSink + ?Sized>(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
    faults: &FaultMap,
    sink: &mut S,
) -> Result<FdStats, CoreError> {
    force_directed_impl(pcn, placement, config, Some(faults), None, &mut FdRunOpts::default(), sink)
}

/// Fault-aware [`force_directed`]: swaps into or out of dead cores are
/// never considered (their pairs carry zero tension), so the refinement
/// explores only the healthy subgraph while keeping the monotone
/// energy-descent guarantee — dead cores start empty and stay empty.
///
/// # Errors
///
/// [`HwError::FaultyCore`] (wrapped in [`CoreError::Hw`]) if the input
/// placement already occupies a dead core; otherwise as
/// [`force_directed`].
pub fn force_directed_masked(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
    faults: &FaultMap,
) -> Result<FdStats, CoreError> {
    force_directed_impl(
        pcn,
        placement,
        config,
        Some(faults),
        None,
        &mut FdRunOpts::default(),
        &mut NoopSink,
    )
}

/// Builds a checkpoint and hands it to the caller's writer (a no-op
/// without one), emitting a `checkpoint` trace event on success.
fn flush_checkpoint<S: TraceSink + ?Sized>(
    engine: &Engine<'_>,
    on_checkpoint: &mut Option<&mut CheckpointWriter<'_>>,
    sweeps: u64,
    swaps: u64,
    initial_energy: f64,
    energy: f64,
    sink: &mut S,
) -> Result<(), CoreError> {
    let Some(cb) = on_checkpoint.as_mut() else { return Ok(()) };
    let cp = engine.checkpoint(sweeps, swaps, initial_energy, energy);
    cb(&cp).map_err(|message| CoreError::CheckpointFailed { message })?;
    if sink.enabled() {
        sink.record(&TraceEvent::Checkpoint(CheckpointEvent { sweep: sweeps, swaps, energy }));
    }
    Ok(())
}

/// Turns a worker panic into [`CoreError::WorkerPanicked`], first
/// flushing a best-effort checkpoint of the engine's last consistent
/// state. The energy recompute runs serially on purpose — the recovery
/// path must not re-enter the parallel helpers that just failed.
fn worker_panicked<S: TraceSink + ?Sized>(
    engine: &Engine<'_>,
    on_checkpoint: &mut Option<&mut CheckpointWriter<'_>>,
    sweeps: u64,
    swaps: u64,
    initial_energy: f64,
    panic: par::WorkerPanic,
    sink: &mut S,
) -> CoreError {
    let energy = engine.system_energy_serial();
    let _ = flush_checkpoint(engine, on_checkpoint, sweeps, swaps, initial_energy, energy, sink);
    CoreError::WorkerPanicked { message: panic.message().to_owned() }
}

/// Fills the score table from scratch: every scannable key gets its
/// current tension (the whole table, or — region-restricted — only the
/// precomputed key list, everything else staying frozen at 0.0).
fn init_scores(
    engine: &Engine<'_>,
    threads: usize,
    tuner: &mut par::Tuner,
    score: &mut [f64],
    scan_keys: &Option<Vec<u64>>,
) -> Result<(), par::WorkerPanic> {
    match scan_keys {
        None => par::try_par_update_tuned(threads, tuner, score, |key, s| {
            *s = engine.scored_tension(key as u64);
        }),
        Some(keys) => {
            let vals = par::try_par_flat_map_tuned(threads, tuner, keys.len(), |i, out| {
                out.push(engine.scored_tension(keys[i]));
            })?;
            for (&key, t) in keys.iter().zip(vals) {
                score[key as usize] = t;
            }
            Ok(())
        }
    }
}

/// Refreshes the score table after a sweep's swaps: keys with a stamped
/// endpoint position are re-scored in parallel, every other slot keeps
/// its cached tension. The swap loop stamped exactly the positions whose
/// occupancy or forces changed, so unstamped cached scores are still
/// exact — and because staleness is a *position* property, pairs around
/// a vacated core are caught even when no cluster sits there anymore.
fn rescore(
    engine: &Engine<'_>,
    threads: usize,
    tuner: &mut par::Tuner,
    score: &mut [f64],
    scan_keys: &Option<Vec<u64>>,
    pos_stamp: &[u32],
    epoch: u32,
) -> Result<(), par::WorkerPanic> {
    match scan_keys {
        None => par::try_par_update_tuned(threads, tuner, score, |key, s| {
            if engine.key_stale(key as u64, pos_stamp, epoch) {
                *s = engine.scored_tension(key as u64);
            }
        }),
        Some(keys) => {
            let upd = par::try_par_flat_map_tuned(threads, tuner, keys.len(), |i, out| {
                let key = keys[i];
                if engine.key_stale(key, pos_stamp, epoch) {
                    out.push((key, engine.scored_tension(key)));
                }
            })?;
            for (key, t) in upd {
                score[key as usize] = t;
            }
            Ok(())
        }
    }
}

/// Collects the positive entries of the score table into a queue in
/// ascending key order — a deterministic, thread-count-independent
/// layout, whatever the sweep history was.
fn collect_queue(
    threads: usize,
    tuner: &mut par::Tuner,
    score: &[f64],
    scan_keys: &Option<Vec<u64>>,
) -> Result<Vec<(f64, u64)>, par::WorkerPanic> {
    match scan_keys {
        None => par::try_par_flat_map_tuned(threads, tuner, score.len(), |key, out| {
            let s = score[key];
            if s > TENSION_EPS {
                out.push((s, key as u64));
            }
        }),
        Some(keys) => par::try_par_flat_map_tuned(threads, tuner, keys.len(), |i, out| {
            let key = keys[i];
            let s = score[key as usize];
            if s > TENSION_EPS {
                out.push((s, key));
            }
        }),
    }
}

pub(crate) fn force_directed_impl<S: TraceSink + ?Sized>(
    pcn: &Pcn,
    placement: &mut Placement,
    config: &FdConfig,
    faults: Option<&FaultMap>,
    mapper_board: Option<&Board>,
    opts: &mut FdRunOpts<'_>,
    sink: &mut S,
) -> Result<FdStats, CoreError> {
    if !(config.lambda > 0.0 && config.lambda <= 1.0) {
        return Err(CoreError::InvalidLambda { lambda: config.lambda });
    }
    if opts.checkpoint_every == Some(0) {
        return Err(CoreError::InvalidRunOpts {
            message: "checkpoint_every must be positive".to_owned(),
        });
    }
    config.objective.validate()?;
    if config.reweight_every == Some(0) {
        return Err(CoreError::InvalidRunOpts {
            message: "reweight_every must be positive".to_owned(),
        });
    }
    if config.reweight_every.is_some() {
        if config.objective.is_energy() {
            return Err(CoreError::InvalidRunOpts {
                message: "sim-in-the-loop reweighting requires a congestion or composite \
                          objective"
                    .to_owned(),
            });
        }
        // The heat-derived weight field is not part of FdCheckpoint, so a
        // resumed run could not reproduce the interrupted one.
        if opts.resume.is_some() || opts.on_checkpoint.is_some() {
            return Err(CoreError::InvalidRunOpts {
                message: "sim-in-the-loop reweighting is incompatible with checkpoint/resume"
                    .to_owned(),
            });
        }
    }
    let FdRunOpts { budget, resume, checkpoint_every, on_checkpoint, region, board, reweighter } =
        opts;
    let board = mapper_board.or(*board);
    let threads = par::resolve_threads(config.threads);
    let mut engine = Engine::new(
        pcn,
        placement,
        config.potential,
        config.tension_mode,
        config.objective,
        faults,
        board,
        threads,
    )?;
    engine.set_region(region.as_deref())?;
    let start = Instant::now();

    // A resume seeds the counters and restores the incrementally built
    // force table verbatim (see [`FdCheckpoint`]); a fresh run computes
    // the initial energy from scratch.
    let mut iterations = 0u64;
    let mut swaps = 0u64;
    let initial_energy = match resume.as_ref() {
        Some(r) => {
            engine.restore_forces(&r.forces)?;
            iterations = r.sweeps;
            swaps = r.swaps;
            r.initial_energy
        }
        None => match engine.try_system_energy() {
            Ok(e) => e,
            Err(p) => {
                // No progress yet: the flushed snapshot *is* the input.
                let e = engine.system_energy_serial();
                let _ = flush_checkpoint(&engine, on_checkpoint, 0, 0, e, e, sink);
                return Err(CoreError::WorkerPanicked { message: p.message().to_owned() });
            }
        },
    };
    // Naive tension can oscillate (it may accept energy-increasing
    // swaps), so cap its iterations unless the caller already did. A
    // reweighting run is capped for the same reason: each reweight
    // changes the potential landscape, so the monotone-descent finiteness
    // argument only holds between reweights.
    let max_iterations = match (config.tension_mode, config.max_iterations) {
        (TensionMode::PaperNaive, None) => Some(1_000),
        (_, None) if config.reweight_every.is_some() => Some(1_000),
        (_, cap) => cap,
    };
    let par_before = sink.enabled().then(par::counters);
    if sink.enabled() {
        sink.record(&TraceEvent::FdConfig(FdConfigEvent {
            potential: format!("{:?}", config.potential),
            tension: format!("{:?}", config.tension_mode),
            objective: config.objective.label().to_owned(),
            lambda: config.lambda,
            max_iterations,
            time_budget_ms: config
                .time_budget
                .map(|b| u64::try_from(b.as_millis()).unwrap_or(u64::MAX)),
            threads,
            masked: faults.is_some(),
        }));
        if let Some(r) = resume.as_ref() {
            sink.record(&TraceEvent::Resume(ResumeEvent {
                sweep: r.sweeps,
                swaps: r.swaps,
                initial_energy: r.initial_energy,
            }));
        }
    }

    // Pair tensions live in a dense by-key *score table* (two keys —
    // DOWN and RIGHT — per mesh position; invalid and frozen pairs stay
    // at 0.0), refreshed each sweep by parallel stamped-position scans:
    // stale slots are re-scored, everything else copies its cached
    // tension forward. The positive-tension queue is then collected from
    // the table in ascending key order, so the queue layout — and
    // therefore the whole run — is independent of the thread count. The
    // queue is deliberately *not* kept sorted: each sweep selects its
    // top-λ prefix with select_top — a sampled-threshold streaming pass
    // whose result is exactly the prefix a full sort would yield
    // (cmp_entries is a strict total order). On resume the full initial
    // scan reproduces the uninterrupted run's queue (tension is a pure
    // function of occupancy and the restored forces).
    //
    // Region-restricted runs (incremental fault repair, multilevel
    // halos) precompute the key list with both endpoints inside the
    // region once and scan only that list each sweep, so a small repair
    // on a huge mesh never pays mesh-sized scans.
    let mesh_len = engine.mesh.len();
    let nkeys = 2 * mesh_len;
    let scan_keys: Option<Vec<u64>> = engine.region_keys();
    let mut score = vec![0.0f64; nkeys];
    // One granularity tuner per parallel phase family: tension scoring
    // (expensive per item) and queue collection (a filtered copy, cheap
    // per item) have very different items/µs rates, so each learns its
    // own serial/parallel cutoff.
    let mut tune_score = par::Tuner::new();
    let mut tune_collect = par::Tuner::new();

    init_scores(&engine, threads, &mut tune_score, &mut score, &scan_keys).map_err(|p| {
        worker_panicked(&engine, on_checkpoint, iterations, swaps, initial_energy, p, sink)
    })?;
    let mut queue: Vec<(f64, u64)> =
        collect_queue(threads, &mut tune_collect, &score, &scan_keys).map_err(|p| {
            worker_panicked(&engine, on_checkpoint, iterations, swaps, initial_energy, p, sink)
        })?;

    // Per-sweep scratch, allocated once and reused. Epoch stamps replace
    // clear-and-refill passes: a position is "touched this sweep" iff
    // its stamp equals the current epoch.
    let mut pos_stamp = vec![0u32; mesh_len];
    let mut epoch = 0u32;

    // Stop conditions are checked once per sweep boundary: sweeps are the
    // engine's unit of consistency (monotone descent holds at every
    // boundary), so stopping here always leaves a valid best-so-far
    // placement. Caps compare against the *total* sweep count, so they
    // mean the same thing for fresh and resumed runs; both clocks measure
    // this invocation only.
    let mut stop = StopReason::Converged;
    while !queue.is_empty() {
        if let Some(cap) = max_iterations {
            if iterations >= cap {
                stop = StopReason::SweepCapReached;
                break;
            }
        }
        if let Some(cap) = budget.max_sweeps {
            if iterations >= cap {
                stop = StopReason::SweepCapReached;
                break;
            }
        }
        if budget.cancel.as_ref().is_some_and(|c| c.load(Relaxed)) {
            stop = StopReason::Cancelled;
            break;
        }
        if let Some(limit) = config.time_budget {
            if start.elapsed() >= limit {
                stop = StopReason::DeadlineExpired;
                break;
            }
        }
        if let Some(limit) = budget.deadline {
            if start.elapsed() >= limit {
                stop = StopReason::DeadlineExpired;
                break;
            }
        }
        iterations += 1;
        let sweep_t0 = sink.enabled().then(Instant::now);
        let queue_len = queue.len();
        let swaps_before = swaps;
        if epoch == u32::MAX {
            // One epoch per sweep, so this fires only after 2^32 - 1
            // sweeps — but reset anyway so a stale stamp can never alias
            // the current epoch across the wrap.
            pos_stamp.fill(0);
            epoch = 0;
        }
        epoch += 1;

        let take = ((config.lambda * queue.len() as f64).ceil() as usize).clamp(1, queue.len());
        select_top(&mut queue, take);
        let t_select = sink.enabled().then(Instant::now);

        for &(cached, key) in queue.iter().take(take) {
            // Check before the swap: earlier swaps this iteration may have
            // flipped this pair's tension (§4.5 design choice 1). Swaps
            // stamp every position whose force or occupancy they change,
            // so an untouched pair's recheck would return exactly the
            // cached (positive) score — skip the recompute.
            let (p, d) = engine.decode(key);
            let clean = pos_stamp[p] != epoch
                && engine.step(p, d).is_some_and(|q| pos_stamp[q] != epoch);
            let t = if clean { cached } else { engine.tension(key) };
            if t <= TENSION_EPS {
                continue;
            }
            engine.swap(key, epoch, &mut pos_stamp);
            swaps += 1;
        }
        let t_swap = sink.enabled().then(Instant::now);

        // Refresh the score table and re-collect the queue, both in
        // parallel: a cached tension is stale iff an endpoint position
        // was stamped by a swap this sweep (its force or occupancy
        // changed — including a position merely *vacated* by a move,
        // whose surrounding pairs the old affected-cluster walk missed).
        // A panic here (or in any probe below) is caught after the
        // sweep's swaps are fully committed, so the engine is at a
        // consistent boundary and the flushed checkpoint is resumable.
        rescore(&engine, threads, &mut tune_score, &mut score, &scan_keys, &pos_stamp, epoch)
            .map_err(|p| {
                worker_panicked(&engine, on_checkpoint, iterations, swaps, initial_energy, p, sink)
            })?;
        queue = collect_queue(threads, &mut tune_collect, &score, &scan_keys).map_err(|p| {
            worker_panicked(&engine, on_checkpoint, iterations, swaps, initial_energy, p, sink)
        })?;
        let t_rescore = sink.enabled().then(Instant::now);

        if sink.enabled() {
            // Convergence telemetry (dirty = re-scored pairs, carried =
            // queue entries kept from cache) is recounted here by a
            // serial pass over the scan domain, and the energy recompute
            // is a full parallel reduction — both run only under an
            // enabled sink, so the untraced hot loop pays nothing.
            let mut dirty = 0u64;
            let mut fresh = 0u64;
            let mut count = |key: u64| {
                if engine.key_stale(key, &pos_stamp, epoch) {
                    dirty += 1;
                    if score[key as usize] > TENSION_EPS {
                        fresh += 1;
                    }
                }
            };
            match &scan_keys {
                None => (0..nkeys as u64).for_each(&mut count),
                Some(keys) => keys.iter().copied().for_each(&mut count),
            }
            let energy = engine.try_system_energy().map_err(|p| {
                worker_panicked(&engine, on_checkpoint, iterations, swaps, initial_energy, p, sink)
            })?;
            let ns = |a: Instant, b: Instant| u64::try_from((b - a).as_nanos()).unwrap_or(u64::MAX);
            let (select_ns, swap_ns, rescore_ns) = match (sweep_t0, t_select, t_swap, t_rescore) {
                (Some(a), Some(b), Some(c), Some(d)) => (ns(a, b), ns(b, c), ns(c, d)),
                _ => (0, 0, 0),
            };
            sink.record(&TraceEvent::FdSweep(FdSweepEvent {
                sweep: iterations,
                queue: queue_len as u64,
                cutoff: take as u64,
                applied: swaps - swaps_before,
                dirty,
                carried: (queue.len() as u64).saturating_sub(fresh),
                energy,
                wall_ns: sweep_t0
                    .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
                    .unwrap_or(0),
                select_ns,
                swap_ns,
                rescore_ns,
            }));
            // Per-term composite breakdown (satellite of the objective
            // subsystem): absent on the pure-energy path, where the
            // sweep event already tells the whole story.
            if let Some((cong, lat)) = engine.objective_terms() {
                sink.record(&TraceEvent::Objective(ObjectiveEvent {
                    sweep: iterations,
                    energy,
                    congestion: cong,
                    latency: lat,
                    composite: engine.energy_weight() * energy + cong + lat,
                }));
            }
        }

        if checkpoint_every.is_some_and(|n| iterations % n == 0) && on_checkpoint.is_some() {
            // Checkpoint sweeps pay one extra energy reduction; that is
            // the whole cost of the cadence.
            let energy = engine.try_system_energy().map_err(|p| {
                worker_panicked(&engine, on_checkpoint, iterations, swaps, initial_energy, p, sink)
            })?;
            flush_checkpoint(
                &engine,
                on_checkpoint,
                iterations,
                swaps,
                initial_energy,
                energy,
                sink,
            )?;
        }

        // Sim-in-the-loop boundary: every `reweight_every` sweeps, ask
        // the installed hook (or, hookless, the engine's own congestion
        // map) for router heat and fold it into the objective's cost
        // field. Runs serially between sweeps, so determinism only needs
        // the hook itself to be deterministic — thread count never
        // enters. Skipped once the queue drains: convergence is declared
        // against the field that produced the final sweep.
        if config.reweight_every.is_some_and(|n| iterations % n == 0) && !queue.is_empty() {
            let outcome = match reweighter.as_deref_mut() {
                Some(hook) => {
                    let out = hook.reweight(iterations, &engine.cluster_coords(), engine.mesh);
                    if out.heat.len() != engine.rows * engine.cols {
                        return Err(CoreError::InvalidRunOpts {
                            message: format!(
                                "reweighter returned {} router heats for a {}x{} mesh",
                                out.heat.len(),
                                engine.rows,
                                engine.cols
                            ),
                        });
                    }
                    out
                }
                None => ReweightOutcome { heat: engine.self_heat(), source: "self".to_owned() },
            };
            if let Some((max_heat, arg)) = engine.apply_reweight(&outcome.heat) {
                // The cost field changed under every cached tension —
                // rebuild the score table and queue from scratch with the
                // same deterministic parallel passes a cold start uses.
                init_scores(&engine, threads, &mut tune_score, &mut score, &scan_keys).map_err(
                    |p| {
                        worker_panicked(
                            &engine,
                            on_checkpoint,
                            iterations,
                            swaps,
                            initial_energy,
                            p,
                            sink,
                        )
                    },
                )?;
                queue = collect_queue(threads, &mut tune_collect, &score, &scan_keys).map_err(
                    |p| {
                        worker_panicked(
                            &engine,
                            on_checkpoint,
                            iterations,
                            swaps,
                            initial_energy,
                            p,
                            sink,
                        )
                    },
                )?;
                if sink.enabled() {
                    sink.record(&TraceEvent::Reweight(ReweightEvent {
                        sweep: iterations,
                        source: outcome.source,
                        max_heat,
                        hottest_row: (arg / engine.cols) as u64,
                        hottest_col: (arg % engine.cols) as u64,
                    }));
                }
            }
        }
    }

    let final_energy = engine.try_system_energy().map_err(|p| {
        worker_panicked(&engine, on_checkpoint, iterations, swaps, initial_energy, p, sink)
    })?;
    if stop != StopReason::Converged {
        // Every budgeted stop leaves a resume point behind (when a writer
        // is installed), so an expired run can always be continued.
        flush_checkpoint(&engine, on_checkpoint, iterations, swaps, initial_energy, final_energy, sink)?;
    }
    engine.writeback()?;
    let stats = FdStats {
        iterations,
        swaps,
        initial_energy,
        final_energy,
        converged: stop == StopReason::Converged,
        stop,
    };
    if sink.enabled() {
        sink.record(&TraceEvent::FdDone(FdDoneEvent {
            iterations: stats.iterations,
            swaps: stats.swaps,
            initial_energy: stats.initial_energy,
            final_energy: stats.final_energy,
            converged: stats.converged,
            stop: stats.stop.as_str().to_owned(),
        }));
        if let Some(before) = par_before {
            let d = par::counters().since(before);
            sink.record(&TraceEvent::Par(ParEvent {
                scope: "fd".to_owned(),
                calls: d.calls,
                items: d.items,
                parallel_calls: d.parallel_calls,
                workers_spawned: d.workers_spawned,
                busy_ns: d.busy_ns,
            }));
        }
    }
    Ok(stats)
}

/// Per-cluster hot record: everything a neighbour patch needs beyond the
/// SoA coordinate arrays, packed into 40 bytes so one swap's
/// per-neighbour force update is one cache-line touch. Coordinates
/// deliberately live *outside* this record (in the dense `cx`/`cy`
/// arrays): the patch loop's coordinate reads then hit two small
/// cache-resident float arrays while only the force writes take the
/// random cluster-indexed cache miss.
#[derive(Clone, Copy)]
struct Hot {
    /// 64-bit Bloom signature of the cluster's graph neighbours
    /// (bit `k % 64` per neighbour `k`). A zero test proves two
    /// clusters unconnected without walking the adjacency row — the
    /// common case for mesh-adjacent pairs — while a set bit falls
    /// back to the exact row scan.
    sig: u64,
    /// `force[d]`: energy reduction from moving this cluster one step in
    /// direction `d` (eq. 27), maintained incrementally across swaps.
    force: [f64; 4],
}

/// Bloom-signature bit of cluster `k` (see [`Hot::sig`]).
#[inline]
fn sig_bit(k: u32) -> u64 {
    1u64 << (k % 64)
}

/// The mutable state of one FD run: flat occupancy tables plus the
/// per-cluster force records of eq. 27, maintained incrementally. The
/// caller's placement is read at construction and written back once at
/// the end of the run.
struct Engine<'a> {
    pcn: &'a Pcn,
    placement: &'a mut Placement,
    mesh: Mesh,
    rows: usize,
    cols: usize,
    potential: Potential,
    tension_mode: TensionMode,
    unit_step: f64,
    threads: usize,
    /// SoA mesh coordinate tables, split from the flat `(x, y)` table:
    /// `mesh_x[p]`/`mesh_y[p]` are the row/column of mesh index `p`.
    /// Static for the whole run; bounds checks (`step`, patch validity)
    /// read one `u16` array instead of a two-field struct.
    mesh_x: Vec<u16>,
    mesh_y: Vec<u16>,
    /// SoA per-cluster coordinates in the distance kernel's scalar type
    /// ([`CoordF`]), mirroring `pos` — always exact small integers. The
    /// energy/force kernels stream these two dense arrays, which is what
    /// lets them auto-vectorize and keeps their gathers cache-resident.
    cx: Vec<CoordF>,
    cy: Vec<CoordF>,
    /// Merged adjacency CSR: row `c` is `out_edges(c)` followed by
    /// `in_edges(c)`, so force work walks one contiguous row per
    /// cluster. f32→f64 weight conversion is exact, so precomputing
    /// nothing here changes any sum.
    adj_off: Vec<u32>,
    adj: Vec<(u32, f32)>,
    /// Per-cluster packed hot state (neighbour signature + force).
    hot: Vec<Hot>,
    /// `pos[c]`: mesh index of cluster `c`, maintained across swaps so
    /// lookups never have to unwrap an `Option` on the hot path.
    pos: Vec<u32>,
    /// `occ[p]`: cluster at position `p`, or [`EMPTY`] — mirrors the
    /// placement's grid without the `Option` indirection.
    occ: Vec<u32>,
    /// `dead[p]`: position `p` is a dead core (empty when fault-free).
    dead: Vec<bool>,
    /// `active[p]`: position `p` may take part in swaps (empty when the
    /// whole mesh is active). Pairs with an inactive endpoint carry zero
    /// tension, exactly like dead-core pairs.
    active: Vec<bool>,
    /// `cap_n[p]`/`cap_s[p]`: neuron/synapse capacity of position `p`
    /// when a board is enforced (both empty on boardless runs). A pair
    /// whose swap would overload either endpoint carries zero tension.
    cap_n: Vec<u32>,
    cap_s: Vec<u64>,
    /// `need_n[c]`/`need_s[c]`: cluster `c`'s neuron/synapse demand,
    /// cached flat for the capacity filter (empty on boardless runs).
    need_n: Vec<u32>,
    need_s: Vec<u64>,
    /// Non-energy objective state (λ weights, delta-maintained congestion
    /// map, heat field). `None` for [`Objective::Energy`], keeping the
    /// historical hot path untouched down to the last FP operation.
    obj: Option<ObjectiveState>,
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        pcn: &'a Pcn,
        placement: &'a mut Placement,
        potential: Potential,
        tension_mode: TensionMode,
        objective: Objective,
        faults: Option<&FaultMap>,
        board: Option<&Board>,
        threads: usize,
    ) -> Result<Self, CoreError> {
        let mesh = placement.mesh();
        if placement.len() != pcn.num_clusters() {
            return Err(CoreError::ClusterCountMismatch {
                pcn: pcn.num_clusters(),
                placement: placement.len(),
            });
        }
        if let Some(b) = board {
            if b.mesh() != mesh {
                return Err(CoreError::InvalidRunOpts {
                    message: format!(
                        "board covers {} but placement targets {mesh}",
                        b.mesh()
                    ),
                });
            }
        }
        let dead: Vec<bool> = match faults {
            Some(fm) => {
                if fm.mesh() != mesh {
                    return Err(CoreError::Hw(HwError::InvalidFaultSpec {
                        message: format!(
                            "fault map covers {} but placement targets {mesh}",
                            fm.mesh()
                        ),
                    }));
                }
                mesh.iter().map(|c| fm.is_dead(c)).collect()
            }
            None => Vec::new(),
        };
        let (cap_n, cap_s) = match board {
            Some(b) => b.capacity_tables(),
            None => (Vec::new(), Vec::new()),
        };
        let (need_n, need_s): (Vec<u32>, Vec<u64>) = match board {
            Some(_) => (
                (0..placement.len()).map(|c| pcn.neurons_in(c)).collect(),
                (0..placement.len()).map(|c| pcn.synapses_in(c)).collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        let n = placement.len() as usize;
        let mut pos = vec![0u32; n];
        let mut occ = vec![EMPTY; mesh.len()];
        for c in 0..placement.len() {
            let Some(coord) = placement.coord_of(c) else {
                return Err(CoreError::IncompletePlacement {
                    placed: placement.placed_count(),
                    total: placement.len(),
                });
            };
            let p = mesh.index_of(coord);
            if !dead.is_empty() && dead[p] {
                return Err(CoreError::Hw(HwError::FaultyCore { coord }));
            }
            // Descent preserves feasibility, so it must hold at entry.
            if !cap_n.is_empty()
                && (need_n[c as usize] > cap_n[p] || need_s[c as usize] > cap_s[p])
            {
                return Err(CoreError::InvalidRunOpts {
                    message: format!(
                        "cluster {c} at {coord} needs {} neurons and {} synapses \
                         but the core admits only {} and {}",
                        need_n[c as usize], need_s[c as usize], cap_n[p], cap_s[p]
                    ),
                });
            }
            pos[c as usize] = p as u32;
            occ[p] = c;
        }
        let mut adj_off = Vec::with_capacity(n + 1);
        adj_off.push(0u32);
        let mut adj: Vec<(u32, f32)> =
            Vec::with_capacity((2 * pcn.num_connections()) as usize);
        for c in 0..n as u32 {
            adj.extend(pcn.out_edges(c));
            adj.extend(pcn.in_edges(c));
            adj_off.push(u32::try_from(adj.len()).expect("adjacency exceeds u32 offsets"));
        }
        let coords = mesh.coord_table();
        let mesh_x: Vec<u16> = coords.iter().map(|c| c.x).collect();
        let mesh_y: Vec<u16> = coords.iter().map(|c| c.y).collect();
        let mut cx = vec![0 as CoordF; n];
        let mut cy = vec![0 as CoordF; n];
        for c in 0..n {
            let p = pos[c] as usize;
            cx[c] = mesh_x[p] as CoordF;
            cy[c] = mesh_y[p] as CoordF;
        }
        let obj = if objective.is_energy() {
            None
        } else {
            let cluster_xy: Vec<(u16, u16)> =
                pos.iter().map(|&p| (mesh_x[p as usize], mesh_y[p as usize])).collect();
            Some(ObjectiveState::new(
                objective,
                pcn,
                &cluster_xy,
                mesh.rows(),
                mesh.cols(),
                board.map(|b| (b.chip_rows(), b.chip_cols())),
            ))
        };
        let mut engine = Self {
            pcn,
            placement,
            mesh,
            rows: mesh.rows() as usize,
            cols: mesh.cols() as usize,
            potential,
            tension_mode,
            unit_step: potential.unit_step(),
            threads,
            mesh_x,
            mesh_y,
            cx,
            cy,
            adj_off,
            adj,
            hot: Vec::new(),
            pos,
            occ,
            dead,
            active: Vec::new(),
            cap_n,
            cap_s,
            need_n,
            need_s,
            obj,
        };
        // A cluster's force depends only on occupancy, never on other
        // forces, so the initial build is an independent per-index fill.
        // A worker panic here happens before any progress exists, so
        // there is nothing to checkpoint — the typed error is enough.
        let mut hot = vec![Hot { sig: 0, force: [0.0; 4] }; n];
        {
            let eng = &engine;
            with_kernel!(potential, k => {
                par::try_par_init(threads, &mut hot, |c| eng.init_hot(k, c as u32))
            })
            .map_err(|p| CoreError::WorkerPanicked { message: p.message().to_owned() })?;
        }
        engine.hot = hot;
        Ok(engine)
    }

    /// Installs (or clears) the swap-region restriction.
    fn set_region(&mut self, region: Option<&[bool]>) -> Result<(), CoreError> {
        match region {
            None => {
                self.active = Vec::new();
                Ok(())
            }
            Some(r) => {
                if r.len() != self.mesh.len() {
                    return Err(CoreError::InvalidRunOpts {
                        message: format!(
                            "region mask covers {} cores but the mesh has {}",
                            r.len(),
                            self.mesh.len()
                        ),
                    });
                }
                self.active = r.to_vec();
                Ok(())
            }
        }
    }

    /// Overwrites every cluster's force record with a checkpointed table
    /// (see [`FdCheckpoint::forces`] for why verbatim restore matters).
    fn restore_forces(&mut self, forces: &[[f64; 4]]) -> Result<(), CoreError> {
        if forces.len() != self.hot.len() {
            return Err(CoreError::InvalidRunOpts {
                message: format!(
                    "resume force table covers {} clusters but the PCN has {}",
                    forces.len(),
                    self.hot.len()
                ),
            });
        }
        for (h, f) in self.hot.iter_mut().zip(forces) {
            h.force = *f;
        }
        Ok(())
    }

    /// Snapshots the engine at a sweep boundary.
    fn checkpoint(&self, sweeps: u64, swaps: u64, initial_energy: f64, energy: f64) -> FdCheckpoint {
        FdCheckpoint {
            mesh: self.mesh,
            coords: self.cluster_coords(),
            forces: self.hot.iter().map(|h| h.force).collect(),
            sweeps,
            swaps,
            initial_energy,
            energy,
        }
    }

    /// Current coordinate of every cluster, rebuilt from the position
    /// table and the (exact integer) mesh coordinate arrays.
    fn cluster_coords(&self) -> Vec<Coord> {
        self.pos
            .iter()
            .map(|&p| Coord::new(self.mesh_x[p as usize], self.mesh_y[p as usize]))
            .collect()
    }

    /// Merged adjacency row of cluster `c`: out-edges then in-edges.
    #[inline]
    fn row(&self, c: u32) -> &[(u32, f32)] {
        let lo = self.adj_off[c as usize] as usize;
        let hi = self.adj_off[c as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    #[inline]
    fn is_dead_pos(&self, p: usize) -> bool {
        !self.dead.is_empty() && self.dead[p]
    }

    /// Neighbour position of `p` in direction `d` (`UP, DOWN, LEFT,
    /// RIGHT`), if inside the mesh.
    #[inline]
    fn step(&self, p: usize, d: usize) -> Option<usize> {
        match d {
            0 => (self.mesh_x[p] > 0).then(|| p - self.cols),
            1 => ((self.mesh_x[p] as usize) + 1 < self.rows).then(|| p + self.cols),
            2 => (self.mesh_y[p] > 0).then(|| p - 1),
            _ => ((self.mesh_y[p] as usize) + 1 < self.cols).then(|| p + 1),
        }
    }

    /// Canonical key of the adjacent pair `(p, step(p, d))`, encoding the
    /// smaller position and its DOWN/RIGHT direction. `None` when the
    /// step leaves the mesh. Production scans inline this encoding
    /// directly; tests keep the named form for convergence probes.
    #[cfg(test)]
    fn pair_key(&self, p: usize, d: usize) -> Option<u64> {
        debug_assert!(d == DOWN || d == RIGHT);
        self.step(p, d)?;
        Some((p as u64) << 1 | u64::from(d == RIGHT))
    }

    #[inline]
    fn decode(&self, key: u64) -> (usize, usize) {
        let p = (key >> 1) as usize;
        let d = if key & 1 == 1 { RIGHT } else { DOWN };
        (p, d)
    }

    /// The key list a region-restricted run scans each sweep: every
    /// valid pair with both endpoints inside the active region, in
    /// ascending key order. `None` when the whole mesh is active (the
    /// scans then run over the full score table directly).
    fn region_keys(&self) -> Option<Vec<u64>> {
        if self.active.is_empty() {
            return None;
        }
        let mut keys = Vec::new();
        for p in 0..self.mesh.len() {
            if !self.active[p] {
                continue;
            }
            for d in [DOWN, RIGHT] {
                if let Some(q) = self.step(p, d) {
                    if self.active[q] {
                        keys.push((p as u64) << 1 | u64::from(d == RIGHT));
                    }
                }
            }
        }
        Some(keys)
    }

    /// Whether `key`'s cached score may have changed this sweep: true
    /// iff an endpoint position carries the current epoch stamp (its
    /// occupancy or its occupant's force changed under a swap).
    #[inline]
    fn key_stale(&self, key: u64, pos_stamp: &[u32], epoch: u32) -> bool {
        let (p, d) = self.decode(key);
        if pos_stamp[p] == epoch {
            return true;
        }
        match self.step(p, d) {
            Some(q) => pos_stamp[q] == epoch,
            None => false,
        }
    }

    /// [`Engine::tension`] as used by score production, with the queue
    /// ordering's precondition asserted: [`cmp_entries`] totals over NaN,
    /// but a NaN score would still poison top-λ selection semantically —
    /// catch it at the source in debug builds (weights are validated at
    /// PCN build time, so this documents and enforces an invariant
    /// rather than handling an expected case).
    #[inline]
    fn scored_tension(&self, key: u64) -> f64 {
        let t = self.tension(key);
        debug_assert!(!t.is_nan(), "NaN tension produced for pair key {key}");
        t
    }

    /// One [`ENERGY_BLOCK`]-sized block of the system-energy reduction.
    fn energy_block<K: PotKernel>(&self, k: K, range: std::ops::Range<usize>) -> f64 {
        let mut es = 0.0;
        for c in range {
            let hx = self.cx[c];
            let hy = self.cy[c];
            for (t, w) in self.pcn.out_edges(c as u32) {
                es += w as f64 * k.u(hx - self.cx[t as usize], hy - self.cy[t as usize]);
            }
        }
        es
    }

    /// System total potential energy (eq. 23) with panic isolation,
    /// reduced over fixed [`ENERGY_BLOCK`]-cluster blocks so the sum is
    /// identical for any thread count.
    fn try_system_energy(&self) -> Result<f64, par::WorkerPanic> {
        let n = self.pcn.num_clusters() as usize;
        with_kernel!(self.potential, k => {
            par::try_par_block_sum(self.threads, n, ENERGY_BLOCK, |range| {
                self.energy_block(k, range)
            })
        })
    }

    /// [`Engine::try_system_energy`] forced onto the serial path
    /// (identical bits — the block boundaries don't change) for recovery
    /// code that must not re-enter the parallel helpers.
    fn system_energy_serial(&self) -> f64 {
        let n = self.pcn.num_clusters() as usize;
        with_kernel!(self.potential, k => {
            par::par_block_sum(1, n, ENERGY_BLOCK, |range| self.energy_block(k, range))
        })
    }

    /// Initial hot record of cluster `c`: its neighbour signature plus
    /// the four directed forces of eq. 27. Pure in everything except
    /// `hot` itself, so initial builds can run one cluster per worker.
    ///
    /// The merged row is walked once with the four directions in the
    /// inner loop (each direction's slot still accumulates its terms in
    /// edge order, so the sums are bit-for-bit those of the
    /// direction-outer form), which touches every neighbour coordinate
    /// and `u(·, here)` once instead of four times. Neighbour
    /// coordinates come straight from the cluster-indexed SoA arrays —
    /// one gather instead of the old position-table double indirection.
    fn init_hot<K: PotKernel>(&self, kern: K, c: u32) -> Hot {
        let p = self.pos[c as usize] as usize;
        let hx = self.cx[c as usize];
        let hy = self.cy[c as usize];
        let mut f = [0.0f64; 4];
        let mut tx = [0 as CoordF; 4];
        let mut ty = [0 as CoordF; 4];
        let mut valid = [false; 4];
        for d in 0..4 {
            if let Some(q) = self.step(p, d) {
                tx[d] = self.mesh_x[q] as CoordF;
                ty[d] = self.mesh_y[q] as CoordF;
                valid[d] = true;
            }
        }
        let mut sig = 0u64;
        for &(k, w) in self.row(c) {
            sig |= sig_bit(k);
            let px = self.cx[k as usize];
            let py = self.cy[k as usize];
            let u_here = kern.u(px - hx, py - hy);
            for d in 0..4 {
                if valid[d] {
                    f[d] += w as f64 * (u_here - kern.u(px - tx[d], py - ty[d]));
                }
            }
        }
        Hot { sig, force: f }
    }

    /// Total traffic on the (up to two) directed connections between two
    /// clusters, summed in row order — out-edge `a → b` first, then
    /// in-edge `b → a` — exactly the order the two `edge_weight`
    /// lookups this replaces added them in.
    #[inline]
    fn mutual_weight(&self, a: u32, b: u32) -> f64 {
        let mut m = 0.0f64;
        for &(k, w) in self.row(a) {
            if k == b {
                m += w as f64;
            }
        }
        m
    }

    /// The tension of an adjacent pair (eq. 30): the exact system-energy
    /// reduction its swap would produce. For a connected pair the naive
    /// sum of the two forces double-counts the mutual edge (whose length
    /// a swap preserves), so that term is corrected out.
    fn tension(&self, key: u64) -> f64 {
        let (p, d) = self.decode(key);
        let Some(q) = self.step(p, d) else { return 0.0 };
        // A pair touching a dead core carries no tension: dead cores stay
        // empty, and forbidding these swaps keeps descent monotone over
        // the healthy subgraph.
        if self.is_dead_pos(p) || self.is_dead_pos(q) {
            return 0.0;
        }
        // Same idea for a repair region: pairs with an endpoint outside
        // the active region are frozen, so the rest of the mesh is
        // untouched by construction.
        if !self.active.is_empty() && (!self.active[p] || !self.active[q]) {
            return 0.0;
        }
        let cu = self.occ[p];
        let cv = self.occ[q];
        // Capacity filter (board runs only): freeze any pair whose swap
        // would land an occupant on a core that cannot admit it. Like the
        // dead/region masks above, this is a pure function of occupancy
        // and static tables, so cached clean-pair tensions stay valid and
        // the run is bit-identical for every thread count.
        if !self.cap_n.is_empty() {
            if cu != EMPTY
                && (self.need_n[cu as usize] > self.cap_n[q]
                    || self.need_s[cu as usize] > self.cap_s[q])
            {
                return 0.0;
            }
            if cv != EMPTY
                && (self.need_n[cv as usize] > self.cap_n[p]
                    || self.need_s[cv as usize] > self.cap_s[p])
            {
                return 0.0;
            }
        }
        let base = if cu == EMPTY {
            if cv == EMPTY {
                return 0.0;
            }
            self.hot[cv as usize].force[opposite(d)]
        } else if cv == EMPTY {
            self.hot[cu as usize].force[d]
        } else {
            let hu = &self.hot[cu as usize];
            let naive = hu.force[d] + self.hot[cv as usize].force[opposite(d)];
            match self.tension_mode {
                TensionMode::Exact => {
                    // The signature test proves most mesh-adjacent pairs
                    // unconnected without a row scan; the correction
                    // expression is kept verbatim either way so the f64
                    // result (down to signed zeros) is unchanged.
                    let mutual = if hu.sig & sig_bit(cv) == 0 {
                        0.0
                    } else {
                        self.mutual_weight(cu, cv)
                    };
                    naive - 2.0 * mutual * self.unit_step
                }
                TensionMode::PaperNaive => naive,
            }
        };
        // Composite objectives add the exact decrease of the λ-weighted
        // congestion / latency-tail terms. Like `base`, this is a pure
        // function of the pair's and its graph neighbours' positions, so
        // the stamp discipline that keeps cached energy tensions valid
        // covers the composite value too. `None` (pure energy) leaves the
        // expression tree untouched — bit-identical to pre-objective runs.
        match &self.obj {
            None => base,
            Some(st) => {
                st.energy_w * base
                    + st.swap_gain(
                        self.pcn,
                        &self.pos,
                        &self.mesh_x,
                        &self.mesh_y,
                        (self.mesh_x[p], self.mesh_y[p]),
                        (self.mesh_x[q], self.mesh_y[q]),
                        cu,
                        cv,
                    )
            }
        }
    }

    /// Swaps the occupants of a pair and maintains the force records:
    /// rebuilds at the two positions fused with O(1)-per-edge patches at
    /// every graph neighbour (Algorithm 3 lines 20–26). Every position
    /// whose force or occupancy changes — the pair's own two included —
    /// is stamped into `pos_stamp`, which is what lets callers trust
    /// cached tensions of unstamped pairs and the rescore scan find
    /// every stale one. The caller's placement is deliberately not
    /// touched — see [`Engine::writeback`].
    fn swap(&mut self, key: u64, epoch: u32, pos_stamp: &mut [u32]) {
        let (p, d) = self.decode(key);
        let Some(q) = self.step(p, d) else { return };
        let (px, py) = (self.mesh_x[p] as CoordF, self.mesh_y[p] as CoordF);
        let (qx, qy) = (self.mesh_x[q] as CoordF, self.mesh_y[q] as CoordF);
        let cu = self.occ[p];
        let cv = self.occ[q];
        self.occ[p] = cv;
        self.occ[q] = cu;
        if cu != EMPTY {
            self.pos[cu as usize] = q as u32;
            self.cx[cu as usize] = qx;
            self.cy[cu as usize] = qy;
        }
        if cv != EMPTY {
            self.pos[cv as usize] = p as u32;
            self.cx[cv as usize] = px;
            self.cy[cv as usize] = py;
        }
        pos_stamp[p] = epoch;
        pos_stamp[q] = epoch;

        // Each moved cluster's edges are walked exactly once: the pass
        // patches its neighbours' forces *and* accumulates the cluster's
        // own rebuilt force at its new position. The cu pass runs first so
        // neighbours shared by both clusters receive their patches in the
        // same order as separate patch-then-rebuild phases would apply
        // them; the rebuilt forces only read coordinates, never forces,
        // so committing each one right after its pass is equivalent to
        // full rebuilds.
        if cu != EMPTY {
            let f = with_kernel!(self.potential, k => {
                self.patch_and_rebuild(k, cu, (px, py), (qx, qy), cv, epoch, pos_stamp)
            });
            self.hot[cu as usize].force = f;
        }
        if cv != EMPTY {
            let f = with_kernel!(self.potential, k => {
                self.patch_and_rebuild(k, cv, (qx, qy), (px, py), cu, epoch, pos_stamp)
            });
            self.hot[cv as usize].force = f;
        }

        // Fold the move into the incremental congestion map (integer
        // deltas — exact, order-invariant). Positions are already
        // updated, which is what `apply_swap` documents; take/put-back
        // sidesteps the simultaneous &mut self.obj / &self.pos borrow.
        if self.obj.is_some() {
            let mut st = self.obj.take().expect("checked is_some");
            st.apply_swap(
                self.pcn,
                &self.pos,
                &self.mesh_x,
                &self.mesh_y,
                (self.mesh_x[p], self.mesh_y[p]),
                (self.mesh_x[q], self.mesh_y[q]),
                cu,
                cv,
            );
            self.obj = Some(st);
        }
    }

    /// After `moved` relocated `from → to`: adjusts the force of each of
    /// its graph neighbours by the per-edge delta (skipping `other`, the
    /// second moved cluster, whose force is rebuilt by its own pass)
    /// and returns `moved`'s rebuilt force at its new position — one
    /// merged-CSR pass touching one hot record per neighbour.
    ///
    /// Both the patches and the returned force accumulate their terms in
    /// edge (row) order with unchanged expression trees, so the results
    /// are bit-for-bit those of separate patch and rebuild passes. All
    /// coordinate arithmetic runs on [`CoordF`] scalars (exact mesh
    /// integers, so in the f64 build every displacement and bounds test
    /// below reproduces the integer forms bit-for-bit), monomorphized
    /// through the potential kernel `kern` — no per-edge enum dispatch.
    #[allow(clippy::too_many_arguments)]
    fn patch_and_rebuild<K: PotKernel>(
        &mut self,
        kern: K,
        moved: u32,
        from: (CoordF, CoordF),
        to: (CoordF, CoordF),
        other: u32,
        epoch: u32,
        pos_stamp: &mut [u32],
    ) -> [f64; 4] {
        let rows = self.rows as CoordF;
        let cols = self.cols as CoordF;
        // Every kernel evaluation below passes the same displacements
        // the coordinate-based forms produce — a mesh neighbour in
        // direction `d` is exactly an `offf[d]` shift — so no
        // per-direction position lookups are needed.
        let offf: [(CoordF, CoordF); 4] = [(-1.0, 0.0), (1.0, 0.0), (0.0, -1.0), (0.0, 1.0)];
        let (tx, ty) = to;
        let (fx, fy) = from;
        let mut tvalid = [false; 4];
        for (d, v) in tvalid.iter_mut().enumerate() {
            let nx = tx + offf[d].0;
            let ny = ty + offf[d].1;
            *v = nx >= 0.0 && ny >= 0.0 && nx < rows && ny < cols;
        }
        let mut f = [0.0f64; 4];
        let lo = self.adj_off[moved as usize] as usize;
        let hi = self.adj_off[moved as usize + 1] as usize;
        for e in lo..hi {
            let (k, w) = self.adj[e];
            let w = w as f64;
            let kx = self.cx[k as usize];
            let ky = self.cy[k as usize];
            // `moved`'s own force term of this edge at the new position
            // (every edge contributes, exactly as a full rebuild would).
            let ndx = kx - tx;
            let ndy = ky - ty;
            let u_here = kern.u(ndx, ndy);
            for d in 0..4 {
                if tvalid[d] {
                    f[d] += w * (u_here - kern.u(ndx - offf[d].0, ndy - offf[d].1));
                }
            }
            if k == moved || k == other {
                continue;
            }
            let (dx, dy) = (tx - kx, ty - ky);
            let (fdx, fdy) = (fx - kx, fy - ky);
            let u_to_pk = kern.u(dx, dy);
            let u_from_pk = kern.u(fdx, fdy);
            let hk = &mut self.hot[k as usize];
            for (d, &(ox, oy)) in offf.iter().enumerate() {
                let nx = kx + ox;
                let ny = ky + oy;
                if nx < 0.0 || ny < 0.0 || nx >= rows || ny >= cols {
                    continue;
                }
                // Force term of edge (k, moved) in direction d changed
                // from the `from` position to the `to` position.
                let delta = w
                    * ((u_to_pk - kern.u(dx - ox, dy - oy))
                        - (u_from_pk - kern.u(fdx - ox, fdy - oy)));
                hk.force[d] += delta;
            }
            pos_stamp[self.pos[k as usize] as usize] = epoch;
        }
        f
    }

    /// λ-weighted `(congestion, latency-tail)` totals of the current
    /// occupancy, or `None` on the pure-energy path. Serial O(edges) —
    /// only called when tracing is enabled.
    fn objective_terms(&self) -> Option<(f64, f64)> {
        self.obj.as_ref().map(|st| st.totals(self.pcn, &self.pos, &self.mesh_x, &self.mesh_y))
    }

    /// The energy term's weight in the composite (1.0 on the pure-energy
    /// path, where the question never arises but the trace still wants
    /// an answer).
    fn energy_weight(&self) -> f64 {
        self.obj.as_ref().map_or(1.0, |st| st.energy_w)
    }

    /// Router heat from the engine's own delta-maintained congestion map
    /// — the reweight source when no external simulator hook is
    /// installed.
    fn self_heat(&self) -> Vec<u64> {
        self.obj.as_ref().map(|st| st.cong.heat()).unwrap_or_default()
    }

    /// Installs a router heat field on the objective (no-op result on
    /// all-zero heat or the pure-energy path). Returns `(max_heat,
    /// argmax router index)` when the cost field actually changed —
    /// every cached tension is stale after that.
    fn apply_reweight(&mut self, heat: &[u64]) -> Option<(u64, usize)> {
        self.obj.as_mut().and_then(|st| st.apply_reweight(heat))
    }

    /// Commits the engine's occupancy back into the caller's placement
    /// in one bulk assignment — the placement is untouched during
    /// sweeps, so this is the only write it sees.
    fn writeback(&mut self) -> Result<(), CoreError> {
        let coords = self.cluster_coords();
        self.placement.set_coords(&coords).map_err(CoreError::Hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hsc_placement, random_placement};
    use snnmap_hw::CostModel;
    use snnmap_metrics::energy;
    use snnmap_model::generators::random_pcn;
    use snnmap_model::PcnBuilder;

    fn small_pcn() -> Pcn {
        random_pcn(64, 4.0, 42).unwrap()
    }

    #[test]
    fn select_top_matches_a_full_sort_exactly() {
        // Deterministic pseudo-random tensions (xorshift), sizes chosen to
        // exercise both the sampled-threshold path (>= 1024 entries) and
        // the small-queue fallback, plus heavy ties to stress the key
        // tie-breaker.
        let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for len in [1usize, 7, 255, 1024, 5000, 60_000] {
            let base: Vec<(f64, u64)> = (0..len)
                .map(|k| (((next() % 97) as f64) / 7.0, k as u64))
                .collect();
            let mut sorted = base.clone();
            sorted.sort_unstable_by(cmp_entries);
            for lambda in [0.01, 0.1, 0.5, 1.0] {
                let take = ((lambda * len as f64).ceil() as usize).clamp(1, len);
                let mut q = base.clone();
                select_top(&mut q, take);
                assert_eq!(&q[..take], &sorted[..take], "len {len} lambda {lambda}");
                // The tail must still hold the same entries (as a set).
                let mut tail: Vec<u64> = q[take..].iter().map(|e| e.1).collect();
                let mut expect: Vec<u64> = sorted[take..].iter().map(|e| e.1).collect();
                tail.sort_unstable();
                expect.sort_unstable();
                assert_eq!(tail, expect, "len {len} lambda {lambda}");
            }
        }
    }

    #[test]
    fn select_top_survives_adversarial_scores() {
        // Property check against a full sort on inputs chosen to break
        // naive partial selection: all-equal scores (every comparison
        // falls through to the key tie-breaker), signed zeros (±0.0
        // differ under total_cmp), subnormal magnitudes, and duplicated
        // score values across distinct keys.
        let cases: Vec<Vec<(f64, u64)>> = vec![
            (0..4096).map(|k| (1.5, k as u64)).collect(),
            (0..4096)
                .map(|k| (if k % 2 == 0 { 0.0 } else { -0.0 }, k as u64))
                .collect(),
            (0..4096)
                .map(|k| (f64::MIN_POSITIVE / ((k % 7 + 1) as f64), k as u64))
                .collect(),
            (0..4096).map(|k| ((k % 3) as f64, k as u64)).collect(),
        ];
        for (case, base) in cases.into_iter().enumerate() {
            let len = base.len();
            let mut sorted = base.clone();
            sorted.sort_unstable_by(cmp_entries);
            for take in [1usize, 13, len / 3, len] {
                let mut q = base.clone();
                select_top(&mut q, take);
                assert_eq!(&q[..take], &sorted[..take], "case {case} take {take}");
                let mut tail: Vec<u64> = q[take..].iter().map(|e| e.1).collect();
                let mut expect: Vec<u64> = sorted[take..].iter().map(|e| e.1).collect();
                tail.sort_unstable();
                expect.sort_unstable();
                assert_eq!(tail, expect, "case {case} take {take}");
            }
        }
    }

    #[test]
    fn partially_occupied_mesh_converges_with_no_residual_tension() {
        // Regression for the vacated-cell rescore hole: when a cluster
        // moves into an empty core, the pairs around the position it
        // *left* must be re-scored too (the old affected-cluster walk
        // only touched graph neighbours of moved clusters and missed
        // them). Position-stamp staleness covers both endpoints of every
        // swap, so a converged run must leave no positive tension even
        // with empty cells in play.
        let pcn = random_pcn(48, 4.0, 7).unwrap();
        let mesh = Mesh::new(8, 8).unwrap(); // 64 cores, 16 left empty
        let mut p = random_placement(&pcn, mesh, 23).unwrap();
        let stats = force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        assert!(stats.converged);
        let mut scratch = p.clone();
        let engine =
            Engine::new(
            &pcn,
            &mut scratch,
            Potential::default(),
            TensionMode::Exact,
            Objective::Energy,
            None,
            None,
            1,
        )
        .unwrap();
        for pos in 0..mesh.len() {
            for d in [DOWN, RIGHT] {
                if let Some(key) = engine.pair_key(pos, d) {
                    assert!(
                        engine.tension(key) <= TENSION_EPS,
                        "positive tension survived at pos {pos} dir {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn energy_never_increases_and_converges() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        for potential in [
            Potential::L1,
            Potential::L1Squared,
            Potential::L2Squared,
            Potential::energy_model(CostModel::paper_target()),
        ] {
            let mut p = random_placement(&pcn, mesh, 1).unwrap();
            let cfg = FdConfig { potential, ..FdConfig::default() };
            let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
            assert!(stats.converged);
            assert!(
                stats.final_energy <= stats.initial_energy + 1e-9,
                "{potential:?}: {} > {}",
                stats.final_energy,
                stats.initial_energy
            );
            p.check_consistency().unwrap();
        }
    }

    #[test]
    fn tracked_energy_matches_recomputation() {
        // The incremental force/tension bookkeeping must agree with a
        // from-scratch energy computation at the end.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 3).unwrap();
        let cfg = FdConfig::default();
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        let mut scratch = p.clone();
        let engine =
            Engine::new(
            &pcn,
            &mut scratch,
            cfg.potential,
            TensionMode::Exact,
            Objective::Energy,
            None,
            None,
            1,
        )
        .unwrap();
        assert!((engine.system_energy_serial() - stats.final_energy).abs() < 1e-6);
    }

    #[test]
    fn eq26_energy_model_potential_equals_mec() {
        // eq. 26: with the energy-model potential, FD system energy is
        // exactly the M_ec metric.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = random_placement(&pcn, mesh, 5).unwrap();
        let cfg = FdConfig { potential: Potential::energy_model(cost), ..FdConfig::default() };
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        let mec = energy(&pcn, &p, cost).unwrap();
        assert!(
            (stats.final_energy - mec).abs() < 1e-6 * mec.max(1.0),
            "{} vs {}",
            stats.final_energy,
            mec
        );
    }

    #[test]
    fn improves_random_placements() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = random_placement(&pcn, mesh, 7).unwrap();
        let before = energy(&pcn, &p, cost).unwrap();
        force_directed(
            &pcn,
            &mut p,
            &FdConfig { potential: Potential::energy_model(cost), ..FdConfig::default() },
        )
        .unwrap();
        let after = energy(&pcn, &p, cost).unwrap();
        assert!(after < before, "FD should improve a random placement: {after} vs {before}");
    }

    #[test]
    fn improves_hsc_placements_further() {
        // §5.2 observation 2: FD on top of HSC improves the metrics
        // further.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = hsc_placement(&pcn, mesh).unwrap();
        let before = energy(&pcn, &p, cost).unwrap();
        force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        let after = energy(&pcn, &p, cost).unwrap();
        assert!(after <= before);
    }

    #[test]
    fn partial_occupancy_moves_into_empty_cores() {
        // Two connected clusters placed at opposite corners of an
        // otherwise empty mesh must be pulled together through empty
        // cells.
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        b.add_cluster(1, 1);
        b.add_edge(0, 1, 10.0).unwrap();
        let pcn = b.build().unwrap();
        let mesh = Mesh::new(5, 5).unwrap();
        let mut p = Placement::new_unplaced(mesh, 2);
        p.place(0, Coord::new(0, 0)).unwrap();
        p.place(1, Coord::new(4, 4)).unwrap();
        let stats = force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        assert!(stats.converged);
        assert_eq!(p.distance(0, 1).unwrap(), 1, "clusters should end adjacent");
    }

    #[test]
    fn incomplete_placement_errors() {
        let pcn = small_pcn();
        let mut p = Placement::new_unplaced(Mesh::new(8, 8).unwrap(), 64);
        assert!(matches!(
            force_directed(&pcn, &mut p, &FdConfig::default()),
            Err(CoreError::IncompletePlacement { placed: 0, total: 64 })
        ));
    }

    #[test]
    fn iteration_cap_stops_early() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 11).unwrap();
        let stats = force_directed(
            &pcn,
            &mut p,
            &FdConfig { max_iterations: Some(1), ..FdConfig::default() },
        )
        .unwrap();
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn converged_state_has_no_positive_tension() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 13).unwrap();
        force_directed(&pcn, &mut p, &FdConfig::default()).unwrap();
        let mut scratch = p.clone();
        let engine =
            Engine::new(
            &pcn,
            &mut scratch,
            Potential::default(),
            TensionMode::Exact,
            Objective::Energy,
            None,
            None,
            1,
        )
        .unwrap();
        for pos in 0..mesh.len() {
            for d in [DOWN, RIGHT] {
                if let Some(key) = engine.pair_key(pos, d) {
                    assert!(
                        engine.tension(key) <= TENSION_EPS,
                        "positive tension survived at pos {pos} dir {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_given_same_input() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut a = random_placement(&pcn, mesh, 17).unwrap();
        let mut b = a.clone();
        let sa = force_directed(&pcn, &mut a, &FdConfig::default()).unwrap();
        let sb = force_directed(&pcn, &mut b, &FdConfig::default()).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    #[test]
    fn naive_tension_mode_runs_and_reports_true_energy() {
        // The ablation mode: tensions may overestimate, but final_energy
        // is recomputed from scratch so the report stays truthful, and
        // the automatic iteration cap bounds any oscillation.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let mut p = random_placement(&pcn, mesh, 21).unwrap();
        let cfg = FdConfig {
            potential: Potential::energy_model(cost),
            tension_mode: TensionMode::PaperNaive,
            ..FdConfig::default()
        };
        let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
        let mec = energy(&pcn, &p, cost).unwrap();
        assert!((stats.final_energy - mec).abs() < 1e-6 * mec.max(1.0));
        // Naive tension still improves a random start in practice.
        assert!(stats.final_energy < stats.initial_energy);
        p.check_consistency().unwrap();
    }

    #[test]
    fn exact_tension_never_loses_to_naive() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let cost = CostModel::paper_target();
        let run = |mode| {
            let mut p = random_placement(&pcn, mesh, 23).unwrap();
            let cfg = FdConfig {
                potential: Potential::energy_model(cost),
                tension_mode: mode,
                ..FdConfig::default()
            };
            force_directed(&pcn, &mut p, &cfg).unwrap();
            energy(&pcn, &p, cost).unwrap()
        };
        let exact = run(TensionMode::Exact);
        let naive = run(TensionMode::PaperNaive);
        assert!(exact <= naive * 1.05, "exact {exact} vs naive {naive}");
    }

    #[test]
    fn masked_fd_never_touches_dead_cores_and_descends() {
        let pcn = random_pcn(40, 4.0, 9).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut fm = FaultMap::new(mesh);
        for i in 0..6u16 {
            fm.kill_core(Coord::new(i, (i * 3) % 8)).unwrap();
        }
        let mut p = crate::random_placement_masked(&pcn, mesh, 31, &fm).unwrap();
        let stats =
            force_directed_masked(&pcn, &mut p, &FdConfig::default(), &fm).unwrap();
        assert!(stats.converged);
        assert!(stats.final_energy <= stats.initial_energy + 1e-9);
        p.check_consistency().unwrap();
        for c in 0..40u32 {
            assert!(!fm.is_dead(p.coord_of(c).unwrap()), "cluster {c} landed on a dead core");
        }
    }

    #[test]
    fn masked_fd_rejects_placement_on_dead_core() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 2).unwrap();
        let mut fm = FaultMap::new(mesh);
        // Kill the core cluster 0 sits on: the input is already invalid.
        let c0 = p.coord_of(0).unwrap();
        fm.kill_core(c0).unwrap();
        assert!(matches!(
            force_directed_masked(&pcn, &mut p, &FdConfig::default(), &fm),
            Err(CoreError::Hw(HwError::FaultyCore { coord })) if coord == c0
        ));
    }

    #[test]
    fn bad_lambda_is_a_typed_error() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let mut p = random_placement(&pcn, mesh, 2).unwrap();
        for lambda in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                force_directed(&pcn, &mut p, &FdConfig { lambda, ..FdConfig::default() }),
                Err(CoreError::InvalidLambda { .. })
            ));
        }
    }

    #[test]
    fn lambda_extremes_still_converge() {
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        for lambda in [0.05, 1.0] {
            let mut p = random_placement(&pcn, mesh, 19).unwrap();
            let stats = force_directed(
                &pcn,
                &mut p,
                &FdConfig { lambda, ..FdConfig::default() },
            )
            .unwrap();
            assert!(stats.converged, "lambda={lambda}");
        }
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        // The full property test lives in tests/fd_par_props.rs; this is
        // the fast in-module smoke check of the same guarantee.
        let pcn = small_pcn();
        let mesh = Mesh::new(8, 8).unwrap();
        let base = random_placement(&pcn, mesh, 29).unwrap();
        let run = |threads: usize| {
            let mut p = base.clone();
            let cfg = FdConfig { threads, ..FdConfig::default() };
            let stats = force_directed(&pcn, &mut p, &cfg).unwrap();
            (p, stats)
        };
        let (p1, s1) = run(1);
        for threads in [2, 4] {
            let (pt, st) = run(threads);
            assert_eq!(pt, p1, "placement diverged at threads={threads}");
            assert_eq!(st, s1, "stats diverged at threads={threads}");
        }
    }

    #[test]
    fn worker_panic_is_a_typed_error_with_a_flushed_checkpoint() {
        // Sized so the injection can only fire where we want it: a 64x64
        // mesh (4096 positions) lets the initial queue build fan out at
        // threads=2, while <4096 clusters keep the energy reduction in a
        // single serial block and the hot-record init under the
        // per-thread minimum — the recovery probes never spawn workers,
        // so the armed hook cannot re-trigger on the panic path.
        let _guard = par::hooks::exclusive();
        let pcn = random_pcn(3500, 3.0, 11).unwrap();
        let mesh = Mesh::new(64, 64).unwrap();
        let base = crate::hsc_placement_threaded(&pcn, mesh, 2).unwrap();
        let cfg = FdConfig { threads: 2, ..FdConfig::default() };

        let mut p = base.clone();
        let mut cp: Option<FdCheckpoint> = None;
        let mut writer = |c: &FdCheckpoint| {
            cp = Some(c.clone());
            Ok(())
        };
        let mut opts =
            FdRunOpts { on_checkpoint: Some(&mut writer), ..FdRunOpts::default() };
        par::hooks::fail_after(0);
        let err = force_directed_budgeted(&pcn, &mut p, &cfg, None, &mut opts, &mut NoopSink)
            .unwrap_err();
        par::hooks::disarm();
        drop(opts);
        match err {
            CoreError::WorkerPanicked { ref message } => {
                assert_eq!(message, par::hooks::INJECTED_PANIC);
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The panic path flushed a checkpoint at the consistent boundary
        // (sweep 0 — the build of the initial queue) and left the
        // caller's placement untouched (writeback only happens on
        // success).
        let cp = cp.expect("the panic path must flush a checkpoint");
        assert_eq!(cp.sweeps, 0);
        assert_eq!(cp.swaps, 0);
        assert_eq!(p, base);

        // The flushed checkpoint is resumable, and the resumed run tracks
        // the uninterrupted one exactly.
        let budget = RunBudget { max_sweeps: Some(2), ..RunBudget::default() };
        let mut resumed = base.clone();
        resumed.set_coords(&cp.coords).unwrap();
        let mut ropts = FdRunOpts {
            budget: budget.clone(),
            resume: Some(FdResume::from_checkpoint(&cp)),
            ..FdRunOpts::default()
        };
        let rs = force_directed_budgeted(&pcn, &mut resumed, &cfg, None, &mut ropts, &mut NoopSink)
            .unwrap();
        let mut plain = base.clone();
        let mut popts = FdRunOpts { budget, ..FdRunOpts::default() };
        let ps = force_directed_budgeted(&pcn, &mut plain, &cfg, None, &mut popts, &mut NoopSink)
            .unwrap();
        assert_eq!(resumed, plain);
        assert_eq!(rs.swaps, ps.swaps);
        assert_eq!(rs.final_energy.to_bits(), ps.final_energy.to_bits());
    }
}
