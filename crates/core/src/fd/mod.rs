//! The Force-Directed placement-refinement algorithm (§4.4, Algorithm 3).

mod engine;
pub(crate) mod potential;

pub(crate) use engine::force_directed_impl;
pub use engine::{
    force_directed, force_directed_budgeted, force_directed_masked,
    force_directed_masked_traced, force_directed_traced, CheckpointWriter, FdCheckpoint,
    FdConfig, FdResume, FdRunOpts, FdStats, RunBudget, StopReason, TensionMode,
};
pub use potential::{CoordF, Potential};
