//! The Force-Directed placement-refinement algorithm (§4.4, Algorithm 3).

mod engine;
mod potential;

pub use engine::{force_directed, force_directed_masked, FdConfig, FdStats, TensionMode};
pub use potential::Potential;
