//! Potential-energy field shapes (§4.4.2, eqs. 19–21 and 25) and their
//! monomorphized distance kernels.
//!
//! The FD engine's hot loops (initial force build, system-energy
//! reduction, force patching) evaluate the potential once per graph edge.
//! Two layers keep that evaluation SIMD-friendly without changing a
//! single result bit in the default build:
//!
//! * **Branch-free float arithmetic** — [`Potential::value_f`] computes
//!   `|dx| + |dy|` and `dx² + dy²` on [`CoordF`] scalars with `abs`,
//!   multiply and add only (float `abs` is a sign-bit mask, not a
//!   compare). Coordinates are small exact integers, so in the default
//!   `f64` build every operation below is exact and bit-identical to the
//!   integer arithmetic it replaced.
//! * **Kernel monomorphization** — the [`with_kernel!`] macro dispatches
//!   the `Potential` enum **once per loop** (per energy block, per
//!   cluster rebuild, per swap patch) to a zero-sized kernel type whose
//!   `u` inlines with no per-edge match. Each kernel keeps the exact
//!   per-variant expression tree of [`Potential::value_f`], so the f64
//!   results (and therefore the provenance digests) are unchanged.

use snnmap_hw::CostModel;

/// Scalar type of the FD distance kernel's coordinate arithmetic.
///
/// `f64` by default: coordinates are mesh indices (`< 2¹⁶`), so every
/// subtraction, absolute value and L1 sum is exact and the float kernel
/// is bit-identical to integer arithmetic — existing sha256/FNV
/// provenance digests hold.
///
/// The `f32-coords` feature narrows it to `f32` (half the kernel's
/// memory traffic, twice the SIMD lanes). Displacements and L1 sums stay
/// exact (they fit a 24-bit mantissa), but **squared** terms round —
/// `dx²` can exceed 2²⁴ — so `L1Squared`/`L2Squared` placements under
/// the feature legitimately diverge from f64 digests. The f32 path is
/// still deterministic and thread-count independent: only the scalar
/// type changes, never an accumulation order. See DESIGN.md §1c for the
/// digest-compatibility contract.
#[cfg(not(feature = "f32-coords"))]
pub type CoordF = f64;
/// See the `f32-coords` note on the default (`f64`) definition.
#[cfg(feature = "f32-coords")]
pub type CoordF = f32;

/// The shape of the potential field a cluster generates (Figure 7).
///
/// Given the displacement `p = P(c_j) − P(c_i)` between two connected
/// clusters, the pair's potential energy is `u(p) · w_P(e_ij)`; the FD
/// algorithm minimizes the total over all connections. The choice of `u`
/// trades solving speed against solution quality (§4.5):
///
/// * [`Potential::L1`] — `u_a(p) = |x| + |y|` (eq. 19): a uniform field;
///   minimizing it minimizes total weighted wire length.
/// * [`Potential::L1Squared`] — `u_b(p) = (|x| + |y|)²` (eq. 20): denser
///   away from the origin, so long connections are pulled in first.
/// * [`Potential::L2Squared`] — `u_c(p) = x² + y²` (eq. 21): the paper's
///   best performer (method j in Figure 8).
/// * [`Potential::EnergyModel`] — `u(p) = (‖p‖+1)·EN_r + ‖p‖·EN_w`
///   (eq. 25): makes the FD system energy *equal* the `M_ec` metric
///   (eq. 26).
///
/// # Examples
///
/// ```
/// use snnmap_core::Potential;
///
/// assert_eq!(Potential::L1.value(2, -1), 3.0);
/// assert_eq!(Potential::L1Squared.value(2, -1), 9.0);
/// assert_eq!(Potential::L2Squared.value(2, -1), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Potential {
    /// `u_a(p) = |x_p| + |y_p|` (eq. 19).
    L1,
    /// `u_b(p) = (|x_p| + |y_p|)²` (eq. 20).
    L1Squared,
    /// `u_c(p) = x_p² + y_p²` (eq. 21).
    L2Squared,
    /// `u(p) = (‖p‖₁ + 1)·EN_r + ‖p‖₁·EN_w` (eq. 25) — FD energy equals
    /// the `M_ec` energy metric.
    EnergyModel {
        /// Router energy per spike.
        en_r: f64,
        /// Wire energy per spike per hop.
        en_w: f64,
    },
}

impl Potential {
    /// The energy-model potential for a hardware cost model.
    pub fn energy_model(cost: CostModel) -> Self {
        Potential::EnergyModel { en_r: cost.en_r, en_w: cost.en_w }
    }

    /// Potential at integer displacement `(dx, dy)`.
    ///
    /// Symmetric in sign (`u(p) = u(−p)`) for every variant, which the
    /// tension bookkeeping of the FD engine relies on. Delegates to the
    /// float kernel ([`Potential::value_f`]); the conversion is exact
    /// for any mesh-sized displacement.
    #[inline]
    pub fn value(&self, dx: i32, dy: i32) -> f64 {
        self.value_f(dx as CoordF, dy as CoordF)
    }

    /// Potential at float displacement `(dx, dy)` — the branch-free
    /// distance kernel of the FD hot loops.
    ///
    /// In the default `f64` build this is bit-identical to the integer
    /// form for every exactly-representable displacement; under
    /// `f32-coords` the squared variants round (see [`CoordF`]).
    #[inline]
    pub fn value_f(&self, dx: CoordF, dy: CoordF) -> f64 {
        match *self {
            Potential::L1 => KL1.u(dx, dy),
            Potential::L1Squared => KL1Sq.u(dx, dy),
            Potential::L2Squared => KL2Sq.u(dx, dy),
            Potential::EnergyModel { en_r, en_w } => KEnergy { en_r, en_w }.u(dx, dy),
        }
    }

    /// `u(unit) − u(0)`: the constant the tension formula needs to
    /// correct the double-counted mutual edge of a connected adjacent
    /// pair (their distance is preserved by a swap).
    #[inline]
    pub(crate) fn unit_step(&self) -> f64 {
        self.value(1, 0) - self.value(0, 0)
    }
}

impl Default for Potential {
    /// The paper's chosen configuration (method j): `u_c`.
    fn default() -> Self {
        Potential::L2Squared
    }
}

/// A monomorphized potential evaluation: one zero-sized (or
/// coefficient-carrying) type per [`Potential`] variant, so a loop
/// generic over `K: PotKernel` compiles to straight-line float code with
/// no per-edge enum match. Dispatch with [`with_kernel!`].
pub(crate) trait PotKernel: Copy + Send + Sync {
    /// Potential at float displacement `(dx, dy)`. Must keep the exact
    /// expression tree of the matching [`Potential::value_f`] arm.
    fn u(self, dx: CoordF, dy: CoordF) -> f64;
}

/// [`Potential::L1`] kernel.
#[derive(Clone, Copy)]
pub(crate) struct KL1;
/// [`Potential::L1Squared`] kernel.
#[derive(Clone, Copy)]
pub(crate) struct KL1Sq;
/// [`Potential::L2Squared`] kernel.
#[derive(Clone, Copy)]
pub(crate) struct KL2Sq;
/// [`Potential::EnergyModel`] kernel (carries the cost coefficients).
#[derive(Clone, Copy)]
pub(crate) struct KEnergy {
    pub en_r: f64,
    pub en_w: f64,
}

/// Widens a [`CoordF`] to `f64`: a no-op in the default build, an exact
/// float conversion under `f32-coords`. Written with `cfg` arms (not
/// `as f64`) so both scalar builds are cast-lint-clean.
#[inline(always)]
fn widen(v: CoordF) -> f64 {
    #[cfg(feature = "f32-coords")]
    {
        f64::from(v)
    }
    #[cfg(not(feature = "f32-coords"))]
    {
        v
    }
}

impl PotKernel for KL1 {
    #[inline(always)]
    fn u(self, dx: CoordF, dy: CoordF) -> f64 {
        widen(dx.abs() + dy.abs())
    }
}

impl PotKernel for KL1Sq {
    #[inline(always)]
    fn u(self, dx: CoordF, dy: CoordF) -> f64 {
        let l1 = widen(dx.abs() + dy.abs());
        l1 * l1
    }
}

impl PotKernel for KL2Sq {
    #[inline(always)]
    fn u(self, dx: CoordF, dy: CoordF) -> f64 {
        widen(dx * dx + dy * dy)
    }
}

impl PotKernel for KEnergy {
    #[inline(always)]
    fn u(self, dx: CoordF, dy: CoordF) -> f64 {
        let l1 = widen(dx.abs() + dy.abs());
        (l1 + 1.0) * self.en_r + l1 * self.en_w
    }
}

/// Dispatches a [`Potential`] to its concrete [`PotKernel`] **once**,
/// binding it as `$k` inside `$body` — hoisting the enum match out of
/// whatever loop `$body` runs:
///
/// ```ignore
/// with_kernel!(self.potential, k => self.energy_block_k(k, range))
/// ```
macro_rules! with_kernel {
    ($pot:expr, $k:ident => $body:expr) => {
        match $pot {
            $crate::fd::potential::Potential::L1 => {
                let $k = $crate::fd::potential::KL1;
                $body
            }
            $crate::fd::potential::Potential::L1Squared => {
                let $k = $crate::fd::potential::KL1Sq;
                $body
            }
            $crate::fd::potential::Potential::L2Squared => {
                let $k = $crate::fd::potential::KL2Sq;
                $body
            }
            $crate::fd::potential::Potential::EnergyModel { en_r, en_w } => {
                let $k = $crate::fd::potential::KEnergy { en_r, en_w };
                $body
            }
        }
    };
}
pub(crate) use with_kernel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_by_hand() {
        assert_eq!(Potential::L1.value(3, 4), 7.0);
        assert_eq!(Potential::L1Squared.value(3, 4), 49.0);
        assert_eq!(Potential::L2Squared.value(3, 4), 25.0);
        let e = Potential::EnergyModel { en_r: 1.0, en_w: 0.1 };
        assert!((e.value(3, 4) - (8.0 + 0.7)).abs() < 1e-12);
    }

    #[test]
    fn sign_symmetric() {
        for p in [
            Potential::L1,
            Potential::L1Squared,
            Potential::L2Squared,
            Potential::EnergyModel { en_r: 1.0, en_w: 0.1 },
        ] {
            for (dx, dy) in [(2, 3), (0, 5), (7, 0), (1, 1)] {
                assert_eq!(p.value(dx, dy), p.value(-dx, -dy));
                assert_eq!(p.value(dx, dy), p.value(dx, -dy));
                assert_eq!(p.value(dx, dy), p.value(-dx, dy));
            }
        }
    }

    #[test]
    fn unit_step_values() {
        assert_eq!(Potential::L1.unit_step(), 1.0);
        assert_eq!(Potential::L1Squared.unit_step(), 1.0);
        assert_eq!(Potential::L2Squared.unit_step(), 1.0);
        let e = Potential::EnergyModel { en_r: 1.0, en_w: 0.1 };
        assert!((e.unit_step() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn quadratic_fields_penalize_distance_superlinearly() {
        // The §4.4.2 design rationale: u_b and u_c grow faster than u_a,
        // so distant pairs gain disproportionate energy.
        let (near, far) = ((1, 1), (4, 4));
        let ratio = |p: Potential| p.value(far.0, far.1) / p.value(near.0, near.1);
        assert!(ratio(Potential::L1Squared) > ratio(Potential::L1));
        assert!(ratio(Potential::L2Squared) > ratio(Potential::L1));
    }

    #[test]
    fn float_kernel_matches_integer_form_bitwise() {
        // The guarantee the digest-compat contract rests on: in the f64
        // build the float kernel reproduces the integer arithmetic bit
        // for bit over the whole mesh-displacement range. Under
        // f32-coords the L1-derived variants must still agree exactly
        // (sums fit a 24-bit mantissa); squared variants may round and
        // are checked to a relative tolerance instead.
        let pots = [
            Potential::L1,
            Potential::L1Squared,
            Potential::L2Squared,
            Potential::EnergyModel { en_r: 20.0, en_w: 2.4 },
        ];
        for p in pots {
            for (dx, dy) in
                [(0, 0), (1, 0), (-3, 7), (255, -255), (1023, 1), (-65535, 65535)]
            {
                let exact = reference_value(p, dx, dy);
                let got = p.value_f(dx as CoordF, dy as CoordF);
                let l1_exact = matches!(p, Potential::L1 | Potential::EnergyModel { .. });
                if cfg!(not(feature = "f32-coords")) || l1_exact {
                    assert_eq!(
                        got.to_bits(),
                        exact.to_bits(),
                        "{p:?} at ({dx},{dy}): {got} vs {exact}"
                    );
                } else {
                    let tol = 1e-6 * exact.abs().max(1.0);
                    assert!((got - exact).abs() <= tol, "{p:?} at ({dx},{dy})");
                }
            }
        }
    }

    /// The pre-SoA integer arithmetic, kept verbatim as the reference.
    fn reference_value(p: Potential, dx: i32, dy: i32) -> f64 {
        let l1 = (dx.unsigned_abs() + dy.unsigned_abs()) as f64;
        match p {
            Potential::L1 => l1,
            Potential::L1Squared => l1 * l1,
            Potential::L2Squared => (dx as f64) * (dx as f64) + (dy as f64) * (dy as f64),
            Potential::EnergyModel { en_r, en_w } => (l1 + 1.0) * en_r + l1 * en_w,
        }
    }
}
