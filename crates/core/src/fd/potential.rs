//! Potential-energy field shapes (§4.4.2, eqs. 19–21 and 25).

use snnmap_hw::CostModel;

/// The shape of the potential field a cluster generates (Figure 7).
///
/// Given the displacement `p = P(c_j) − P(c_i)` between two connected
/// clusters, the pair's potential energy is `u(p) · w_P(e_ij)`; the FD
/// algorithm minimizes the total over all connections. The choice of `u`
/// trades solving speed against solution quality (§4.5):
///
/// * [`Potential::L1`] — `u_a(p) = |x| + |y|` (eq. 19): a uniform field;
///   minimizing it minimizes total weighted wire length.
/// * [`Potential::L1Squared`] — `u_b(p) = (|x| + |y|)²` (eq. 20): denser
///   away from the origin, so long connections are pulled in first.
/// * [`Potential::L2Squared`] — `u_c(p) = x² + y²` (eq. 21): the paper's
///   best performer (method j in Figure 8).
/// * [`Potential::EnergyModel`] — `u(p) = (‖p‖+1)·EN_r + ‖p‖·EN_w`
///   (eq. 25): makes the FD system energy *equal* the `M_ec` metric
///   (eq. 26).
///
/// # Examples
///
/// ```
/// use snnmap_core::Potential;
///
/// assert_eq!(Potential::L1.value(2, -1), 3.0);
/// assert_eq!(Potential::L1Squared.value(2, -1), 9.0);
/// assert_eq!(Potential::L2Squared.value(2, -1), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Potential {
    /// `u_a(p) = |x_p| + |y_p|` (eq. 19).
    L1,
    /// `u_b(p) = (|x_p| + |y_p|)²` (eq. 20).
    L1Squared,
    /// `u_c(p) = x_p² + y_p²` (eq. 21).
    L2Squared,
    /// `u(p) = (‖p‖₁ + 1)·EN_r + ‖p‖₁·EN_w` (eq. 25) — FD energy equals
    /// the `M_ec` energy metric.
    EnergyModel {
        /// Router energy per spike.
        en_r: f64,
        /// Wire energy per spike per hop.
        en_w: f64,
    },
}

impl Potential {
    /// The energy-model potential for a hardware cost model.
    pub fn energy_model(cost: CostModel) -> Self {
        Potential::EnergyModel { en_r: cost.en_r, en_w: cost.en_w }
    }

    /// Potential at displacement `(dx, dy)`.
    ///
    /// Symmetric in sign (`u(p) = u(−p)`) for every variant, which the
    /// tension bookkeeping of the FD engine relies on.
    #[inline]
    pub fn value(&self, dx: i32, dy: i32) -> f64 {
        let l1 = (dx.unsigned_abs() + dy.unsigned_abs()) as f64;
        match *self {
            Potential::L1 => l1,
            Potential::L1Squared => l1 * l1,
            Potential::L2Squared => (dx as f64) * (dx as f64) + (dy as f64) * (dy as f64),
            Potential::EnergyModel { en_r, en_w } => (l1 + 1.0) * en_r + l1 * en_w,
        }
    }

    /// `u(unit) − u(0)`: the constant the tension formula needs to
    /// correct the double-counted mutual edge of a connected adjacent
    /// pair (their distance is preserved by a swap).
    #[inline]
    pub(crate) fn unit_step(&self) -> f64 {
        self.value(1, 0) - self.value(0, 0)
    }
}

impl Default for Potential {
    /// The paper's chosen configuration (method j): `u_c`.
    fn default() -> Self {
        Potential::L2Squared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_by_hand() {
        assert_eq!(Potential::L1.value(3, 4), 7.0);
        assert_eq!(Potential::L1Squared.value(3, 4), 49.0);
        assert_eq!(Potential::L2Squared.value(3, 4), 25.0);
        let e = Potential::EnergyModel { en_r: 1.0, en_w: 0.1 };
        assert!((e.value(3, 4) - (8.0 + 0.7)).abs() < 1e-12);
    }

    #[test]
    fn sign_symmetric() {
        for p in [
            Potential::L1,
            Potential::L1Squared,
            Potential::L2Squared,
            Potential::EnergyModel { en_r: 1.0, en_w: 0.1 },
        ] {
            for (dx, dy) in [(2, 3), (0, 5), (7, 0), (1, 1)] {
                assert_eq!(p.value(dx, dy), p.value(-dx, -dy));
                assert_eq!(p.value(dx, dy), p.value(dx, -dy));
                assert_eq!(p.value(dx, dy), p.value(-dx, dy));
            }
        }
    }

    #[test]
    fn unit_step_values() {
        assert_eq!(Potential::L1.unit_step(), 1.0);
        assert_eq!(Potential::L1Squared.unit_step(), 1.0);
        assert_eq!(Potential::L2Squared.unit_step(), 1.0);
        let e = Potential::EnergyModel { en_r: 1.0, en_w: 0.1 };
        assert!((e.unit_step() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn quadratic_fields_penalize_distance_superlinearly() {
        // The §4.4.2 design rationale: u_b and u_c grow faster than u_a,
        // so distant pairs gain disproportionate energy.
        let (near, far) = ((1, 1), (4, 4));
        let ratio = |p: Potential| p.value(far.0, far.1) / p.value(near.0, near.1);
        assert!(ratio(Potential::L1Squared) > ratio(Potential::L1));
        assert!(ratio(Potential::L2Squared) > ratio(Potential::L1));
    }
}
