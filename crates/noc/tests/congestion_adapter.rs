//! Cross-validation of the simulated congestion map against the
//! analytic one (Algorithm 4).
//!
//! [`NocStats::congestion_map`] rescales per-router traversal counts
//! into the analytic map's units. Under [`Routing::RandomMinimal`] — the
//! uniform staircase whose per-router visit probability *is* the
//! paper's `Expe` expectation — on fault-free hardware with unclamped
//! injection probabilities, the adapted map is an unbiased Monte-Carlo
//! estimate of `snnmap_metrics::congestion_map`. The tolerance below is
//! the Bernoulli sampling noise: each router's count is a sum of
//! independent indicator variables with variance at most its mean, so
//! the adapted value carries a standard deviation of about
//! `sqrt(Con(r) / (scale · cycles))`; the assertions allow 5 of those
//! (plus a small absolute floor for near-zero cells).

use snnmap_hw::{Coord, Mesh, Placement};
use snnmap_metrics::congestion_map;
use snnmap_model::{Pcn, PcnBuilder};
use snnmap_noc::{NocConfig, NocSim, PcnTraffic, Routing};

const SCALE: f64 = 0.02;
const CYCLES: u64 = 10_000;

fn crossing_pcn() -> Pcn {
    let mut b = PcnBuilder::new();
    for _ in 0..16 {
        b.add_cluster(1, 1);
    }
    // Long diagonal and crossing flows so interior routers see
    // overlapping rectangles — the regime where XY and the expectation
    // model disagree and RandomMinimal is required.
    for &(s, t, w) in &[
        (0u32, 15u32, 3.0),
        (3, 12, 2.0),
        (5, 10, 1.5),
        (1, 14, 1.0),
        (2, 7, 2.5),
        (8, 13, 1.0),
        (4, 11, 1.5),
        (6, 9, 2.0),
        (15, 0, 1.0),
    ] {
        b.add_edge(s, t, w).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn adapted_traversals_match_the_analytic_map_within_sampling_noise() {
    let pcn = crossing_pcn();
    let mesh = Mesh::new(4, 4).unwrap();
    let coords: Vec<Coord> = mesh.iter().collect();
    let placement = Placement::from_coords(mesh, &coords).unwrap();

    let exact = congestion_map(&pcn, &placement).unwrap();
    let exact = exact.map();

    let mut traffic = PcnTraffic::new(&pcn, &placement, SCALE, 11);
    let config = NocConfig { routing: Routing::RandomMinimal, seed: 5, ..NocConfig::default() };
    let mut sim = NocSim::new(mesh, config);
    traffic.run(&mut sim, CYCLES);
    let stats = sim.stats();
    // Backpressure losses would bias the estimate low; the injection
    // rates are chosen so the network never pushes back.
    assert_eq!(stats.rejected, 0, "test traffic must not saturate the network");

    let adapted = stats.congestion_map(SCALE, CYCLES);
    assert_eq!(adapted.len(), exact.len());

    let norm = SCALE * CYCLES as f64;
    for (r, (&a, &e)) in adapted.iter().zip(exact).enumerate() {
        let tol = 5.0 * (e.max(0.05) / norm).sqrt() + 0.02;
        assert!(
            (a - e).abs() <= tol,
            "router {r}: adapted {a:.3} vs exact {e:.3} (tol {tol:.3})"
        );
    }

    // Aggregates inherit the bound: total mass and the hottest router.
    let total_a: f64 = adapted.iter().sum();
    let total_e: f64 = exact.iter().sum();
    assert!(
        (total_a - total_e).abs() <= 0.05 * total_e,
        "total mass: adapted {total_a:.3} vs exact {total_e:.3}"
    );
    let max_a = adapted.iter().copied().fold(0.0, f64::max);
    let max_e = exact.iter().copied().fold(0.0, f64::max);
    assert!(
        (max_a - max_e).abs() <= 0.2 * max_e,
        "hottest router: adapted {max_a:.3} vs exact {max_e:.3}"
    );
}

#[test]
fn adapter_rejects_zero_normalization() {
    let stats = {
        let mesh = Mesh::new(2, 2).unwrap();
        let mut sim = NocSim::new(mesh, NocConfig::default());
        sim.inject(Coord::new(0, 0), Coord::new(1, 1)).unwrap();
        sim.drain(100);
        sim.stats().clone()
    };
    assert!(std::panic::catch_unwind(|| stats.congestion_map(0.0, 100)).is_err());
}
