//! Property tests on the NoC simulator's conservation and determinism
//! guarantees.

use proptest::prelude::*;
use snnmap_hw::{Coord, Mesh};
use snnmap_noc::{NocConfig, NocSim, Routing};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Packets are conserved under arbitrary injection sequences and both
    /// routing policies: injected = delivered after drain, and rejected
    /// injections are exactly the difference from attempts.
    #[test]
    fn packet_conservation(
        flows in prop::collection::vec(((0u16..5, 0u16..5), (0u16..5, 0u16..5)), 1..200),
        routing_xy in any::<bool>(),
        cap in 1usize..8,
    ) {
        let mesh = Mesh::new(5, 5).unwrap();
        let routing = if routing_xy { Routing::Xy } else { Routing::RandomMinimal };
        let mut sim = NocSim::new(mesh, NocConfig { routing, seed: 1, queue_capacity: cap });
        let attempts = flows.len() as u64;
        for ((sx, sy), (tx, ty)) in flows {
            sim.inject(Coord::new(sx, sy), Coord::new(tx, ty)).unwrap();
            sim.step();
        }
        prop_assert!(sim.drain(100_000), "network failed to drain");
        let s = sim.stats();
        prop_assert_eq!(s.injected + s.rejected, attempts);
        prop_assert_eq!(s.delivered, s.injected);
        prop_assert_eq!(sim.in_flight(), 0);
    }

    /// Unloaded single-packet latency equals hops + 1 regardless of
    /// routing policy, and the traversal map's mass equals hops + 1.
    #[test]
    fn single_packet_latency(
        src in (0u16..6, 0u16..6),
        dst in (0u16..6, 0u16..6),
        routing_xy in any::<bool>(),
    ) {
        let mesh = Mesh::new(6, 6).unwrap();
        let routing = if routing_xy { Routing::Xy } else { Routing::RandomMinimal };
        let mut sim = NocSim::new(mesh, NocConfig { routing, seed: 3, queue_capacity: 4 });
        let (s, d) = (Coord::new(src.0, src.1), Coord::new(dst.0, dst.1));
        sim.inject(s, d).unwrap();
        prop_assert!(sim.drain(1000));
        let hops = s.manhattan(d) as u64;
        prop_assert_eq!(sim.stats().max_latency, hops + 1);
        let mass: u64 = sim.stats().traversals.iter().sum();
        prop_assert_eq!(mass, hops + 1);
    }

    /// Random-minimal routing stays inside the source-target bounding
    /// rectangle: no router outside it is ever traversed.
    #[test]
    fn random_minimal_stays_in_rectangle(
        src in (0u16..6, 0u16..6),
        dst in (0u16..6, 0u16..6),
        seed in 0u64..100,
    ) {
        let mesh = Mesh::new(6, 6).unwrap();
        let mut sim = NocSim::new(
            mesh,
            NocConfig { routing: Routing::RandomMinimal, seed, queue_capacity: 4 },
        );
        let (s, d) = (Coord::new(src.0, src.1), Coord::new(dst.0, dst.1));
        for _ in 0..8 {
            sim.inject(s, d).unwrap();
            sim.step();
        }
        prop_assert!(sim.drain(1000));
        for (i, &t) in sim.stats().traversals.iter().enumerate() {
            if t == 0 {
                continue;
            }
            let c = mesh.coord_of_index(i);
            prop_assert!(
                c.x >= s.x.min(d.x) && c.x <= s.x.max(d.x)
                    && c.y >= s.y.min(d.y) && c.y <= s.y.max(d.y),
                "router {c} outside rectangle {s}..{d}"
            );
        }
    }
}
