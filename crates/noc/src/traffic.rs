//! Spike-traffic generation from PCN connection weights.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_hw::{Coord, Placement};
use snnmap_model::Pcn;

use crate::NocSim;

/// Per-cycle Bernoulli spike injection derived from a PCN and a
/// placement: each connection `(c_i, c_j)` with traffic weight `w`
/// becomes a flow from `P(c_i)` to `P(c_j)` injecting a spike with
/// probability `min(1, w · scale)` per cycle — the executable analogue of
/// the paper's edge weights being "proportional to the total number of
/// spikes" (§3.2).
///
/// # Examples
///
/// ```
/// use snnmap_hw::{Coord, Mesh, Placement};
/// use snnmap_model::PcnBuilder;
/// use snnmap_noc::{NocConfig, NocSim, PcnTraffic};
///
/// let mut b = PcnBuilder::new();
/// b.add_cluster(1, 1);
/// b.add_cluster(1, 1);
/// b.add_edge(0, 1, 1.0)?;
/// let pcn = b.build()?;
/// let mesh = Mesh::new(2, 2)?;
/// let p = Placement::from_coords(mesh, &[Coord::new(0, 0), Coord::new(1, 1)])?;
///
/// let mut traffic = PcnTraffic::new(&pcn, &p, 0.5, 7);
/// let mut sim = NocSim::new(mesh, NocConfig::default());
/// traffic.run(&mut sim, 100);
/// assert!(sim.stats().delivered > 20); // ~50 spikes expected
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PcnTraffic {
    flows: Vec<(Coord, Coord, f64)>,
    rng: ChaCha8Rng,
}

impl PcnTraffic {
    /// Builds the flow table. `scale` converts PCN traffic weight into a
    /// per-cycle injection probability (clamped at 1).
    ///
    /// # Panics
    ///
    /// Panics if a connected cluster is unplaced, or if `scale` is not a
    /// finite nonnegative number.
    pub fn new(pcn: &Pcn, placement: &Placement, scale: f64, seed: u64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "scale must be finite and nonnegative");
        let mut flows = Vec::with_capacity(pcn.num_connections() as usize);
        for c in 0..pcn.num_clusters() {
            let src = placement.coord_of(c).expect("connected clusters must be placed");
            for (t, w) in pcn.out_edges(c) {
                let dst = placement.coord_of(t).expect("connected clusters must be placed");
                flows.push((src, dst, (w as f64 * scale).min(1.0)));
            }
        }
        Self { flows, rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Number of flows (PCN connections).
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Injects one cycle's worth of spikes into `sim`. Spikes the
    /// simulator refuses (endpoint outside its mesh, dead core,
    /// unroutable pair) are dropped; rejections from backpressure are
    /// counted by the simulator as usual.
    pub fn inject_cycle(&mut self, sim: &mut NocSim) {
        for &(src, dst, p) in &self.flows {
            if p > 0.0 && self.rng.gen_bool(p) {
                let _ = sim.inject(src, dst);
            }
        }
    }

    /// Runs `cycles` cycles of injection + simulation, then drains the
    /// network (up to a generous bound) so every injected spike is
    /// accounted for.
    pub fn run(&mut self, sim: &mut NocSim, cycles: u64) {
        for _ in 0..cycles {
            self.inject_cycle(sim);
            sim.step();
        }
        let bound = 1000 + 10 * cycles * (sim.mesh().rows() as u64 + sim.mesh().cols() as u64);
        sim.drain(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NocConfig;
    use snnmap_hw::Mesh;
    use snnmap_model::PcnBuilder;

    fn setup(scale: f64) -> (Pcn, Placement) {
        let mut b = PcnBuilder::new();
        for _ in 0..4 {
            b.add_cluster(1, 1);
        }
        b.add_edge(0, 1, 2.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let pcn = b.build().unwrap();
        let mesh = Mesh::new(2, 2).unwrap();
        let coords: Vec<Coord> = mesh.iter().collect();
        let p = Placement::from_coords(mesh, &coords).unwrap();
        let _ = scale;
        (pcn, p)
    }

    #[test]
    fn injection_rate_tracks_weights() {
        let (pcn, p) = setup(0.1);
        let mut traffic = PcnTraffic::new(&pcn, &p, 0.1, 3);
        let mut sim = NocSim::new(p.mesh(), NocConfig::default());
        traffic.run(&mut sim, 2000);
        // Expected injections: (min(1,.2) + .1 + .05) * 2000 = 700.
        let injected = sim.stats().injected + sim.stats().rejected;
        assert!(
            (injected as f64 - 700.0).abs() < 120.0,
            "injected {injected}, expected about 700"
        );
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn weights_above_one_clamp() {
        let (pcn, p) = setup(10.0);
        let traffic = PcnTraffic::new(&pcn, &p, 10.0, 3);
        assert_eq!(traffic.num_flows(), 3);
        // All probabilities clamped to 1: every flow injects every cycle.
        let mut t = traffic.clone();
        let mut sim = NocSim::new(p.mesh(), NocConfig::default());
        t.inject_cycle(&mut sim);
        assert_eq!(sim.stats().injected + sim.stats().rejected, 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let (pcn, p) = setup(0.2);
        let run = |seed| {
            let mut t = PcnTraffic::new(&pcn, &p, 0.2, seed);
            let mut sim = NocSim::new(p.mesh(), NocConfig::default());
            t.run(&mut sim, 200);
            sim.stats().clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
