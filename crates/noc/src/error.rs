//! Error type for the NoC simulator.

use std::error::Error;
use std::fmt;

use snnmap_hw::{Coord, Mesh};

/// Errors produced by [`NocSim`](crate::NocSim) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A coordinate lies outside the simulated mesh.
    OutOfBounds {
        /// The offending coordinate.
        coord: Coord,
    },
    /// The source or destination core is marked dead by the fault map.
    DeadCore {
        /// The dead core.
        coord: Coord,
    },
    /// No healthy path connects the source to the destination (the fault
    /// pattern disconnected them).
    Unroutable {
        /// Injection source.
        src: Coord,
        /// Intended destination.
        dst: Coord,
    },
    /// A fault map was built for a different mesh than the simulator's.
    MeshMismatch {
        /// The simulator's mesh.
        sim: Mesh,
        /// The fault map's mesh.
        faults: Mesh,
    },
    /// A board topology covers a different mesh than the simulator's.
    BoardMismatch {
        /// The simulator's mesh.
        sim: Mesh,
        /// The mesh the board covers.
        board: Mesh,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::OutOfBounds { coord } => {
                write!(f, "coordinate {coord} is outside the simulated mesh")
            }
            NocError::DeadCore { coord } => {
                write!(f, "core {coord} is marked dead by the fault map")
            }
            NocError::Unroutable { src, dst } => {
                write!(f, "no healthy route from {src} to {dst}")
            }
            NocError::MeshMismatch { sim, faults } => {
                write!(f, "simulator mesh {sim} does not match fault-map mesh {faults}")
            }
            NocError::BoardMismatch { sim, board } => {
                write!(f, "simulator mesh {sim} does not match board mesh {board}")
            }
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let cases: Vec<(NocError, &str)> = vec![
            (NocError::OutOfBounds { coord: Coord::new(9, 9) }, "outside"),
            (NocError::DeadCore { coord: Coord::new(1, 1) }, "dead"),
            (
                NocError::Unroutable { src: Coord::new(0, 0), dst: Coord::new(1, 1) },
                "no healthy route",
            ),
            (
                NocError::MeshMismatch {
                    sim: Mesh::new(2, 2).unwrap(),
                    faults: Mesh::new(3, 3).unwrap(),
                },
                "match",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
