//! A cycle-driven 2D-mesh network-on-chip simulator.
//!
//! The paper evaluates placements with *analytic* metrics (§3.3): hop
//! counts for energy/latency and the Algorithm 4 expectation for
//! congestion. This crate provides the corresponding *executable* model —
//! a mesh of routers with bounded input queues, round-robin arbitration
//! and per-hop backpressure — so those analytic numbers can be
//! cross-validated against simulated spike traffic (the `noc_validate`
//! experiment binary).
//!
//! * [`NocSim`] — the simulator: inject spike packets, step cycles,
//!   collect delivery/latency/traversal statistics,
//! * [`Routing`] — deterministic XY or the random minimal staircase that
//!   matches the paper's `Expe` congestion model,
//! * [`NocSim::with_faults`] — fault-aware operation: dead cores refuse
//!   traffic and packets detour around faulty links/cores on shortest
//!   healthy paths, the extra hops surfacing in
//!   [`NocStats::detour_hops`],
//! * [`NocSim::with_board`] — multi-chip awareness: routing treats
//!   inter-chip links as the expensive resource (crossings minimized
//!   before hops) and counts boundary crossings in
//!   [`NocStats::interchip_traversals`],
//! * [`PcnTraffic`] — Bernoulli per-flow injection derived from a PCN's
//!   connection weights and a placement,
//! * [`NocReweighter`] — sim-in-the-loop hook feeding simulated router
//!   heat back into `snnmap-core`'s composite FD objective,
//! * [`NocStats`] — delivered counts, latency distribution, per-router
//!   traversal map,
//! * [`NocError`] — typed injection/configuration failures.
//!
//! # Examples
//!
//! ```
//! use snnmap_hw::{Coord, FaultMap, Mesh};
//! use snnmap_noc::{NocConfig, NocSim};
//!
//! let mesh = Mesh::new(4, 4)?;
//! let mut sim = NocSim::new(mesh, NocConfig::default());
//! sim.inject(Coord::new(0, 0), Coord::new(3, 3))?;
//! let delivered = sim.drain(100);
//! assert!(delivered);
//! assert_eq!(sim.stats().delivered, 1);
//! // 6 hops: 7 router traversals of 1 cycle each.
//! assert_eq!(sim.stats().max_latency, 7);
//!
//! // The same spike on degraded hardware detours around a faulty link.
//! let mut faults = FaultMap::new(mesh);
//! faults.fail_link(Coord::new(0, 0), Coord::new(0, 1))?;
//! let mut sim = NocSim::with_faults(mesh, NocConfig::default(), &faults)?;
//! sim.inject(Coord::new(0, 0), Coord::new(0, 3))?;
//! assert!(sim.drain(100));
//! assert_eq!(sim.stats().detour_hops, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod reweight;
mod sim;
mod stats;
mod traffic;

pub use error::NocError;
pub use reweight::NocReweighter;
pub use sim::{NocConfig, NocSim, Routing};
pub use stats::NocStats;
pub use traffic::PcnTraffic;
