//! Simulation statistics.

use snnmap_hw::Mesh;

/// Aggregated statistics of one NoC simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct NocStats {
    /// Packets successfully delivered to their destination core.
    pub delivered: u64,
    /// Packets injected into the network.
    pub injected: u64,
    /// Injection attempts rejected because the source queue was full
    /// (backpressure reaching the core).
    pub rejected: u64,
    /// Sum of delivered-packet latencies, in cycles (one cycle per router
    /// traversal, so an unloaded `d`-hop route takes `d + 1` cycles).
    pub total_latency: u64,
    /// Largest delivered-packet latency.
    pub max_latency: u64,
    /// Total hops delivered packets travelled beyond their fault-free
    /// Manhattan minimum — the cost of routing around dead cores and
    /// faulty links (always 0 on fault-free networks).
    pub detour_hops: u64,
    /// Per-router traversal counts, row-major — the simulated counterpart
    /// of the paper's `Con(x, y)` congestion map.
    pub traversals: Vec<u64>,
    /// Link traversals that crossed a chip boundary — the expensive
    /// inter-chip hops of a board-aware simulation
    /// ([`NocSim::with_board`](crate::NocSim::with_board)). Always 0 on
    /// boardless networks.
    pub interchip_traversals: u64,
}

impl NocStats {
    pub(crate) fn new(mesh: Mesh) -> Self {
        Self {
            delivered: 0,
            injected: 0,
            rejected: 0,
            total_latency: 0,
            max_latency: 0,
            detour_hops: 0,
            traversals: vec![0; mesh.len()],
            interchip_traversals: 0,
        }
    }

    /// Mean delivered-packet latency in cycles (0 when nothing was
    /// delivered).
    pub fn average_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Mean per-router traversal count — the simulated `M_ac`.
    pub fn average_traversals(&self) -> f64 {
        if self.traversals.is_empty() {
            0.0
        } else {
            self.traversals.iter().sum::<u64>() as f64 / self.traversals.len() as f64
        }
    }

    /// Hottest router's traversal count — the simulated `M_mc`.
    pub fn max_traversals(&self) -> u64 {
        self.traversals.iter().copied().max().unwrap_or(0)
    }

    /// Converts the traversal counts into the analytic congestion map's
    /// units: per-router traversals divided by `scale · cycles`, the
    /// expected traversal mass one unit of PCN edge weight contributes
    /// over a [`PcnTraffic`](crate::PcnTraffic) run of `cycles` cycles
    /// at injection scale `scale`.
    ///
    /// With [`Routing::RandomMinimal`](crate::Routing) (whose uniform
    /// staircase matches Algorithm 4's expectation model), unclamped
    /// injection probabilities and no faults, this converges on
    /// `snnmap_metrics::congestion_map` as `cycles` grows — the sampled
    /// estimate carries `O(1/√(scale · cycles))` Bernoulli noise per
    /// router. XY routing concentrates traffic on the corner path
    /// instead, so its adapted map bounds only the *total* mass, not the
    /// per-router values.
    ///
    /// # Panics
    ///
    /// Panics if `scale · cycles` is zero or non-finite.
    pub fn congestion_map(&self, scale: f64, cycles: u64) -> Vec<f64> {
        let norm = scale * cycles as f64;
        assert!(norm.is_finite() && norm > 0.0, "scale * cycles must be positive");
        self.traversals.iter().map(|&t| t as f64 / norm).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_of_empty_run_are_zero() {
        let s = NocStats::new(Mesh::new(2, 2).unwrap());
        assert_eq!(s.average_latency(), 0.0);
        assert_eq!(s.average_traversals(), 0.0);
        assert_eq!(s.max_traversals(), 0);
    }
}
