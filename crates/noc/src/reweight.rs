//! Sim-in-the-loop reweighting: a [`SweepReweighter`] backed by the
//! cycle-driven simulator.
//!
//! The FD engine's composite objective can re-weight hot routers between
//! sweep batches (see `snnmap_core::Objective`). Hookless, it derives
//! heat from its own analytic congestion map; this module supplies the
//! *simulated* alternative — replay the PCN's spike traffic over the
//! current placement and hand back the per-router traversal counts as
//! heat, so refinement chases congestion the network actually exhibits
//! (queueing, backpressure, detours) rather than the expectation model.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snnmap_core::{ReweightOutcome, SweepReweighter};
use snnmap_hw::{Coord, Mesh, Placement};
use snnmap_model::Pcn;

use crate::{NocConfig, NocSim, PcnTraffic};

/// Drives a seeded [`NocSim`] over the engine's current placement and
/// reports per-router traversal counts as reweight heat (source
/// `"noc-sim"`).
///
/// Determinism: each invocation seeds its traffic and simulator RNGs
/// from `seed` and the sweep number only — never from time, thread
/// count, or prior invocations — so a run with a given
/// `(seed, reweight cadence)` is byte-identical across repeats and
/// thread counts, as the objective subsystem requires.
///
/// # Examples
///
/// ```
/// use snnmap_core::{force_directed_budgeted, random_placement, FdConfig, FdRunOpts, Objective};
/// use snnmap_hw::Mesh;
/// use snnmap_model::generators::random_pcn;
/// use snnmap_noc::NocReweighter;
/// use snnmap_trace::NoopSink;
///
/// let pcn = random_pcn(48, 4.0, 3)?;
/// let mut placement = random_placement(&pcn, Mesh::new(7, 7)?, 0)?;
/// let mut hook = NocReweighter::new(&pcn, 0.05, 64, 42);
/// let config = FdConfig {
///     objective: Objective::Composite { lambda_c: 0.5, lambda_t: 0.0 },
///     reweight_every: Some(4),
///     ..FdConfig::default()
/// };
/// let mut opts = FdRunOpts { reweighter: Some(&mut hook), ..FdRunOpts::default() };
/// let stats = force_directed_budgeted(&pcn, &mut placement, &config, None, &mut opts, &mut NoopSink)?;
/// assert!(stats.final_energy <= stats.initial_energy * 1.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NocReweighter<'a> {
    pcn: &'a Pcn,
    config: NocConfig,
    scale: f64,
    cycles: u64,
    seed: u64,
}

impl<'a> NocReweighter<'a> {
    /// Builds the hook. `scale` converts PCN edge weight into per-cycle
    /// injection probability (as [`PcnTraffic::new`]), `cycles` is the
    /// simulated window per invocation, and `seed` roots every
    /// per-invocation RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a finite nonnegative number or `cycles`
    /// is zero.
    pub fn new(pcn: &'a Pcn, scale: f64, cycles: u64, seed: u64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "scale must be finite and nonnegative");
        assert!(cycles > 0, "cycles must be positive");
        Self { pcn, config: NocConfig::default(), scale, cycles, seed }
    }

    /// Replaces the simulator configuration (queue depth, routing
    /// policy; the config's own `seed` is overridden per invocation).
    pub fn config(mut self, config: NocConfig) -> Self {
        self.config = config;
        self
    }

    /// A derived sub-seed that differs per sweep and per purpose, so the
    /// traffic and router RNG streams never alias.
    fn sub_seed(&self, sweep: u64, purpose: u64) -> u64 {
        // SplitMix-free mixing: one ChaCha block keyed on (seed, sweep,
        // purpose) — deterministic and cheap at reweight cadence.
        let mixed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(sweep)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(purpose);
        let mut rng = ChaCha8Rng::seed_from_u64(mixed);
        rand::Rng::gen(&mut rng)
    }
}

impl SweepReweighter for NocReweighter<'_> {
    fn reweight(&mut self, sweep: u64, coords: &[Coord], mesh: Mesh) -> ReweightOutcome {
        let placement = Placement::from_coords(mesh, coords)
            .expect("FD engine hands the reweighter a complete placement");
        let mut traffic =
            PcnTraffic::new(self.pcn, &placement, self.scale, self.sub_seed(sweep, 1));
        let config = NocConfig { seed: self.sub_seed(sweep, 2), ..self.config };
        let mut sim = NocSim::new(mesh, config);
        traffic.run(&mut sim, self.cycles);
        ReweightOutcome { heat: sim.stats().traversals.clone(), source: "noc-sim".to_owned() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::PcnBuilder;

    fn line_pcn(n: u32) -> Pcn {
        let mut b = PcnBuilder::new();
        for _ in 0..n {
            b.add_cluster(1, 1);
        }
        for c in 0..n - 1 {
            b.add_edge(c, c + 1, 4.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn heat_is_deterministic_per_seed_and_sweep() {
        let pcn = line_pcn(9);
        let mesh = Mesh::new(3, 3).unwrap();
        let coords: Vec<Coord> = mesh.iter().collect();
        let run = |seed, sweep| {
            let mut hook = NocReweighter::new(&pcn, 0.1, 128, seed);
            hook.reweight(sweep, &coords, mesh)
        };
        assert_eq!(run(7, 4).heat, run(7, 4).heat);
        assert_ne!(run(7, 4).heat, run(7, 8).heat);
        assert_ne!(run(7, 4).heat, run(8, 4).heat);
        assert_eq!(run(7, 4).source, "noc-sim");
    }

    #[test]
    fn heat_covers_the_mesh_and_lands_on_the_route() {
        let pcn = line_pcn(4);
        let mesh = Mesh::new(2, 2).unwrap();
        let coords: Vec<Coord> = mesh.iter().collect();
        let mut hook = NocReweighter::new(&pcn, 1.0, 64, 0);
        let out = hook.reweight(1, &coords, mesh);
        assert_eq!(out.heat.len(), mesh.len());
        // Every router hosts a flow endpoint, so all see traffic.
        assert!(out.heat.iter().all(|&h| h > 0), "heat: {:?}", out.heat);
    }
}
